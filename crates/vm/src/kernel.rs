//! Superblock kernel fusion: a post-pass over compiled firing bytecode
//! that collapses straight-line runs of pure register ops into single
//! [`Kernel`]s executed over contiguous register slices.
//!
//! The dispatch loop in [`crate::bytecode::run_code`] pays a per-opcode
//! match plus, for vector ops, a per-lane call into a scalar helper that
//! re-matches the operator and type on every lane. Fusion removes both
//! costs: at compile time each fusible [`Op`] is lowered to a [`KOp`]
//! with the operator/type pre-resolved, and each maximal run becomes one
//! `Op::Kernel` the interpreter executes in a single dispatch.
//!
//! A width-parameterized **tier matrix** executes the same `KOp` stream
//! (DESIGN.md §16):
//!
//! - **Portable** ([`KernelTier::Portable`], `exec_kop_portable`): safe
//!   Rust slice loops written so LLVM autovectorizes the hot variants at
//!   whatever width the build target has — the scalable-width tier.
//!   Always available and the only tier off x86-64.
//! - **SSE2** ([`KernelTier::Sse2`], [`x86::sse2`]): 128-bit intrinsic
//!   paths — the x86-64 baseline, present on every x86-64 CPU.
//! - **AVX2** ([`KernelTier::Avx2`], [`x86::avx2`]): 256-bit intrinsic
//!   paths, runtime-feature-detected (`is_x86_feature_detected!`).
//!
//! Both intrinsic tiers are generated from one shared exec body
//! parameterized over the tier's vector types and lane count, so adding a
//! width is a matter of supplying the wrapper row, not re-deriving the
//! dispatch logic. Variants a tier has no exact instruction for fall
//! through to the portable code. All `unsafe` is confined to the [`x86`]
//! module. Tier selection is runtime feature detection, overridable with
//! `MACROSS_KERNEL_TIER=portable|sse2|avx2` (and the older
//! `MACROSS_FORCE_PORTABLE_KERNELS=1`, which still forces portable).
//!
//! # Register-resident chains
//!
//! After the alias passes, [`form_chains`] collapses producer→consumer
//! runs of specialized arithmetic — each op reading the previous op's
//! destination as exactly one operand — into a single [`KOp::Chain`]
//! that loads the accumulator once, applies every stage in-register, and
//! stores each destination range only at its *last* write (intermediate
//! writebacks whose range is rewritten later in the chain are elided).
//! This removes the store-to-load round trip through the register file
//! that otherwise dominates fused FMA chains. Legality (checked at
//! formation) guarantees every execution order that preserves per-lane
//! stage order is bit-identical to the original op sequence: every pair
//! of ranges the chain touches — the accumulator load, each stage's
//! `other` operand, each destination — is identical-or-disjoint, so
//! identical ranges stay lane-aligned and disjoint ranges never
//! interact. Stores surviving elision are exactly those whose range is
//! read again before being rewritten, plus each range's last write.
//!
//! # Fusion legality
//!
//! Only *pure register ops* fuse: constants, moves, arithmetic,
//! comparisons, casts, intrinsic calls, splats and permutations. Tape,
//! channel and array ops, control flow, and [`Op::Charge`] never fuse —
//! leaving `Charge` unfused keeps `CycleCounters` bit-identical for
//! free. A run never extends across a jump target (basic-block leader),
//! so every jump still lands on a real instruction. The fused ops stay
//! in place behind the `Op::Kernel` marker; the interpreter skips them
//! via the kernel's `span`, which preserves all jump targets without
//! rewriting a single index.
//!
//! Backend-specialized variants (e.g. [`KOp::AddF32`]) additionally
//! require the destination range to be disjoint from both source ranges
//! and fully in-bounds — verified at fusion time; a violating op degrades
//! to its generic lane-loop variant, which replicates `run_code`'s exact
//! per-lane write order (aliasing included).
//!
//! # Bit-exactness
//!
//! Generic variants call the same scalar helpers as `run_code`. The
//! specialized portable loops inline those helpers' type-stable bodies
//! verbatim (`f32` domain: narrow, op, widen; `i32` domain: truncate,
//! wrapping op, sign-extend). The AVX2 paths use conversion instructions
//! (`vcvtpd2ps` / `vcvtps2pd` / `vpmovsxdq`) that are exactly the
//! per-lane Rust `as` casts, so all three execution paths produce
//! bit-identical register files. The engine differential suite enforces
//! this across every benchmark.

use crate::bytecode::{
    bin_f, bin_i, call1_f, call1_i, call2_f, call2_i, cast_ff, cast_fi, cast_if, cast_ii, cmp_f,
    cmp_i, neg_i, not_i, Op, Regs,
};
use macross_streamir::expr::{BinOp, Intrinsic};
use macross_streamir::types::ScalarTy;

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

/// Minimum fusible run length: a 1-op "kernel" would only add overhead.
const MIN_RUN: usize = 2;

/// Minimum chain length: a 1-stage "chain" is just the op itself, with
/// the chain dispatch overhead added for nothing.
const MIN_CHAIN: usize = 2;

/// One tier of the kernel backend matrix. Chosen once per
/// [`crate::compile::compile_filter_opts`] call and stored on the
/// compiled plan, so one process can compare tiers by recompiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Safe Rust slice loops, written for LLVM autovectorization — the
    /// scalable-width tier: vector width is whatever the build target
    /// gives the autovectorizer. Always available, on every arch.
    Portable,
    /// 128-bit `core::arch::x86_64` intrinsics. SSE2 is part of the
    /// x86-64 baseline, so this tier is available on every x86-64 CPU.
    Sse2,
    /// 256-bit `core::arch::x86_64` intrinsics; needs runtime-detected
    /// AVX2.
    Avx2,
}

/// Backward-compatible name from before the matrix had more than two
/// rows. `KernelTier` is the name the tier matrix uses.
pub type KernelBackend = KernelTier;

impl KernelTier {
    /// Every tier in the matrix, narrowest last.
    pub const ALL: [KernelTier; 3] = [KernelTier::Avx2, KernelTier::Sse2, KernelTier::Portable];

    /// Stable label for reports and `MACROSS_KERNEL_TIER` values.
    pub fn label(self) -> &'static str {
        match self {
            KernelTier::Portable => "portable",
            KernelTier::Sse2 => "sse2",
            KernelTier::Avx2 => "avx2",
        }
    }

    /// Inverse of [`label`](Self::label); `None` for labels outside the
    /// matrix.
    pub fn from_label(s: &str) -> Option<KernelTier> {
        match s {
            "portable" => Some(KernelTier::Portable),
            "sse2" => Some(KernelTier::Sse2),
            "avx2" => Some(KernelTier::Avx2),
            _ => None,
        }
    }

    /// Nominal vector width in bits; 0 for the scalable portable tier.
    pub fn width_bits(self) -> u32 {
        match self {
            KernelTier::Portable => 0,
            KernelTier::Sse2 => 128,
            KernelTier::Avx2 => 256,
        }
    }

    /// Whether this process can execute the tier: portable always,
    /// SSE2 on any x86-64, AVX2 only where detection finds it.
    pub fn available(self) -> bool {
        match self {
            KernelTier::Portable => true,
            KernelTier::Sse2 => cfg!(target_arch = "x86_64"),
            KernelTier::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    avx2_available()
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::is_x86_feature_detected!("avx2"))
}

/// Whether `val` — the raw `MACROSS_FORCE_PORTABLE_KERNELS` value, or
/// `None` when unset — forces the portable tier: anything but
/// unset/empty/`0` does.
fn forces_portable(val: Option<&str>) -> bool {
    val.map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// True when `MACROSS_FORCE_PORTABLE_KERNELS` is set to anything but
/// `0`/empty. Read per compile (not in the firing hot path), so a test
/// can flip tiers between compilations inside one process.
pub fn portable_forced() -> bool {
    forces_portable(
        std::env::var("MACROSS_FORCE_PORTABLE_KERNELS")
            .ok()
            .as_deref(),
    )
}

/// Tier for a given override state — the pure core of [`select_tier`],
/// testable without touching the process environment.
///
/// Precedence: an explicit `MACROSS_KERNEL_TIER` label wins (an unknown
/// label or an unavailable tier is an error — running a tier the CPU
/// lacks would be undefined behavior, so selection refuses loudly rather
/// than silently degrading a forced-tier CI run to a different tier);
/// then the older `MACROSS_FORCE_PORTABLE_KERNELS`; then detection —
/// the widest available tier.
fn tier_for(env_tier: Option<&str>, portable_forced: bool) -> Result<KernelTier, String> {
    if let Some(s) = env_tier.filter(|s| !s.is_empty()) {
        let tier = KernelTier::from_label(s).ok_or_else(|| {
            format!("MACROSS_KERNEL_TIER={s:?} is not a tier the matrix recognizes (portable|sse2|avx2)")
        })?;
        if !tier.available() {
            return Err(format!(
                "MACROSS_KERNEL_TIER={} requested but this CPU cannot execute it",
                tier.label()
            ));
        }
        return Ok(tier);
    }
    if portable_forced {
        return Ok(KernelTier::Portable);
    }
    Ok(*KernelTier::ALL
        .iter()
        .find(|t| t.available())
        .unwrap_or(&KernelTier::Portable))
}

/// Select the kernel tier: `MACROSS_KERNEL_TIER` if set (panics on an
/// unknown or unavailable tier — see [`tier_for`]), else portable when
/// `MACROSS_FORCE_PORTABLE_KERNELS` forces it, else the widest tier
/// runtime detection finds.
pub fn select_tier() -> KernelTier {
    let env_tier = std::env::var("MACROSS_KERNEL_TIER").ok();
    match tier_for(env_tier.as_deref(), portable_forced()) {
        Ok(t) => t,
        Err(e) => panic!("{e}"),
    }
}

/// Backward-compatible alias for [`select_tier`].
pub fn select_backend() -> KernelTier {
    select_tier()
}

/// One fused superblock: the pre-resolved ops and how many original
/// bytecode slots they cover (the interpreter advances `pc` by `span`).
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Original ops covered (for the `pc` skip). At least `kops.len()` —
    /// redundancy pruning can make the fused form shorter than the run.
    pub span: u32,
    /// Pre-resolved ops, in original program order.
    pub kops: Box<[KOp]>,
}

/// A fused op. Scalar ops are width-1 vector ops here; specialized
/// arithmetic variants carry a proven-disjoint destination range, generic
/// variants replicate [`crate::bytecode::run_code`]'s lane loops with the
/// operator/type match hoisted out of the per-lane path.
#[derive(Debug, Clone, PartialEq)]
pub enum KOp {
    /// `i[dst..dst+len] = vals` (also width-1 `ConstI`).
    ConstVecI {
        dst: u32,
        vals: Box<[i64]>,
    },
    /// `f[dst..dst+len] = vals`.
    ConstVecF {
        dst: u32,
        vals: Box<[f64]>,
    },
    /// `copy_within` — alias-safe, like `Op::MovNI`.
    MovNI {
        dst: u32,
        src: u32,
        w: u32,
    },
    MovNF {
        dst: u32,
        src: u32,
        w: u32,
    },
    /// Broadcast (reads the scalar before filling, so overlap is safe).
    SplatI {
        dst: u32,
        a: u32,
        w: u32,
    },
    SplatF {
        dst: u32,
        a: u32,
        w: u32,
    },
    /// `extract_even`/`extract_odd`; `dst` is fresh by construction.
    PermI {
        parity: u32,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    PermF {
        parity: u32,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    /// `i[dst] = f[a] as i64`.
    FToI {
        dst: u32,
        a: u32,
    },
    /// Indexed vector-array element load, `Op::LoadVElemI` verbatim:
    /// `i[dst..dst+w] = i[base + i[idx]*w ..]`. The element index is
    /// dynamic (bounds-asserted at execution like the dispatch path), so
    /// the footprint conservatively reads the whole `len * w` array —
    /// these are the moves that let fused runs span an actor's panelized
    /// region state instead of breaking at every state access.
    LoadVElemI {
        dst: u32,
        base: u32,
        len: u32,
        idx: u32,
        w: u32,
    },
    LoadVElemF {
        dst: u32,
        base: u32,
        len: u32,
        idx: u32,
        w: u32,
    },
    /// Indexed vector-array element store, `Op::StoreVElemI` verbatim:
    /// `i[base + i[idx]*w ..] = i[src..src+w]`. The footprint writes the
    /// whole array conservatively *and* lists it as read (a may-write of
    /// one panel preserves every other panel's bits), which keeps the
    /// alias passes from treating the array as fully overwritten.
    StoreVElemI {
        base: u32,
        len: u32,
        idx: u32,
        src: u32,
        w: u32,
    },
    StoreVElemF {
        base: u32,
        len: u32,
        idx: u32,
        src: u32,
        w: u32,
    },

    // --- Backend-specialized arithmetic (dst disjoint from srcs, all
    // ranges in-bounds — verified at fusion time) ----------------------
    AddF32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    SubF32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    MulF32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    DivF32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    AddF64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    SubF64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    MulF64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    DivF64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    AddI32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    SubI32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    MulI32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    AddI64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    SubI64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    MulI64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    /// Domain-independent on the sign-extended representation: the upper
    /// 32 bits of a lane-wise `&`/`|`/`^` of two sign-extended values are
    /// exactly the sign-extension of the result's bit 31.
    AndI {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    OrI {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    XorI {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },

    // --- Generic exact fallbacks (identical to run_code lane loops) ----
    BinI {
        op: BinOp,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    BinF {
        op: BinOp,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    CmpF {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    /// Integer compare producing 0/1 lanes, specialized like the
    /// arithmetic variants (dst disjoint from sources, verified at
    /// fusion time). Sign extension preserves order, so the 64-bit
    /// predicate is exact for both widths; `ty` only gates which tiers
    /// have a native mask instruction for it.
    CmpI {
        op: BinOp,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    NegI {
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    NegF {
        dst: u32,
        a: u32,
        w: u32,
    },
    NotI {
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    LogNotI {
        dst: u32,
        a: u32,
        w: u32,
    },
    LogNotF {
        dst: u32,
        a: u32,
        w: u32,
    },
    CastII {
        from: ScalarTy,
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    CastIF {
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    CastFI {
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    CastFF {
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    /// Unary integer intrinsic (always `Abs`).
    Call1I {
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    Call2I {
        i: Intrinsic,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    Call1F {
        i: Intrinsic,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    Call2F {
        i: Intrinsic,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },

    // --- Register-resident chain (formed by `form_chains` from runs of
    // the specialized arithmetic variants above; see module docs) ------
    Chain {
        dom: ChainDom,
        /// Accumulator load range `[a, a+w)`.
        a: u32,
        w: u32,
        stages: Box<[ChainStage]>,
    },
}

/// Value domain of a register-resident chain. Determines the in-register
/// accumulator representation: `F32`/`I32` chains keep the accumulator
/// narrow (the specialized ops narrow per-stage anyway, so narrowing once
/// at the load is bit-identical), `F64`/`I64` keep it full-width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainDom {
    F32,
    F64,
    I32,
    I64,
}

/// One chain stage: `acc = acc <kind> other` (or reversed for
/// `RSub`/`RDiv`, which encode the original op reading the accumulator as
/// its *right* operand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainKind {
    Add,
    Sub,
    Mul,
    Div,
    RSub,
    RDiv,
    And,
    Or,
    Xor,
}

/// One producer→consumer step of a [`KOp::Chain`]. `other` is the
/// non-accumulator operand range `[other, other+w)`; `store` is the
/// destination range start when this stage's result must be written back
/// (always for the last write of each destination range, elided when a
/// later stage rewrites the identical range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainStage {
    pub kind: ChainKind,
    pub other: u32,
    pub store: Option<u32>,
}

// ---------------------------------------------------------------------
// Fusion pass
// ---------------------------------------------------------------------

/// `[lo, lo+w)` and `[r, r+w)` do not overlap.
fn disjoint(lo: u32, r: u32, w: u32) -> bool {
    r + w <= lo || r >= lo + w
}

/// Specialized-variant legality: destination disjoint from both sources
/// and every range inside the register file.
fn specializable(dst: u32, a: u32, b: u32, w: u32, file_len: u32) -> bool {
    let fits = |r: u32| r.checked_add(w).is_some_and(|end| end <= file_len);
    fits(dst) && fits(a) && fits(b) && disjoint(dst, a, w) && disjoint(dst, b, w)
}

/// Map an integer binary op to its specialized variant, if one exists
/// and the operand layout permits; generic [`KOp::BinI`] otherwise.
#[allow(clippy::too_many_arguments)]
fn kop_bin_i(op: BinOp, ty: ScalarTy, dst: u32, a: u32, b: u32, w: u32, int_regs: u32) -> KOp {
    if op.is_comparison() && specializable(dst, a, b, w, int_regs) {
        return KOp::CmpI {
            op,
            ty,
            dst,
            a,
            b,
            w,
        };
    }
    if !op.is_comparison() && specializable(dst, a, b, w, int_regs) {
        match (op, ty) {
            (BinOp::Add, ScalarTy::I32) => return KOp::AddI32 { dst, a, b, w },
            (BinOp::Sub, ScalarTy::I32) => return KOp::SubI32 { dst, a, b, w },
            (BinOp::Mul, ScalarTy::I32) => return KOp::MulI32 { dst, a, b, w },
            (BinOp::Add, ScalarTy::I64) => return KOp::AddI64 { dst, a, b, w },
            (BinOp::Sub, ScalarTy::I64) => return KOp::SubI64 { dst, a, b, w },
            (BinOp::Mul, ScalarTy::I64) => return KOp::MulI64 { dst, a, b, w },
            (BinOp::And, _) => return KOp::AndI { dst, a, b, w },
            (BinOp::Or, _) => return KOp::OrI { dst, a, b, w },
            (BinOp::Xor, _) => return KOp::XorI { dst, a, b, w },
            _ => {}
        }
    }
    KOp::BinI {
        op,
        ty,
        dst,
        a,
        b,
        w,
    }
}

/// Map a float binary op, preferring the specialized variant.
#[allow(clippy::too_many_arguments)]
fn kop_bin_f(op: BinOp, ty: ScalarTy, dst: u32, a: u32, b: u32, w: u32, float_regs: u32) -> KOp {
    if specializable(dst, a, b, w, float_regs) {
        match (op, ty) {
            (BinOp::Add, ScalarTy::F32) => return KOp::AddF32 { dst, a, b, w },
            (BinOp::Sub, ScalarTy::F32) => return KOp::SubF32 { dst, a, b, w },
            (BinOp::Mul, ScalarTy::F32) => return KOp::MulF32 { dst, a, b, w },
            (BinOp::Div, ScalarTy::F32) => return KOp::DivF32 { dst, a, b, w },
            (BinOp::Add, ScalarTy::F64) => return KOp::AddF64 { dst, a, b, w },
            (BinOp::Sub, ScalarTy::F64) => return KOp::SubF64 { dst, a, b, w },
            (BinOp::Mul, ScalarTy::F64) => return KOp::MulF64 { dst, a, b, w },
            (BinOp::Div, ScalarTy::F64) => return KOp::DivF64 { dst, a, b, w },
            _ => {}
        }
    }
    KOp::BinF {
        op,
        ty,
        dst,
        a,
        b,
        w,
    }
}

/// Lower one bytecode op to a fused op, or `None` for non-fusible ops
/// (tape/channel/array accesses, control flow, `Charge`).
fn lower(op: &Op, int_regs: u32, float_regs: u32) -> Option<KOp> {
    Some(match *op {
        Op::ConstI { dst, v } => KOp::ConstVecI {
            dst,
            vals: Box::new([v]),
        },
        Op::ConstF { dst, v } => KOp::ConstVecF {
            dst,
            vals: Box::new([v]),
        },
        Op::ConstVecI { dst, ref vals } => KOp::ConstVecI {
            dst,
            vals: vals.clone(),
        },
        Op::ConstVecF { dst, ref vals } => KOp::ConstVecF {
            dst,
            vals: vals.clone(),
        },
        Op::MovI { dst, src } => KOp::MovNI { dst, src, w: 1 },
        Op::MovF { dst, src } => KOp::MovNF { dst, src, w: 1 },
        Op::MovNI { dst, src, w } => KOp::MovNI { dst, src, w },
        Op::MovNF { dst, src, w } => KOp::MovNF { dst, src, w },
        Op::FToI { dst, a } => KOp::FToI { dst, a },
        Op::BinI { op, ty, dst, a, b } => kop_bin_i(op, ty, dst, a, b, 1, int_regs),
        Op::VBinI {
            op,
            ty,
            dst,
            a,
            b,
            w,
        } => kop_bin_i(op, ty, dst, a, b, w, int_regs),
        Op::BinF { op, ty, dst, a, b } => kop_bin_f(op, ty, dst, a, b, 1, float_regs),
        Op::VBinF {
            op,
            ty,
            dst,
            a,
            b,
            w,
        } => kop_bin_f(op, ty, dst, a, b, w, float_regs),
        Op::CmpF { op, dst, a, b } => KOp::CmpF {
            op,
            dst,
            a,
            b,
            w: 1,
        },
        Op::VCmpF { op, dst, a, b, w } => KOp::CmpF { op, dst, a, b, w },
        Op::NegI { ty, dst, a } => KOp::NegI { ty, dst, a, w: 1 },
        Op::VNegI { ty, dst, a, w } => KOp::NegI { ty, dst, a, w },
        Op::NegF { dst, a } => KOp::NegF { dst, a, w: 1 },
        Op::VNegF { dst, a, w } => KOp::NegF { dst, a, w },
        Op::NotI { ty, dst, a } => KOp::NotI { ty, dst, a, w: 1 },
        Op::VNotI { ty, dst, a, w } => KOp::NotI { ty, dst, a, w },
        Op::LogNotI { dst, a } => KOp::LogNotI { dst, a, w: 1 },
        Op::VLogNotI { dst, a, w } => KOp::LogNotI { dst, a, w },
        Op::LogNotF { dst, a } => KOp::LogNotF { dst, a, w: 1 },
        Op::VLogNotF { dst, a, w } => KOp::LogNotF { dst, a, w },
        Op::CastII { from, to, dst, a } => KOp::CastII {
            from,
            to,
            dst,
            a,
            w: 1,
        },
        Op::VCastII {
            from,
            to,
            dst,
            a,
            w,
        } => KOp::CastII {
            from,
            to,
            dst,
            a,
            w,
        },
        Op::CastIF { to, dst, a } => KOp::CastIF { to, dst, a, w: 1 },
        Op::VCastIF { to, dst, a, w } => KOp::CastIF { to, dst, a, w },
        Op::CastFI { to, dst, a } => KOp::CastFI { to, dst, a, w: 1 },
        Op::VCastFI { to, dst, a, w } => KOp::CastFI { to, dst, a, w },
        Op::CastFF { to, dst, a } => KOp::CastFF { to, dst, a, w: 1 },
        Op::VCastFF { to, dst, a, w } => KOp::CastFF { to, dst, a, w },
        Op::Call1I { ty, dst, a, .. } => KOp::Call1I { ty, dst, a, w: 1 },
        Op::VCall1I { ty, dst, a, w, .. } => KOp::Call1I { ty, dst, a, w },
        Op::Call2I { i, dst, a, b } => KOp::Call2I { i, dst, a, b, w: 1 },
        Op::VCall2I { i, dst, a, b, w } => KOp::Call2I { i, dst, a, b, w },
        Op::Call1F { i, ty, dst, a } => KOp::Call1F {
            i,
            ty,
            dst,
            a,
            w: 1,
        },
        Op::VCall1F { i, ty, dst, a, w } => KOp::Call1F { i, ty, dst, a, w },
        Op::Call2F { i, ty, dst, a, b } => KOp::Call2F {
            i,
            ty,
            dst,
            a,
            b,
            w: 1,
        },
        Op::VCall2F {
            i,
            ty,
            dst,
            a,
            b,
            w,
        } => KOp::Call2F {
            i,
            ty,
            dst,
            a,
            b,
            w,
        },
        Op::SplatI { dst, a, w } => KOp::SplatI { dst, a, w },
        Op::SplatF { dst, a, w } => KOp::SplatF { dst, a, w },
        Op::PermI {
            parity,
            dst,
            a,
            b,
            w,
        } => KOp::PermI {
            parity,
            dst,
            a,
            b,
            w,
        },
        Op::PermF {
            parity,
            dst,
            a,
            b,
            w,
        } => KOp::PermF {
            parity,
            dst,
            a,
            b,
            w,
        },
        // The loop variable is declared i32: identical to a width-1
        // I64 -> I32 cast on the sign-extended representation.
        Op::SetLoopVar { var, counter } => KOp::CastII {
            from: ScalarTy::I64,
            to: ScalarTy::I32,
            dst: var,
            a: counter,
            w: 1,
        },
        // Panelized region state: indexed vector-array moves are pure
        // register-file traffic, so runs may span them (the arithmetic
        // between a panel load and its writeback then chains normally).
        Op::LoadVElemI {
            dst,
            base,
            len,
            idx,
            w,
        } => KOp::LoadVElemI {
            dst,
            base,
            len,
            idx,
            w,
        },
        Op::LoadVElemF {
            dst,
            base,
            len,
            idx,
            w,
        } => KOp::LoadVElemF {
            dst,
            base,
            len,
            idx,
            w,
        },
        Op::StoreVElemI {
            base,
            len,
            idx,
            src,
            w,
        } => KOp::StoreVElemI {
            base,
            len,
            idx,
            src,
            w,
        },
        Op::StoreVElemF {
            base,
            len,
            idx,
            src,
            w,
        } => KOp::StoreVElemF {
            base,
            len,
            idx,
            src,
            w,
        },
        _ => return None,
    })
}

/// Register space a fused-op range lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Space {
    I,
    F,
}

/// A `(space, start, len)` register range.
type RegRange = (Space, u32, u32);

fn overlaps(a: RegRange, b: RegRange) -> bool {
    a.0 == b.0 && a.1 < b.1 + b.2 && b.1 < a.1 + a.2
}

/// The single range a fused op writes and the (up to three) ranges it
/// reads — the alias footprint the redundancy pruner works over.
fn footprint(op: &KOp) -> (RegRange, [Option<RegRange>; 3]) {
    use Space::{F, I};
    let r1 = |r| [Some(r), None, None];
    let r2 = |a, b| [Some(a), Some(b), None];
    let r3 = |a, b, c| [Some(a), Some(b), Some(c)];
    match *op {
        KOp::ConstVecI { dst, ref vals } => ((I, dst, vals.len() as u32), [None, None, None]),
        KOp::ConstVecF { dst, ref vals } => ((F, dst, vals.len() as u32), [None, None, None]),
        KOp::MovNI { dst, src, w } => ((I, dst, w), r1((I, src, w))),
        KOp::MovNF { dst, src, w } => ((F, dst, w), r1((F, src, w))),
        KOp::SplatI { dst, a, w } => ((I, dst, w), r1((I, a, 1))),
        KOp::SplatF { dst, a, w } => ((F, dst, w), r1((F, a, 1))),
        KOp::PermI { dst, a, b, w, .. } => ((I, dst, w), r2((I, a, w), (I, b, w))),
        KOp::PermF { dst, a, b, w, .. } => ((F, dst, w), r2((F, a, w), (F, b, w))),
        KOp::FToI { dst, a } => ((I, dst, 1), r1((F, a, 1))),
        KOp::LoadVElemI {
            dst,
            base,
            len,
            idx,
            w,
        } => ((I, dst, w), r2((I, base, len * w), (I, idx, 1))),
        KOp::LoadVElemF {
            dst,
            base,
            len,
            idx,
            w,
        } => ((F, dst, w), r2((F, base, len * w), (I, idx, 1))),
        // The array range is both the (conservative, may-write) write and
        // a read: every lane the store does not dynamically hit keeps its
        // prior bits. Listing it as read makes the write-covers check in
        // [`drop_dead_copies`] unreachable for ops under it and keeps
        // [`prune_idempotent`] from ever treating a store as idempotent.
        KOp::StoreVElemI {
            base,
            len,
            idx,
            src,
            w,
        } => (
            (I, base, len * w),
            r3((I, src, w), (I, idx, 1), (I, base, len * w)),
        ),
        KOp::StoreVElemF {
            base,
            len,
            idx,
            src,
            w,
        } => (
            (F, base, len * w),
            r3((F, src, w), (I, idx, 1), (F, base, len * w)),
        ),
        KOp::AddF32 { dst, a, b, w }
        | KOp::SubF32 { dst, a, b, w }
        | KOp::MulF32 { dst, a, b, w }
        | KOp::DivF32 { dst, a, b, w }
        | KOp::AddF64 { dst, a, b, w }
        | KOp::SubF64 { dst, a, b, w }
        | KOp::MulF64 { dst, a, b, w }
        | KOp::DivF64 { dst, a, b, w }
        | KOp::BinF { dst, a, b, w, .. }
        | KOp::Call2F { dst, a, b, w, .. } => ((F, dst, w), r2((F, a, w), (F, b, w))),
        KOp::AddI32 { dst, a, b, w }
        | KOp::SubI32 { dst, a, b, w }
        | KOp::MulI32 { dst, a, b, w }
        | KOp::AddI64 { dst, a, b, w }
        | KOp::SubI64 { dst, a, b, w }
        | KOp::MulI64 { dst, a, b, w }
        | KOp::AndI { dst, a, b, w }
        | KOp::OrI { dst, a, b, w }
        | KOp::XorI { dst, a, b, w }
        | KOp::BinI { dst, a, b, w, .. }
        | KOp::CmpI { dst, a, b, w, .. }
        | KOp::Call2I { dst, a, b, w, .. } => ((I, dst, w), r2((I, a, w), (I, b, w))),
        KOp::CmpF { dst, a, b, w, .. } => ((I, dst, w), r2((F, a, w), (F, b, w))),
        KOp::NegI { dst, a, w, .. }
        | KOp::NotI { dst, a, w, .. }
        | KOp::LogNotI { dst, a, w }
        | KOp::CastII { dst, a, w, .. }
        | KOp::Call1I { dst, a, w, .. } => ((I, dst, w), r1((I, a, w))),
        KOp::NegF { dst, a, w } | KOp::CastFF { dst, a, w, .. } | KOp::Call1F { dst, a, w, .. } => {
            ((F, dst, w), r1((F, a, w)))
        }
        KOp::LogNotF { dst, a, w } | KOp::CastFI { dst, a, w, .. } => ((I, dst, w), r1((F, a, w))),
        KOp::CastIF { dst, a, w, .. } => ((F, dst, w), r1((I, a, w))),
        // Chains write many ranges, which this single-write footprint
        // cannot express. They are formed by `form_chains` *after* every
        // pass that queries footprints (pruning, copy propagation, dead
        // copy elimination) and in-bounds checking has already run on the
        // pre-chain ops, so no footprint is ever taken of one.
        KOp::Chain { .. } => unreachable!("chains are formed after the alias passes"),
    }
}

/// Every range the op touches lies inside the register files. Fusion
/// refuses ops that fail this, so backends may use unchecked accesses
/// for *any* fused op, not just the specialized arithmetic variants.
fn in_bounds(op: &KOp, int_regs: u32, float_regs: u32) -> bool {
    let fits = |r: RegRange| {
        let file = match r.0 {
            Space::I => int_regs,
            Space::F => float_regs,
        };
        (r.1 as u64) + (r.2 as u64) <= file as u64
    };
    let (w, reads) = footprint(op);
    fits(w) && reads.iter().flatten().all(|&r| fits(r))
}

/// Forward a panel store to a following reload. A `LoadVElem*` whose
/// array, element-index register, and width match a still-live
/// `StoreVElem*` — no intervening write to the array, the index
/// register, or the stored source lanes — reads exactly the bits the
/// store wrote (same dynamic element, same bounds outcome), so it
/// becomes a register-to-register `MovN` from the store's source.
/// Region actors emit this shape for every `x = s[cur]` of a cascade:
/// writeback, then reload of the panel just written.
fn forward_panel_loads(kops: &mut [KOp]) {
    struct Live {
        space: Space,
        base: u32,
        len: u32,
        idx: u32,
        src: u32,
        w: u32,
    }
    let mut stores: Vec<Live> = Vec::new();
    for op in kops.iter_mut() {
        // Rewrite a matching reload first: invalidation below then uses
        // the replacement's precise (dst, w) write, not the load's
        // conservative whole-array read.
        let replace = match *op {
            KOp::LoadVElemI {
                dst,
                base,
                len,
                idx,
                w,
            } => stores
                .iter()
                .find(|s| {
                    s.space == Space::I
                        && s.base == base
                        && s.len == len
                        && s.idx == idx
                        && s.w == w
                })
                .map(|s| KOp::MovNI { dst, src: s.src, w }),
            KOp::LoadVElemF {
                dst,
                base,
                len,
                idx,
                w,
            } => stores
                .iter()
                .find(|s| {
                    s.space == Space::F
                        && s.base == base
                        && s.len == len
                        && s.idx == idx
                        && s.w == w
                })
                .map(|s| KOp::MovNF { dst, src: s.src, w }),
            _ => None,
        };
        if let Some(r) = replace {
            *op = r;
        }
        let (wr, _) = footprint(op);
        stores.retain(|s| {
            !overlaps(wr, (s.space, s.base, s.len * s.w))
                && !overlaps(wr, (Space::I, s.idx, 1))
                && !overlaps(wr, (s.space, s.src, s.w))
        });
        match *op {
            KOp::StoreVElemI {
                base,
                len,
                idx,
                src,
                w,
            } => stores.push(Live {
                space: Space::I,
                base,
                len,
                idx,
                src,
                w,
            }),
            KOp::StoreVElemF {
                base,
                len,
                idx,
                src,
                w,
            } => stores.push(Live {
                space: Space::F,
                base,
                len,
                idx,
                src,
                w,
            }),
            _ => {}
        }
    }
}

/// Drop idempotent re-executions: a fused op identical to an earlier one
/// in the same run, with nothing in between touching any register the
/// earlier op read or wrote, rewrites the exact same bits and can go.
/// Unrolled loop bodies re-materialize the same constants every
/// iteration; this collapses them to one materialization per kernel while
/// leaving final register state bit-identical.
///
/// An op whose write range overlaps one of its own read ranges (legal for
/// the generic fallback variants, e.g. `BinI` with `dst == a` from
/// `x = x + c`, or an overlapping `MovN`) is never idempotent: each
/// re-execution reads state its previous execution wrote. Such ops are
/// never offered as dedup candidates — and since equality implies an
/// identical footprint, a self-aliasing op can never match a registered
/// candidate either.
fn prune_idempotent(kops: Vec<KOp>) -> Vec<KOp> {
    let mut out: Vec<KOp> = Vec::with_capacity(kops.len());
    let mut avail: Vec<usize> = Vec::new();
    for k in kops {
        if avail.iter().any(|&e| out[e] == k) {
            continue;
        }
        let (w, r) = footprint(&k);
        avail.retain(|&e| {
            let (ew, er) = footprint(&out[e]);
            !overlaps(ew, w) && !er.iter().flatten().any(|&r| overlaps(r, w))
        });
        out.push(k);
        if !r.iter().flatten().any(|&rr| overlaps(rr, w)) {
            avail.push(out.len() - 1);
        }
    }
    out
}

/// Mutable access to the operands of the backend-specialized arithmetic
/// variants — the only ops copy propagation rewrites. Returns the shared
/// register space, both read operands, the destination, and the width.
fn arith_operands_mut(op: &mut KOp) -> Option<(Space, &mut u32, &mut u32, u32, u32)> {
    use Space::{F, I};
    match op {
        KOp::AddF32 { dst, a, b, w }
        | KOp::SubF32 { dst, a, b, w }
        | KOp::MulF32 { dst, a, b, w }
        | KOp::DivF32 { dst, a, b, w }
        | KOp::AddF64 { dst, a, b, w }
        | KOp::SubF64 { dst, a, b, w }
        | KOp::MulF64 { dst, a, b, w }
        | KOp::DivF64 { dst, a, b, w } => Some((F, a, b, *dst, *w)),
        KOp::AddI32 { dst, a, b, w }
        | KOp::SubI32 { dst, a, b, w }
        | KOp::MulI32 { dst, a, b, w }
        | KOp::AddI64 { dst, a, b, w }
        | KOp::SubI64 { dst, a, b, w }
        | KOp::MulI64 { dst, a, b, w }
        | KOp::AndI { dst, a, b, w }
        | KOp::OrI { dst, a, b, w }
        | KOp::XorI { dst, a, b, w }
        | KOp::CmpI { dst, a, b, w, .. } => Some((I, a, b, *dst, *w)),
        _ => None,
    }
}

/// Forward copy propagation. After `MovN dst <- src` with disjoint
/// ranges, `src` and `dst` hold the same bits until either is rewritten,
/// so an arithmetic read lying fully inside `dst` can read the
/// corresponding `src` registers instead (kept only if it preserves the
/// specialized variants' dst-disjoint-from-sources invariant). This
/// unchains the per-iteration writeback of unrolled accumulator loops
/// from the arithmetic that follows it, so [`drop_dead_copies`] can then
/// remove the copy itself.
fn propagate_copies(kops: &mut [KOp]) {
    // Live copies as (dst range, src start); ranges disjoint, same space.
    // Overlapping dst ranges cannot coexist: recording a copy first
    // invalidates every earlier copy its write touches.
    let mut copies: Vec<(RegRange, u32)> = Vec::new();
    for op in kops.iter_mut() {
        if let Some((sp, a, b, dst, w)) = arith_operands_mut(op) {
            for r in [a, b] {
                if let Some(&((_, cd, _), cs)) = copies
                    .iter()
                    .find(|&&((csp, cd, cw), _)| csp == sp && *r >= cd && *r + w <= cd + cw)
                {
                    let moved = cs + (*r - cd);
                    if disjoint(dst, moved, w) {
                        *r = moved;
                    }
                }
            }
        }
        // A copy's own source forwards through an earlier live copy too
        // (`MovN` is alias-safe `copy_within`, so no disjointness
        // constraint): this collapses forwarded-reload chains like
        // `68 <- 90; 32 <- 68` into `32 <- 90`, leaving the middle copy
        // for [`drop_dead_copies`].
        let mov = match op {
            KOp::MovNI { src, w, .. } => Some((Space::I, src, *w)),
            KOp::MovNF { src, w, .. } => Some((Space::F, src, *w)),
            _ => None,
        };
        if let Some((sp, r, w)) = mov {
            if let Some(&((_, cd, _), cs)) = copies
                .iter()
                .find(|&&((csp, cd, cw), _)| csp == sp && *r >= cd && *r + w <= cd + cw)
            {
                *r = cs + (*r - cd);
            }
        }
        let (wr, _) = footprint(op);
        copies.retain(|&(cdst, csrc)| !overlaps(cdst, wr) && !overlaps((cdst.0, csrc, cdst.2), wr));
        match *op {
            KOp::MovNF { dst, src, w } if disjoint(dst, src, w) => {
                copies.push(((Space::F, dst, w), src));
            }
            KOp::MovNI { dst, src, w } if disjoint(dst, src, w) => {
                copies.push(((Space::I, dst, w), src));
            }
            _ => {}
        }
    }
}

/// Drop a `MovN` whose destination is fully overwritten later in the
/// kernel before any read touches it: execution is straight-line, the
/// later write rewrites every lane, so final register state is
/// bit-identical without it. Sound even when the covering write is
/// itself dropped — its own cover then transitively covers this one with
/// no intervening reads. Together with [`propagate_copies`] this keeps
/// only the last writeback of an unrolled accumulator loop.
fn drop_dead_copies(kops: Vec<KOp>) -> Vec<KOp> {
    let dead = |i: usize| {
        let (w, _) = footprint(&kops[i]);
        for later in &kops[i + 1..] {
            let (jw, jr) = footprint(later);
            if jr.iter().flatten().any(|&r| overlaps(r, w)) {
                return false;
            }
            if jw.0 == w.0 && jw.1 <= w.1 && jw.1 + jw.2 >= w.1 + w.2 {
                return true;
            }
            if overlaps(jw, w) {
                // Partial overwrite: keep, conservatively.
                return false;
            }
        }
        false
    };
    let mut out = Vec::with_capacity(kops.len());
    for (i, k) in kops.iter().enumerate() {
        let copy = matches!(k, KOp::MovNF { .. } | KOp::MovNI { .. });
        if !(copy && dead(i)) {
            out.push(k.clone());
        }
    }
    out
}

// ---------------------------------------------------------------------
// Chain formation
// ---------------------------------------------------------------------

/// Chain-compatibility class of a specialized arithmetic op. Bitwise ops
/// operate on full 64-bit lanes, so they only join `I64`-domain chains:
/// inside an `I32` chain the accumulator's upper 32 bits are not
/// materialized, and a bitwise stage that must store would write a
/// sign-extension of the low 32 bits where the original op wrote the
/// full 64-bit result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainClass {
    F32,
    F64,
    I32,
    I64,
    /// `AndI`/`OrI`/`XorI`: domain-independent, merges with `I64` only.
    Bits,
}

/// Decompose a specialized arithmetic op into chain parts
/// `(class, kind, dst, a, b, w)`; `None` for everything else.
fn chain_parts(op: &KOp) -> Option<(ChainClass, ChainKind, u32, u32, u32, u32)> {
    use ChainClass as C;
    use ChainKind as K;
    Some(match *op {
        KOp::AddF32 { dst, a, b, w } => (C::F32, K::Add, dst, a, b, w),
        KOp::SubF32 { dst, a, b, w } => (C::F32, K::Sub, dst, a, b, w),
        KOp::MulF32 { dst, a, b, w } => (C::F32, K::Mul, dst, a, b, w),
        KOp::DivF32 { dst, a, b, w } => (C::F32, K::Div, dst, a, b, w),
        KOp::AddF64 { dst, a, b, w } => (C::F64, K::Add, dst, a, b, w),
        KOp::SubF64 { dst, a, b, w } => (C::F64, K::Sub, dst, a, b, w),
        KOp::MulF64 { dst, a, b, w } => (C::F64, K::Mul, dst, a, b, w),
        KOp::DivF64 { dst, a, b, w } => (C::F64, K::Div, dst, a, b, w),
        KOp::AddI32 { dst, a, b, w } => (C::I32, K::Add, dst, a, b, w),
        KOp::SubI32 { dst, a, b, w } => (C::I32, K::Sub, dst, a, b, w),
        KOp::MulI32 { dst, a, b, w } => (C::I32, K::Mul, dst, a, b, w),
        KOp::AddI64 { dst, a, b, w } => (C::I64, K::Add, dst, a, b, w),
        KOp::SubI64 { dst, a, b, w } => (C::I64, K::Sub, dst, a, b, w),
        KOp::MulI64 { dst, a, b, w } => (C::I64, K::Mul, dst, a, b, w),
        KOp::AndI { dst, a, b, w } => (C::Bits, K::And, dst, a, b, w),
        KOp::OrI { dst, a, b, w } => (C::Bits, K::Or, dst, a, b, w),
        KOp::XorI { dst, a, b, w } => (C::Bits, K::Xor, dst, a, b, w),
        _ => return None,
    })
}

fn chain_class_merge(cur: ChainClass, next: ChainClass) -> Option<ChainClass> {
    match (cur, next) {
        (a, b) if a == b => Some(a),
        (ChainClass::I64, ChainClass::Bits) | (ChainClass::Bits, ChainClass::I64) => {
            Some(ChainClass::I64)
        }
        _ => None,
    }
}

/// `kind` with its operands swapped — used when the accumulator enters a
/// stage as the *right* operand of the original op.
fn chain_kind_reversed(kind: ChainKind) -> ChainKind {
    match kind {
        ChainKind::Add | ChainKind::Mul | ChainKind::And | ChainKind::Or | ChainKind::Xor => kind,
        ChainKind::Sub => ChainKind::RSub,
        ChainKind::Div => ChainKind::RDiv,
        ChainKind::RSub | ChainKind::RDiv => unreachable!("chain_parts emits base kinds only"),
    }
}

/// Collapse producer→consumer runs of specialized arithmetic into
/// [`KOp::Chain`]s (see module docs). Runs after the alias passes.
///
/// Legality, checked while growing a chain — all ranges have the common
/// width `w`, so two ranges are either *identical* (same start) or they
/// overlap/are disjoint:
///
/// - every stage consumes the previous stage's destination as *exactly
///   one* operand (the accumulator);
/// - every pair of ranges the chain touches (initial accumulator load,
///   every stage's `other`, every destination) is identical-or-disjoint.
///
/// That invariant makes chunk-major execution (all stages on lanes
/// `[k, k+L)` before moving to the next chunk) bit-identical to the
/// original stage-major order: identical ranges are lane-aligned, and
/// for each lane the chunk preserves the stage order of its loads and
/// stores, while disjoint ranges never interact at all. The ping-pong
/// accumulator idiom (`t = x*c; x = t+d; ...`) is legal under it even
/// though a stage rewrites the range the accumulator was loaded from:
/// lane `k` is always loaded before the chunk that stores lane `k`.
///
/// A stage's store is elided when the next stage touching its range is
/// another *write* (or when chains never read it again — then only the
/// range's last write may be elided… it may not: the final value must
/// land). Concretely: keep the store if a later stage *reads* the range
/// before it is rewritten, or if no later stage rewrites it; elide
/// otherwise. Elided values still travel through the accumulator
/// register, so nothing observable changes.
fn form_chains(kops: Vec<KOp>) -> Vec<KOp> {
    let mut out: Vec<KOp> = Vec::with_capacity(kops.len());
    let mut i = 0usize;
    while i < kops.len() {
        let Some((class0, kind0, dst0, a0, b0, w)) = chain_parts(&kops[i]) else {
            out.push(kops[i].clone());
            i += 1;
            continue;
        };
        // Grow greedily. `specializable` already proved each op's dst
        // disjoint from its own sources, so only cross-stage aliasing
        // needs checking here.
        let ok = |x: u32, ys: &[u32]| ys.iter().all(|&y| x == y || disjoint(x, y, w));
        let mut class = class0;
        let mut stages: Vec<(ChainKind, u32, u32)> = vec![(kind0, b0, dst0)];
        let mut ranges: Vec<u32> = vec![a0, b0, dst0];
        let mut prev_dst = dst0;
        let mut j = i + 1;
        while let Some((c2, k2, d2, a2, b2, w2)) = kops.get(j).and_then(chain_parts) {
            if w2 != w {
                break;
            }
            let Some(merged) = chain_class_merge(class, c2) else {
                break;
            };
            let (kind, other) = if a2 == prev_dst && b2 != prev_dst {
                (k2, b2)
            } else if b2 == prev_dst && a2 != prev_dst {
                (chain_kind_reversed(k2), a2)
            } else {
                break;
            };
            if !ok(other, &ranges) || !ok(d2, &ranges) {
                break;
            }
            class = merged;
            stages.push((kind, other, d2));
            for r in [other, d2] {
                if !ranges.contains(&r) {
                    ranges.push(r);
                }
            }
            prev_dst = d2;
            j += 1;
        }
        if stages.len() >= MIN_CHAIN {
            let dom = match class {
                ChainClass::F32 => ChainDom::F32,
                ChainClass::F64 => ChainDom::F64,
                ChainClass::I32 => ChainDom::I32,
                ChainClass::I64 | ChainClass::Bits => ChainDom::I64,
            };
            let staged: Box<[ChainStage]> = stages
                .iter()
                .enumerate()
                .map(|(s, &(kind, other, d))| {
                    // Elide iff the next stage touching this range is
                    // another write: a read in between must see this
                    // store; the range's final value must always land.
                    let mut store = Some(d);
                    for &(_, lo, ld) in &stages[s + 1..] {
                        if lo == d {
                            break; // read first: keep the store
                        }
                        if ld == d {
                            store = None; // rewritten unread: elide
                            break;
                        }
                    }
                    ChainStage { kind, other, store }
                })
                .collect();
            out.push(KOp::Chain {
                dom,
                a: a0,
                w,
                stages: staged,
            });
            i = j;
        } else {
            out.push(kops[i].clone());
            i += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------
// Profitability
// ---------------------------------------------------------------------

/// Number of op-units a fused op contributes: chains carry one unit per
/// stage (they replaced that many ops), everything else is one.
fn op_units(op: &KOp) -> usize {
    match op {
        KOp::Chain { stages, .. } => stages.len(),
        _ => 1,
    }
}

/// Number of op-units `tier` executes with genuine vector code: the
/// specialized slice paths every tier vectorizes, plus the ops only the
/// intrinsic tiers cover (permutations, float compares, f32 rounding
/// casts, `sqrt`/`abs`). Generic fallbacks and bookkeeping count 0.
fn simd_units(op: &KOp, tier: KernelTier) -> usize {
    let wide = |w: u32| w >= 2;
    let intrinsic_tier = matches!(tier, KernelTier::Sse2 | KernelTier::Avx2);
    match *op {
        KOp::AddF32 { w, .. }
        | KOp::SubF32 { w, .. }
        | KOp::MulF32 { w, .. }
        | KOp::DivF32 { w, .. }
        | KOp::AddF64 { w, .. }
        | KOp::SubF64 { w, .. }
        | KOp::MulF64 { w, .. }
        | KOp::DivF64 { w, .. }
        | KOp::AddI32 { w, .. }
        | KOp::SubI32 { w, .. }
        | KOp::MulI32 { w, .. }
        | KOp::AddI64 { w, .. }
        | KOp::SubI64 { w, .. }
        | KOp::MulI64 { w, .. }
        | KOp::AndI { w, .. }
        | KOp::OrI { w, .. }
        | KOp::XorI { w, .. } => wide(w) as usize,
        KOp::Chain { w, ref stages, .. } if wide(w) => stages.len(),
        KOp::Chain { .. } => 0,
        KOp::PermI { w, .. } | KOp::PermF { w, .. } | KOp::CmpF { w, .. } => {
            (intrinsic_tier && wide(w)) as usize
        }
        // SSE2 has dword compares only; 64-bit masks need AVX2.
        KOp::CmpI { ty, w, .. } => {
            (intrinsic_tier && wide(w) && (ty == ScalarTy::I32 || tier == KernelTier::Avx2))
                as usize
        }
        KOp::CastFF { w, .. } => (intrinsic_tier && wide(w)) as usize,
        KOp::Call1F { i, w, .. } => {
            (intrinsic_tier && wide(w) && matches!(i, Intrinsic::Sqrt | Intrinsic::Abs)) as usize
        }
        _ => 0,
    }
}

/// Default profitability threshold per tier. Entering a kernel has a
/// fixed cost (kernel lookup, tier dispatch, one non-inlined call), so
/// short or purely scalar runs lose to the plain dispatch loop; wider
/// tiers amortize that entry cost over more lanes per op-unit, so they
/// accept shorter runs.
fn tier_threshold(tier: KernelTier) -> usize {
    match tier {
        KernelTier::Portable => 32,
        KernelTier::Sse2 => 28,
        KernelTier::Avx2 => 24,
    }
}

/// Threshold for `tier` given a raw `MACROSS_KERNEL_FUSE_THRESHOLD`
/// value — the pure core, testable without touching the process env.
/// A parseable override wins for every tier; garbage is ignored.
fn threshold_for(tier: KernelTier, env_val: Option<&str>) -> usize {
    env_val
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| tier_threshold(tier))
}

/// Read the env-tunable profitability threshold (per compile, not in the
/// firing hot path).
fn fuse_threshold(tier: KernelTier) -> usize {
    threshold_for(
        tier,
        std::env::var("MACROSS_KERNEL_FUSE_THRESHOLD")
            .ok()
            .as_deref(),
    )
}

/// Keep a run only when it has enough genuine vector work for `tier` or
/// is long enough for the saved dispatch to amortize the kernel entry.
fn profitable(kops: &[KOp], tier: KernelTier, threshold: usize) -> bool {
    let simd: usize = kops.iter().map(|k| simd_units(k, tier)).sum();
    let units: usize = kops.iter().map(op_units).sum();
    simd * 4 + units >= threshold
}

/// Basic-block leaders: every position a jump can land on. A fused run
/// must not extend across one (jumping into the middle of a kernel would
/// skip the run prefix), but may *start* at one — the jump then lands on
/// the `Op::Kernel` itself.
fn leaders(code: &[Op]) -> Vec<bool> {
    let mut leader = vec![false; code.len() + 1];
    for op in code {
        let t = match op {
            Op::Jump { target } => *target,
            Op::JumpIfZI { target, .. } => *target,
            Op::JumpIfZF { target, .. } => *target,
            Op::LoopHead { exit, .. } => *exit,
            Op::LoopBack { head, .. } => *head,
            _ => continue,
        };
        if (t as usize) < leader.len() {
            leader[t as usize] = true;
        }
    }
    leader
}

/// Fuse straight-line runs of pure register ops in `code`, appending the
/// kernels to `kernels` (shared between `init` and `work`, indexed by
/// [`Op::Kernel`]). The profitability gate is tier-aware (wider tiers
/// accept shorter runs) and env-tunable via
/// `MACROSS_KERNEL_FUSE_THRESHOLD`. Returns the number of kernels
/// created.
pub fn fuse(
    code: &mut [Op],
    kernels: &mut Vec<Kernel>,
    int_regs: u32,
    float_regs: u32,
    tier: KernelTier,
) -> usize {
    let threshold = fuse_threshold(tier);
    fuse_runs(code, kernels, int_regs, float_regs, |kops| {
        profitable(kops, tier, threshold)
    })
}

/// [`fuse`] with an explicit profitability gate (tests use `|_| true` to
/// exercise run formation independently of the cost model).
fn fuse_runs(
    code: &mut [Op],
    kernels: &mut Vec<Kernel>,
    int_regs: u32,
    float_regs: u32,
    gate: impl Fn(&[KOp]) -> bool,
) -> usize {
    let leader = leaders(code);
    let before = kernels.len();
    let mut pc = 0usize;
    while pc < code.len() {
        let mut kops: Vec<KOp> = Vec::new();
        while pc + kops.len() < code.len() {
            let at = pc + kops.len();
            // Never extend across a jump target (except at run start).
            if !kops.is_empty() && leader[at] {
                break;
            }
            match lower(&code[at], int_regs, float_regs) {
                Some(k) if in_bounds(&k, int_regs, float_regs) => kops.push(k),
                _ => break,
            }
        }
        let span = kops.len();
        if span >= MIN_RUN {
            forward_panel_loads(&mut kops);
            let mut kops = prune_idempotent(kops);
            propagate_copies(&mut kops);
            let kops = drop_dead_copies(kops);
            let kops = form_chains(kops);
            if gate(&kops) {
                let idx = kernels.len() as u32;
                kernels.push(Kernel {
                    span: span as u32,
                    kops: kops.into_boxed_slice(),
                });
                // The fused ops stay in place behind the marker, so jumps
                // into the run (none exist past the leader check, but also
                // any future disassembly) still see real instructions.
                code[pc] = Op::Kernel(idx);
            }
            pc += span;
        } else {
            pc += span.max(1);
        }
    }
    kernels.len() - before
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Execute one fused kernel against the register files.
#[inline]
pub fn exec(kernel: &Kernel, tier: KernelTier, regs: &mut Regs) {
    #[cfg(target_arch = "x86_64")]
    match tier {
        // SAFETY: `Avx2` is only ever selected after
        // `is_x86_feature_detected!("avx2")` returned true; SSE2 is part
        // of the x86-64 baseline.
        KernelTier::Avx2 => {
            unsafe { x86::avx2::exec(&kernel.kops, regs) };
            return;
        }
        KernelTier::Sse2 => {
            unsafe { x86::sse2::exec(&kernel.kops, regs) };
            return;
        }
        KernelTier::Portable => {}
    }
    let _ = tier;
    for op in kernel.kops.iter() {
        exec_kop_portable(op, regs);
    }
}

/// Split a register file into a mutable destination window and two
/// shared source windows. Caller guarantees (fusion-time check) that the
/// ranges are in-bounds and the destination is disjoint from both
/// sources; the sources may alias each other.
fn split3<T>(file: &mut [T], dst: u32, a: u32, b: u32, w: u32) -> (&mut [T], &[T], &[T]) {
    let (dst, a, b, w) = (dst as usize, a as usize, b as usize, w as usize);
    let (lo, rest) = file.split_at_mut(dst);
    let (d, hi) = rest.split_at_mut(w);
    // A disjoint equal-or-shorter range lies entirely below `dst` or
    // entirely at/after `dst + w`.
    let pick = |r: usize| -> &[T] {
        if r < dst {
            &lo[r..r + w]
        } else {
            &hi[r - dst - w..r - dst - w + w]
        }
    };
    let (ra, rb) = (pick(a), pick(b));
    (d, ra, rb)
}

macro_rules! lanes_f32 {
    ($d:expr, $x:expr, $y:expr, $op:tt) => {
        for ((d, &x), &y) in $d.iter_mut().zip($x).zip($y) {
            *d = ((x as f32) $op (y as f32)) as f64;
        }
    };
}

macro_rules! lanes_f64 {
    ($d:expr, $x:expr, $y:expr, $op:tt) => {
        for ((d, &x), &y) in $d.iter_mut().zip($x).zip($y) {
            *d = x $op y;
        }
    };
}

macro_rules! lanes_i32 {
    ($d:expr, $x:expr, $y:expr, $f:ident) => {
        for ((d, &x), &y) in $d.iter_mut().zip($x).zip($y) {
            *d = ((x as i32).$f(y as i32)) as i64;
        }
    };
}

macro_rules! lanes_i64 {
    ($d:expr, $x:expr, $y:expr, $f:ident) => {
        for ((d, &x), &y) in $d.iter_mut().zip($x).zip($y) {
            *d = x.$f(y);
        }
    };
}

macro_rules! lanes_bits {
    ($d:expr, $x:expr, $y:expr, $op:tt) => {
        for ((d, &x), &y) in $d.iter_mut().zip($x).zip($y) {
            *d = x $op y;
        }
    };
}

/// Execute one fused op on the portable backend. Public within the crate
/// so the AVX2 dispatcher can fall through to it for generic variants.
/// Dynamic element index of a fused indexed vector move, with the same
/// guest-panic bounds contract as the dispatch path's `array_index` (the
/// firing layer's `catch_unwind` maps it to `VmError::Panicked`).
fn kernel_array_index(idx: i64, len: u32) -> usize {
    let k = idx as usize;
    assert!(
        k < len as usize,
        "array index {idx} out of bounds (len {len}) in fused kernel"
    );
    k
}

pub(crate) fn exec_kop_portable(op: &KOp, regs: &mut Regs) {
    match *op {
        KOp::ConstVecI { dst, ref vals } => {
            regs.i[dst as usize..dst as usize + vals.len()].copy_from_slice(vals);
        }
        KOp::ConstVecF { dst, ref vals } => {
            regs.f[dst as usize..dst as usize + vals.len()].copy_from_slice(vals);
        }
        KOp::MovNI { dst, src, w } => {
            regs.i
                .copy_within(src as usize..(src + w) as usize, dst as usize);
        }
        KOp::MovNF { dst, src, w } => {
            regs.f
                .copy_within(src as usize..(src + w) as usize, dst as usize);
        }
        KOp::SplatI { dst, a, w } => {
            let v = regs.i[a as usize];
            regs.i[dst as usize..(dst + w) as usize].fill(v);
        }
        KOp::SplatF { dst, a, w } => {
            let v = regs.f[a as usize];
            regs.f[dst as usize..(dst + w) as usize].fill(v);
        }
        KOp::PermI {
            parity,
            dst,
            a,
            b,
            w,
        } => {
            let w = w as usize;
            for k in 0..w {
                let pos = parity as usize + 2 * k;
                let v = if pos < w {
                    regs.i[a as usize + pos]
                } else {
                    regs.i[b as usize + pos - w]
                };
                regs.i[dst as usize + k] = v;
            }
        }
        KOp::PermF {
            parity,
            dst,
            a,
            b,
            w,
        } => {
            let w = w as usize;
            for k in 0..w {
                let pos = parity as usize + 2 * k;
                let v = if pos < w {
                    regs.f[a as usize + pos]
                } else {
                    regs.f[b as usize + pos - w]
                };
                regs.f[dst as usize + k] = v;
            }
        }
        KOp::FToI { dst, a } => regs.i[dst as usize] = regs.f[a as usize] as i64,
        KOp::LoadVElemI {
            dst,
            base,
            len,
            idx,
            w,
        } => {
            let s = base as usize + kernel_array_index(regs.i[idx as usize], len) * w as usize;
            regs.i.copy_within(s..s + w as usize, dst as usize);
        }
        KOp::LoadVElemF {
            dst,
            base,
            len,
            idx,
            w,
        } => {
            let s = base as usize + kernel_array_index(regs.i[idx as usize], len) * w as usize;
            regs.f.copy_within(s..s + w as usize, dst as usize);
        }
        KOp::StoreVElemI {
            base,
            len,
            idx,
            src,
            w,
        } => {
            let d = base as usize + kernel_array_index(regs.i[idx as usize], len) * w as usize;
            regs.i.copy_within(src as usize..(src + w) as usize, d);
        }
        KOp::StoreVElemF {
            base,
            len,
            idx,
            src,
            w,
        } => {
            let d = base as usize + kernel_array_index(regs.i[idx as usize], len) * w as usize;
            regs.f.copy_within(src as usize..(src + w) as usize, d);
        }

        KOp::AddF32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f32!(d, x, y, +);
        }
        KOp::SubF32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f32!(d, x, y, -);
        }
        KOp::MulF32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f32!(d, x, y, *);
        }
        KOp::DivF32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f32!(d, x, y, /);
        }
        KOp::AddF64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f64!(d, x, y, +);
        }
        KOp::SubF64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f64!(d, x, y, -);
        }
        KOp::MulF64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f64!(d, x, y, *);
        }
        KOp::DivF64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f64!(d, x, y, /);
        }
        KOp::AddI32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i32!(d, x, y, wrapping_add);
        }
        KOp::SubI32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i32!(d, x, y, wrapping_sub);
        }
        KOp::MulI32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i32!(d, x, y, wrapping_mul);
        }
        KOp::AddI64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i64!(d, x, y, wrapping_add);
        }
        KOp::SubI64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i64!(d, x, y, wrapping_sub);
        }
        KOp::MulI64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i64!(d, x, y, wrapping_mul);
        }
        KOp::AndI { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_bits!(d, x, y, &);
        }
        KOp::OrI { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_bits!(d, x, y, |);
        }
        KOp::XorI { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_bits!(d, x, y, ^);
        }

        KOp::BinI {
            op,
            ty,
            dst,
            a,
            b,
            w,
        } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] =
                    bin_i(op, ty, regs.i[a as usize + k], regs.i[b as usize + k]);
            }
        }
        KOp::BinF {
            op,
            ty,
            dst,
            a,
            b,
            w,
        } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] =
                    bin_f(op, ty, regs.f[a as usize + k], regs.f[b as usize + k]);
            }
        }
        KOp::CmpF { op, dst, a, b, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] =
                    cmp_f(op, regs.f[a as usize + k], regs.f[b as usize + k]);
            }
        }
        KOp::CmpI {
            op, dst, a, b, w, ..
        } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            for k in 0..w as usize {
                d[k] = cmp_i(op, x[k], y[k]);
            }
        }
        KOp::NegI { ty, dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = neg_i(ty, regs.i[a as usize + k]);
            }
        }
        KOp::NegF { dst, a, w } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] = -regs.f[a as usize + k];
            }
        }
        KOp::NotI { ty, dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = not_i(ty, regs.i[a as usize + k]);
            }
        }
        KOp::LogNotI { dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = (regs.i[a as usize + k] == 0) as i64;
            }
        }
        KOp::LogNotF { dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = (regs.f[a as usize + k] == 0.0) as i64;
            }
        }
        KOp::CastII {
            from,
            to,
            dst,
            a,
            w,
        } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = cast_ii(from, to, regs.i[a as usize + k]);
            }
        }
        KOp::CastIF { to, dst, a, w } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] = cast_if(to, regs.i[a as usize + k]);
            }
        }
        KOp::CastFI { to, dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = cast_fi(to, regs.f[a as usize + k]);
            }
        }
        KOp::CastFF { to, dst, a, w } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] = cast_ff(to, regs.f[a as usize + k]);
            }
        }
        KOp::Call1I { ty, dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = call1_i(ty, regs.i[a as usize + k]);
            }
        }
        KOp::Call2I { i, dst, a, b, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] =
                    call2_i(i, regs.i[a as usize + k], regs.i[b as usize + k]);
            }
        }
        KOp::Call1F { i, ty, dst, a, w } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] = call1_f(i, ty, regs.f[a as usize + k]);
            }
        }
        KOp::Call2F {
            i,
            ty,
            dst,
            a,
            b,
            w,
        } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] =
                    call2_f(i, ty, regs.f[a as usize + k], regs.f[b as usize + k]);
            }
        }
        KOp::Chain {
            dom,
            a,
            w,
            ref stages,
        } => exec_chain_portable(dom, a, w, stages, regs),
    }
}

// --- Portable chain execution ----------------------------------------

#[inline(always)]
fn chain_apply_f32(kind: ChainKind, acc: f32, o: f32) -> f32 {
    match kind {
        ChainKind::Add => acc + o,
        ChainKind::Sub => acc - o,
        ChainKind::Mul => acc * o,
        ChainKind::Div => acc / o,
        ChainKind::RSub => o - acc,
        ChainKind::RDiv => o / acc,
        _ => unreachable!("no bitwise stages in float chains"),
    }
}

#[inline(always)]
fn chain_apply_f64(kind: ChainKind, acc: f64, o: f64) -> f64 {
    match kind {
        ChainKind::Add => acc + o,
        ChainKind::Sub => acc - o,
        ChainKind::Mul => acc * o,
        ChainKind::Div => acc / o,
        ChainKind::RSub => o - acc,
        ChainKind::RDiv => o / acc,
        _ => unreachable!("no bitwise stages in float chains"),
    }
}

#[inline(always)]
fn chain_apply_i32(kind: ChainKind, acc: i32, o: i32) -> i32 {
    match kind {
        ChainKind::Add => acc.wrapping_add(o),
        ChainKind::Sub => acc.wrapping_sub(o),
        ChainKind::Mul => acc.wrapping_mul(o),
        ChainKind::RSub => o.wrapping_sub(acc),
        _ => unreachable!("no div/bitwise stages in i32 chains"),
    }
}

#[inline(always)]
fn chain_apply_i64(kind: ChainKind, acc: i64, o: i64) -> i64 {
    match kind {
        ChainKind::Add => acc.wrapping_add(o),
        ChainKind::Sub => acc.wrapping_sub(o),
        ChainKind::Mul => acc.wrapping_mul(o),
        ChainKind::RSub => o.wrapping_sub(acc),
        ChainKind::And => acc & o,
        ChainKind::Or => acc | o,
        ChainKind::Xor => acc ^ o,
        _ => unreachable!("no div stages in integer chains"),
    }
}

/// Portable chain body: full fixed-size chunks (so the per-stage lane
/// loops autovectorize) plus a scalar remainder. `$ld`/`$st` are the
/// exact domain conversions the specialized slice paths use, applied
/// once at the accumulator load and once per surviving store.
macro_rules! chain_lanes {
    ($file:expr, $a:expr, $w:expr, $stages:expr, $acc_ty:ty, $ld:expr, $st:expr, $apply:expr) => {{
        const CHUNK: usize = 8;
        let file = $file;
        let (a, w) = ($a as usize, $w as usize);
        let mut k = 0usize;
        while k + CHUNK <= w {
            let mut acc: [$acc_ty; CHUNK] = Default::default();
            for l in 0..CHUNK {
                acc[l] = $ld(file[a + k + l]);
            }
            for stg in $stages.iter() {
                let o = stg.other as usize;
                for l in 0..CHUNK {
                    acc[l] = $apply(stg.kind, acc[l], $ld(file[o + k + l]));
                }
                if let Some(d) = stg.store {
                    let d = d as usize;
                    for l in 0..CHUNK {
                        file[d + k + l] = $st(acc[l]);
                    }
                }
            }
            k += CHUNK;
        }
        while k < w {
            let mut acc = $ld(file[a + k]);
            for stg in $stages.iter() {
                acc = $apply(stg.kind, acc, $ld(file[stg.other as usize + k]));
                if let Some(d) = stg.store {
                    file[d as usize + k] = $st(acc);
                }
            }
            k += 1;
        }
    }};
}

/// Execute a register-resident chain on the portable tier. Bit-identical
/// to executing the original op sequence: per lane, the stage order is
/// preserved and each stage applies the same narrowed/widened scalar
/// semantics as the specialized slice paths it replaced.
fn exec_chain_portable(dom: ChainDom, a: u32, w: u32, stages: &[ChainStage], regs: &mut Regs) {
    match dom {
        ChainDom::F32 => chain_lanes!(
            &mut regs.f,
            a,
            w,
            stages,
            f32,
            |x: f64| x as f32,
            |x: f32| x as f64,
            chain_apply_f32
        ),
        ChainDom::F64 => chain_lanes!(
            &mut regs.f,
            a,
            w,
            stages,
            f64,
            |x: f64| x,
            |x: f64| x,
            chain_apply_f64
        ),
        ChainDom::I32 => chain_lanes!(
            &mut regs.i,
            a,
            w,
            stages,
            i32,
            |x: i64| x as i32,
            |x: i32| x as i64,
            chain_apply_i32
        ),
        ChainDom::I64 => chain_lanes!(
            &mut regs.i,
            a,
            w,
            stages,
            i64,
            |x: i64| x,
            |x: i64| x,
            chain_apply_i64
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_both(code: &mut [Op], int_regs: u32, float_regs: u32, seed: u64) -> (Regs, Regs) {
        use crate::bytecode::{run_code, CompiledFilter};
        use crate::machine::CycleCounters;
        let mk_regs = || {
            let mut r = Regs::new(int_regs as usize, float_regs as usize);
            for (k, x) in r.i.iter_mut().enumerate() {
                *x = ((seed.wrapping_mul(k as u64 + 1) % 2000) as i64) - 1000;
            }
            for (k, x) in r.f.iter_mut().enumerate() {
                *x = ((seed.wrapping_mul(k as u64 + 3) % 2000) as f64 - 1000.0) as f32 as f64;
            }
            r
        };
        let plain = CompiledFilter {
            name: "t".into(),
            int_regs,
            float_regs,
            zero_i: vec![],
            zero_f: vec![],
            init: vec![],
            work: code.to_vec(),
            charges: vec![],
            kernels: vec![],
            tier: KernelTier::Portable,
        };
        let mut kernels = Vec::new();
        fuse_runs(code, &mut kernels, int_regs, float_regs, |_| true);
        let fused = CompiledFilter {
            work: code.to_vec(),
            kernels,
            tier: select_tier(),
            ..plain.clone()
        };
        let mut c = CycleCounters::default();
        let (mut r1, mut r2) = (mk_regs(), mk_regs());
        run_code(
            &plain,
            &plain.work,
            &mut r1,
            &mut [],
            None,
            None,
            0,
            0,
            &mut c,
        )
        .unwrap();
        run_code(
            &fused,
            &fused.work,
            &mut r2,
            &mut [],
            None,
            None,
            0,
            0,
            &mut c,
        )
        .unwrap();
        (r1, r2)
    }

    #[test]
    fn fused_arith_matches_dispatch() {
        for seed in [1u64, 7, 13, 9999] {
            let mut code = vec![
                Op::VBinF {
                    op: BinOp::Mul,
                    ty: ScalarTy::F32,
                    dst: 8,
                    a: 0,
                    b: 4,
                    w: 4,
                },
                Op::VBinF {
                    op: BinOp::Add,
                    ty: ScalarTy::F32,
                    dst: 12,
                    a: 8,
                    b: 0,
                    w: 4,
                },
                Op::VBinI {
                    op: BinOp::Mul,
                    ty: ScalarTy::I32,
                    dst: 8,
                    a: 0,
                    b: 4,
                    w: 4,
                },
                Op::VBinI {
                    op: BinOp::Xor,
                    ty: ScalarTy::I32,
                    dst: 12,
                    a: 8,
                    b: 0,
                    w: 4,
                },
                Op::SplatI {
                    dst: 16,
                    a: 2,
                    w: 4,
                },
                Op::PermI {
                    parity: 1,
                    dst: 20,
                    a: 8,
                    b: 12,
                    w: 4,
                },
            ];
            let (r1, r2) = run_both(&mut code, 24, 16, seed);
            assert_eq!(r1.i, r2.i, "seed {seed}");
            assert_eq!(
                r1.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                r2.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn runs_stop_at_leaders_and_nonfusible_ops() {
        let mut code = vec![
            Op::ConstI { dst: 0, v: 3 },
            Op::ConstI { dst: 1, v: 0 },
            // leader (LoopBack target below)
            Op::LoopHead {
                counter: 1,
                limit: 0,
                exit: 7,
            },
            Op::BinI {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: 2,
                a: 2,
                b: 0,
            },
            Op::BinI {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: 3,
                a: 2,
                b: 2,
            },
            Op::Charge(0),
            Op::LoopBack {
                counter: 1,
                head: 2,
            },
            Op::MovI { dst: 4, src: 3 },
        ];
        let mut kernels = Vec::new();
        fuse_runs(&mut code, &mut kernels, 8, 0, |_| true);
        // Two fused runs: the two leading consts, and the two adds inside
        // the loop body (stopped by Charge). The trailing single MovI is
        // below MIN_RUN.
        assert_eq!(kernels.len(), 2);
        assert_eq!(code[0], Op::Kernel(0));
        assert!(matches!(code[2], Op::LoopHead { .. }));
        assert_eq!(code[3], Op::Kernel(1));
        assert!(matches!(code[4], Op::BinI { .. })); // left in place
        assert!(matches!(code[7], Op::MovI { .. }));
        // dst aliases src `a` in the first add: must have degraded to the
        // generic lane-loop variant, not AddI64.
        assert!(matches!(kernels[1].kops[0], KOp::BinI { .. }));
        assert!(matches!(kernels[1].kops[1], KOp::AddI64 { .. }));
    }

    #[test]
    fn idempotent_rematerializations_are_pruned() {
        // An unrolled two-stage chain: the second stage re-materializes
        // the same constant into the same registers with nothing touching
        // them in between — one materialization must survive, and the
        // fused result must still match plain dispatch bit-for-bit.
        let stage = |dst| {
            vec![
                Op::ConstF { dst: 8, v: 1.5 },
                Op::SplatF { dst: 9, a: 8, w: 4 },
                Op::VBinF {
                    op: BinOp::Mul,
                    ty: ScalarTy::F32,
                    dst,
                    a: 0,
                    b: 9,
                    w: 4,
                },
                Op::MovNF {
                    dst: 0,
                    src: dst,
                    w: 4,
                },
            ]
        };
        let mut code: Vec<Op> = stage(16).into_iter().chain(stage(16)).collect();
        let (r1, r2) = run_both(&mut code, 4, 24, 5);
        assert_eq!(r1.i, r2.i);
        assert_eq!(
            r1.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            r2.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
        let pruned = prune_idempotent(code_kops(
            &stage(16).into_iter().chain(stage(16)).collect::<Vec<_>>(),
        ));
        // Second stage's ConstF + SplatF collapse; its Mul and MovNF stay
        // (their inputs were rewritten in between).
        assert_eq!(pruned.len(), 6);
    }

    fn code_kops(code: &[Op]) -> Vec<KOp> {
        code.iter().map(|op| lower(op, 32, 32).unwrap()).collect()
    }

    #[test]
    fn self_aliasing_ops_are_never_pruned() {
        // `x = x + c` twice in a row: the ops are identical and nothing
        // between them touches their registers, but each re-execution
        // reads what the previous one wrote — dropping one halves the
        // increment. Same for an overlapping copy_within-style MovN.
        let add = Op::BinI {
            op: BinOp::Add,
            ty: ScalarTy::I64,
            dst: 1,
            a: 1,
            b: 0,
        };
        let mov = Op::MovNI {
            dst: 2,
            src: 1,
            w: 4,
        };
        let code = vec![
            Op::ConstI { dst: 0, v: 3 },
            add.clone(),
            add.clone(),
            mov.clone(),
            mov.clone(),
        ];
        let pruned = prune_idempotent(code_kops(&code));
        assert_eq!(pruned.len(), 5, "self-aliasing ops must all survive");
        // And end-to-end: fused execution stays bit-identical to dispatch.
        for seed in [1u64, 7, 23] {
            let mut c = code.clone();
            let (r1, r2) = run_both(&mut c, 8, 0, seed);
            assert_eq!(r1.i, r2.i, "seed {seed}");
        }
    }

    #[test]
    fn unprofitable_runs_stay_on_dispatch() {
        // Two scalar consts: a legal run, but far below the profitability
        // bar — no kernel may be created and the ops stay in place.
        let mut code = vec![Op::ConstI { dst: 0, v: 1 }, Op::ConstI { dst: 1, v: 2 }];
        let mut kernels = Vec::new();
        assert_eq!(fuse(&mut code, &mut kernels, 4, 0, KernelTier::Portable), 0);
        assert!(kernels.is_empty());
        assert!(matches!(code[0], Op::ConstI { .. }));
    }

    #[test]
    fn tier_selection_honors_overrides() {
        // Pure-function test: mutating the process env here would race
        // with concurrent tests in this module that call select_tier
        // via run_both. The env-var plumbing itself is exercised by
        // tests/kernel_backends.rs and tests/kernel_tier_matrix.rs,
        // which own their variables in single #[test]s, and by the CI
        // kernel-matrix job.
        assert!(forces_portable(Some("1")));
        assert!(forces_portable(Some("yes")));
        assert!(!forces_portable(Some("0")));
        assert!(!forces_portable(Some("")));
        assert!(!forces_portable(None));
        // Legacy portable override.
        assert_eq!(tier_for(None, true), Ok(KernelTier::Portable));
        // Explicit tier wins over the portable override.
        assert_eq!(tier_for(Some("portable"), true), Ok(KernelTier::Portable));
        // Unknown labels refuse loudly instead of degrading.
        assert!(tier_for(Some("avx512"), false).is_err());
        assert!(tier_for(Some("AVX2"), false).is_err());
        // Empty counts as unset.
        assert_eq!(tier_for(Some(""), true), Ok(KernelTier::Portable));
        // Detection picks the widest available tier.
        let detected = tier_for(None, false).unwrap();
        assert!(detected.available());
        for t in KernelTier::ALL {
            if t.available() {
                assert_eq!(detected, t, "detection must pick the widest tier");
                break;
            }
        }
        #[cfg(target_arch = "x86_64")]
        {
            assert_eq!(tier_for(Some("sse2"), false), Ok(KernelTier::Sse2));
            if std::is_x86_feature_detected!("avx2") {
                assert_eq!(tier_for(None, false), Ok(KernelTier::Avx2));
            } else {
                assert!(tier_for(Some("avx2"), false).is_err());
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            assert_eq!(tier_for(None, false), Ok(KernelTier::Portable));
            assert!(tier_for(Some("sse2"), false).is_err());
        }
    }

    #[test]
    fn tier_labels_round_trip() {
        for t in KernelTier::ALL {
            assert_eq!(KernelTier::from_label(t.label()), Some(t));
        }
        assert_eq!(KernelTier::from_label("neon"), None);
        assert_eq!(KernelTier::Portable.width_bits(), 0);
        assert_eq!(KernelTier::Sse2.width_bits(), 128);
        assert_eq!(KernelTier::Avx2.width_bits(), 256);
    }

    #[test]
    fn profitability_gate_is_tier_aware_and_tunable() {
        // Wider tiers accept shorter runs by default.
        assert!(threshold_for(KernelTier::Avx2, None) < threshold_for(KernelTier::Sse2, None));
        assert!(threshold_for(KernelTier::Sse2, None) < threshold_for(KernelTier::Portable, None));
        // The env override wins for every tier; garbage is ignored.
        for t in KernelTier::ALL {
            assert_eq!(threshold_for(t, Some("5")), 5);
            assert_eq!(threshold_for(t, Some("nope")), tier_threshold(t));
        }
        // A permutation-heavy run counts as vector work only on the
        // intrinsic tiers, so the same run can clear the bar on AVX2
        // while staying on dispatch for portable.
        let perm = KOp::PermF {
            parity: 0,
            dst: 16,
            a: 0,
            b: 8,
            w: 8,
        };
        let kops: Vec<KOp> = (0..6).map(|_| perm.clone()).collect();
        assert!(profitable(
            &kops,
            KernelTier::Avx2,
            tier_threshold(KernelTier::Avx2)
        ));
        assert!(!profitable(
            &kops,
            KernelTier::Portable,
            tier_threshold(KernelTier::Portable)
        ));
        // Chains count one unit per stage — they replaced that many ops.
        let chain = KOp::Chain {
            dom: ChainDom::F32,
            a: 0,
            w: 4,
            stages: (0..8)
                .map(|_| ChainStage {
                    kind: ChainKind::Mul,
                    other: 4,
                    store: Some(8),
                })
                .collect(),
        };
        assert_eq!(op_units(&chain), 8);
        assert_eq!(simd_units(&chain, KernelTier::Portable), 8);
    }

    #[test]
    fn chains_form_with_store_elision() {
        // vmix-shaped FMA ladder: Mul t1 <- x,c1; Add t2 <- t1,c2;
        // Mul t1 <- t2,c1; Add t2 <- t1,c2 — alternating destinations,
        // each op consuming the previous result. Only the *last* write
        // of each destination range may store.
        let kops = vec![
            KOp::MulF32 {
                dst: 8,
                a: 0,
                b: 4,
                w: 4,
            },
            KOp::AddF32 {
                dst: 12,
                a: 8,
                b: 16,
                w: 4,
            },
            KOp::MulF32 {
                dst: 8,
                a: 12,
                b: 4,
                w: 4,
            },
            KOp::AddF32 {
                dst: 12,
                a: 8,
                b: 16,
                w: 4,
            },
        ];
        let out = form_chains(kops);
        assert_eq!(out.len(), 1);
        let KOp::Chain {
            dom,
            a,
            w,
            ref stages,
        } = out[0]
        else {
            panic!("expected a chain, got {:?}", out[0]);
        };
        assert_eq!((dom, a, w), (ChainDom::F32, 0, 4));
        assert_eq!(stages.len(), 4);
        // Stage 0 (dst 8) and stage 1 (dst 12) are rewritten later:
        // stores elided. Stages 2 and 3 are the last writes: stored.
        assert_eq!(
            stages.iter().map(|s| s.store).collect::<Vec<_>>(),
            vec![None, None, Some(8), Some(12)]
        );
        assert_eq!(
            stages.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![
                ChainKind::Mul,
                ChainKind::Add,
                ChainKind::Mul,
                ChainKind::Add
            ]
        );
    }

    #[test]
    fn chains_respect_aliasing_and_domains() {
        // Second op reads range 2..6, overlapping the first op's write
        // 4..8 at an offset — not the accumulator, so no chain.
        let misaligned = vec![
            KOp::AddI64 {
                dst: 4,
                a: 0,
                b: 8,
                w: 4,
            },
            KOp::AddI64 {
                dst: 12,
                a: 2,
                b: 8,
                w: 4,
            },
        ];
        assert_eq!(form_chains(misaligned).len(), 2);
        // An op consuming the previous result twice (acc op acc) cannot
        // chain: the stage form has exactly one `other` operand.
        let squared = vec![
            KOp::MulF64 {
                dst: 4,
                a: 0,
                b: 8,
                w: 4,
            },
            KOp::MulF64 {
                dst: 12,
                a: 4,
                b: 4,
                w: 4,
            },
        ];
        assert_eq!(form_chains(squared).len(), 2);
        // Bitwise ops joining an i32-arith chain would store a
        // sign-extension where the original stored full 64-bit lanes:
        // the domains must not merge.
        let mixed = vec![
            KOp::AddI32 {
                dst: 4,
                a: 0,
                b: 8,
                w: 4,
            },
            KOp::XorI {
                dst: 12,
                a: 4,
                b: 8,
                w: 4,
            },
        ];
        assert_eq!(form_chains(mixed).len(), 2);
        // ...but bitwise joins an I64 chain fine, and a pure-bitwise
        // chain resolves to the I64 domain.
        let i64_mix = vec![
            KOp::AddI64 {
                dst: 4,
                a: 0,
                b: 8,
                w: 4,
            },
            KOp::XorI {
                dst: 12,
                a: 4,
                b: 8,
                w: 4,
            },
        ];
        let out = form_chains(i64_mix);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            KOp::Chain {
                dom: ChainDom::I64,
                ..
            }
        ));
        // Reversed operand position encodes as RSub: acc enters as the
        // right operand of the subtraction.
        let rsub = vec![
            KOp::AddF64 {
                dst: 4,
                a: 0,
                b: 8,
                w: 4,
            },
            KOp::SubF64 {
                dst: 12,
                a: 8,
                b: 4,
                w: 4,
            },
        ];
        let out = form_chains(rsub);
        assert_eq!(out.len(), 1);
        let KOp::Chain { ref stages, .. } = out[0] else {
            panic!("expected chain");
        };
        assert_eq!(stages[1].kind, ChainKind::RSub);
        assert_eq!(stages[1].other, 8);
    }

    #[test]
    fn ping_pong_ladders_chain_through_the_acc_range() {
        // The natural FMA accumulator idiom rewrites the very range the
        // chain's accumulator was loaded from (t = x*c; x = t+d; ...).
        // Identical ranges are lane-aligned, so this is legal: each lane
        // is loaded before the chunk that stores it.
        let pair = |_: u32| {
            [
                KOp::MulF32 {
                    dst: 25,
                    a: 34,
                    b: 21,
                    w: 4,
                },
                KOp::AddF32 {
                    dst: 34,
                    a: 25,
                    b: 30,
                    w: 4,
                },
            ]
        };
        let kops: Vec<KOp> = (0..3).flat_map(pair).collect();
        let out = form_chains(kops);
        assert_eq!(out.len(), 1, "ladder must form one chain: {out:?}");
        let KOp::Chain {
            dom, a, ref stages, ..
        } = out[0]
        else {
            panic!("expected chain");
        };
        assert_eq!((dom, a), (ChainDom::F32, 34));
        assert_eq!(stages.len(), 6);
        // Only each range's last write survives elision.
        assert_eq!(
            stages.iter().map(|s| s.store).collect::<Vec<_>>(),
            vec![None, None, None, None, Some(25), Some(34)]
        );
        // And end-to-end, the fused ladder stays bit-identical to
        // dispatch across chunked widths and scalar remainders.
        for w in [3u32, 4, 9] {
            let mk = |dst: u32, a: u32, op: BinOp, b: u32| Op::VBinF {
                op,
                ty: ScalarTy::F32,
                dst,
                a,
                b,
                w,
            };
            for seed in [1u64, 13, 777] {
                let mut code = vec![
                    mk(30, 40, BinOp::Mul, 10),
                    mk(40, 30, BinOp::Add, 20),
                    mk(30, 40, BinOp::Mul, 10),
                    mk(40, 30, BinOp::Add, 20),
                    mk(30, 40, BinOp::Mul, 10),
                    mk(40, 30, BinOp::Add, 20),
                ];
                let (r1, r2) = run_both(&mut code, 8, 64, seed);
                assert_eq!(
                    r1.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    r2.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "w {w} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn stores_read_later_in_the_chain_survive_elision() {
        // Stage 0 writes range 8; stage 3 rewrites it — but stage 2
        // reads 8 as its `other` operand in between, so stage 0's store
        // must survive (eliding it would feed stage 2 stale memory).
        let kops = vec![
            KOp::AddF64 {
                dst: 8,
                a: 0,
                b: 4,
                w: 4,
            },
            KOp::MulF64 {
                dst: 12,
                a: 8,
                b: 16,
                w: 4,
            },
            KOp::AddF64 {
                dst: 20,
                a: 12,
                b: 8,
                w: 4,
            },
            KOp::MulF64 {
                dst: 8,
                a: 20,
                b: 16,
                w: 4,
            },
        ];
        let out = form_chains(kops);
        assert_eq!(out.len(), 1);
        let KOp::Chain { ref stages, .. } = out[0] else {
            panic!("expected chain");
        };
        assert_eq!(
            stages.iter().map(|s| s.store).collect::<Vec<_>>(),
            vec![Some(8), Some(12), Some(20), Some(8)]
        );
        // End-to-end with spread-out ranges so every width stays
        // identical-or-disjoint.
        for w in [2u32, 4, 9] {
            let mk = |dst: u32, a: u32, op: BinOp, b: u32| Op::VBinF {
                op,
                ty: ScalarTy::F64,
                dst,
                a,
                b,
                w,
            };
            for seed in [5u64, 99, 2024] {
                let mut code = vec![
                    mk(10, 0, BinOp::Add, 20),
                    mk(30, 10, BinOp::Mul, 40),
                    mk(50, 30, BinOp::Add, 10),
                    mk(10, 50, BinOp::Mul, 40),
                ];
                let (r1, r2) = run_both(&mut code, 8, 64, seed);
                assert_eq!(
                    r1.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    r2.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "w {w} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn chained_execution_matches_dispatch() {
        // End-to-end: an FMA ladder long enough to clear MIN_RUN, fused
        // with the always-true gate (forming chains), must stay
        // bit-identical to plain dispatch on the selected tier. Widths 3
        // and 9 exercise the intrinsic tiers' scalar remainders.
        for w in [1u32, 3, 4, 8, 9] {
            let mk = |dst: u32, a: u32, op: BinOp, b: u32| Op::VBinF {
                op,
                ty: ScalarTy::F32,
                dst,
                a,
                b,
                w,
            };
            for seed in [1u64, 7, 13, 9999] {
                let mut code = vec![
                    mk(20, 0, BinOp::Mul, 10),
                    mk(30, 20, BinOp::Add, 40),
                    mk(20, 30, BinOp::Mul, 10),
                    mk(30, 20, BinOp::Add, 40),
                    mk(20, 30, BinOp::Div, 10),
                    mk(50, 10, BinOp::Sub, 20),
                ];
                let (r1, r2) = run_both(&mut code, 8, 64, seed);
                assert_eq!(
                    r1.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    r2.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "w {w} seed {seed}"
                );
            }
        }
        // Integer ladder, i32 domain (wrapping, sign-extended).
        for w in [2u32, 4, 7] {
            let mk = |dst: u32, a: u32, op: BinOp, b: u32| Op::VBinI {
                op,
                ty: ScalarTy::I32,
                dst,
                a,
                b,
                w,
            };
            for seed in [3u64, 11, 4242] {
                let mut code = vec![
                    mk(16, 0, BinOp::Mul, 8),
                    mk(24, 16, BinOp::Add, 8),
                    mk(16, 24, BinOp::Mul, 0),
                    mk(32, 8, BinOp::Sub, 16),
                ];
                let (r1, r2) = run_both(&mut code, 48, 4, seed);
                assert_eq!(r1.i, r2.i, "w {w} seed {seed}");
            }
        }
    }
}
