//! Superblock kernel fusion: a post-pass over compiled firing bytecode
//! that collapses straight-line runs of pure register ops into single
//! [`Kernel`]s executed over contiguous register slices.
//!
//! The dispatch loop in [`crate::bytecode::run_code`] pays a per-opcode
//! match plus, for vector ops, a per-lane call into a scalar helper that
//! re-matches the operator and type on every lane. Fusion removes both
//! costs: at compile time each fusible [`Op`] is lowered to a [`KOp`]
//! with the operator/type pre-resolved, and each maximal run becomes one
//! `Op::Kernel` the interpreter executes in a single dispatch.
//!
//! Two backends execute the same `KOp` stream:
//!
//! - **Portable** (`exec_kop_portable`): safe Rust slice loops written so
//!   LLVM autovectorizes the hot arithmetic variants. Always available
//!   and the only backend off x86-64.
//! - **AVX2** ([`x86`]): runtime-feature-detected
//!   (`is_x86_feature_detected!("avx2")`) intrinsic paths for the
//!   type-stable arithmetic variants; every other variant falls through
//!   to the portable code. All `unsafe` is confined to the [`x86`]
//!   module.
//!
//! # Fusion legality
//!
//! Only *pure register ops* fuse: constants, moves, arithmetic,
//! comparisons, casts, intrinsic calls, splats and permutations. Tape,
//! channel and array ops, control flow, and [`Op::Charge`] never fuse —
//! leaving `Charge` unfused keeps `CycleCounters` bit-identical for
//! free. A run never extends across a jump target (basic-block leader),
//! so every jump still lands on a real instruction. The fused ops stay
//! in place behind the `Op::Kernel` marker; the interpreter skips them
//! via the kernel's `span`, which preserves all jump targets without
//! rewriting a single index.
//!
//! Backend-specialized variants (e.g. [`KOp::AddF32`]) additionally
//! require the destination range to be disjoint from both source ranges
//! and fully in-bounds — verified at fusion time; a violating op degrades
//! to its generic lane-loop variant, which replicates `run_code`'s exact
//! per-lane write order (aliasing included).
//!
//! # Bit-exactness
//!
//! Generic variants call the same scalar helpers as `run_code`. The
//! specialized portable loops inline those helpers' type-stable bodies
//! verbatim (`f32` domain: narrow, op, widen; `i32` domain: truncate,
//! wrapping op, sign-extend). The AVX2 paths use conversion instructions
//! (`vcvtpd2ps` / `vcvtps2pd` / `vpmovsxdq`) that are exactly the
//! per-lane Rust `as` casts, so all three execution paths produce
//! bit-identical register files. The engine differential suite enforces
//! this across every benchmark.

use crate::bytecode::{
    bin_f, bin_i, call1_f, call1_i, call2_f, call2_i, cast_ff, cast_fi, cast_if, cast_ii, cmp_f,
    neg_i, not_i, Op, Regs,
};
use macross_streamir::expr::{BinOp, Intrinsic};
use macross_streamir::types::ScalarTy;

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

/// Minimum fusible run length: a 1-op "kernel" would only add overhead.
const MIN_RUN: usize = 2;

/// Which code path executes fused kernels. Chosen once per
/// [`crate::compile::compile_filter_opts`] call and stored on the
/// compiled plan, so one process can compare backends by recompiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// `core::arch::x86_64` AVX2 intrinsics (x86-64 with AVX2 only).
    Avx2,
    /// Safe fixed-width-chunk Rust, written for LLVM autovectorization.
    Portable,
}

impl KernelBackend {
    /// Stable label for reports (`avx2` / `portable`).
    pub fn label(self) -> &'static str {
        match self {
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Portable => "portable",
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::is_x86_feature_detected!("avx2"))
}

/// Whether `val` — the raw `MACROSS_FORCE_PORTABLE_KERNELS` value, or
/// `None` when unset — forces the portable backend: anything but
/// unset/empty/`0` does.
fn forces_portable(val: Option<&str>) -> bool {
    val.map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// True when `MACROSS_FORCE_PORTABLE_KERNELS` is set to anything but
/// `0`/empty. Read per compile (not in the firing hot path), so a test
/// can flip backends between compilations inside one process.
pub fn portable_forced() -> bool {
    forces_portable(
        std::env::var("MACROSS_FORCE_PORTABLE_KERNELS")
            .ok()
            .as_deref(),
    )
}

/// Backend for a given override state: AVX2 when the CPU has it and the
/// portable override is off, portable otherwise (and always on non-x86).
fn backend_for(portable_forced: bool) -> KernelBackend {
    if portable_forced {
        return KernelBackend::Portable;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        return KernelBackend::Avx2;
    }
    KernelBackend::Portable
}

/// Select the kernel backend: AVX2 when the CPU has it and the portable
/// override (`MACROSS_FORCE_PORTABLE_KERNELS=1`) is not set.
pub fn select_backend() -> KernelBackend {
    backend_for(portable_forced())
}

/// One fused superblock: the pre-resolved ops and how many original
/// bytecode slots they cover (the interpreter advances `pc` by `span`).
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Original ops covered (for the `pc` skip). At least `kops.len()` —
    /// redundancy pruning can make the fused form shorter than the run.
    pub span: u32,
    /// Pre-resolved ops, in original program order.
    pub kops: Box<[KOp]>,
}

/// A fused op. Scalar ops are width-1 vector ops here; specialized
/// arithmetic variants carry a proven-disjoint destination range, generic
/// variants replicate [`crate::bytecode::run_code`]'s lane loops with the
/// operator/type match hoisted out of the per-lane path.
#[derive(Debug, Clone, PartialEq)]
pub enum KOp {
    /// `i[dst..dst+len] = vals` (also width-1 `ConstI`).
    ConstVecI {
        dst: u32,
        vals: Box<[i64]>,
    },
    /// `f[dst..dst+len] = vals`.
    ConstVecF {
        dst: u32,
        vals: Box<[f64]>,
    },
    /// `copy_within` — alias-safe, like `Op::MovNI`.
    MovNI {
        dst: u32,
        src: u32,
        w: u32,
    },
    MovNF {
        dst: u32,
        src: u32,
        w: u32,
    },
    /// Broadcast (reads the scalar before filling, so overlap is safe).
    SplatI {
        dst: u32,
        a: u32,
        w: u32,
    },
    SplatF {
        dst: u32,
        a: u32,
        w: u32,
    },
    /// `extract_even`/`extract_odd`; `dst` is fresh by construction.
    PermI {
        parity: u32,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    PermF {
        parity: u32,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    /// `i[dst] = f[a] as i64`.
    FToI {
        dst: u32,
        a: u32,
    },

    // --- Backend-specialized arithmetic (dst disjoint from srcs, all
    // ranges in-bounds — verified at fusion time) ----------------------
    AddF32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    SubF32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    MulF32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    DivF32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    AddF64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    SubF64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    MulF64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    DivF64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    AddI32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    SubI32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    MulI32 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    AddI64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    SubI64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    MulI64 {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    /// Domain-independent on the sign-extended representation: the upper
    /// 32 bits of a lane-wise `&`/`|`/`^` of two sign-extended values are
    /// exactly the sign-extension of the result's bit 31.
    AndI {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    OrI {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    XorI {
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },

    // --- Generic exact fallbacks (identical to run_code lane loops) ----
    BinI {
        op: BinOp,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    BinF {
        op: BinOp,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    CmpF {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    NegI {
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    NegF {
        dst: u32,
        a: u32,
        w: u32,
    },
    NotI {
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    LogNotI {
        dst: u32,
        a: u32,
        w: u32,
    },
    LogNotF {
        dst: u32,
        a: u32,
        w: u32,
    },
    CastII {
        from: ScalarTy,
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    CastIF {
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    CastFI {
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    CastFF {
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    /// Unary integer intrinsic (always `Abs`).
    Call1I {
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    Call2I {
        i: Intrinsic,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    Call1F {
        i: Intrinsic,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    Call2F {
        i: Intrinsic,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
}

// ---------------------------------------------------------------------
// Fusion pass
// ---------------------------------------------------------------------

/// `[lo, lo+w)` and `[r, r+w)` do not overlap.
fn disjoint(lo: u32, r: u32, w: u32) -> bool {
    r + w <= lo || r >= lo + w
}

/// Specialized-variant legality: destination disjoint from both sources
/// and every range inside the register file.
fn specializable(dst: u32, a: u32, b: u32, w: u32, file_len: u32) -> bool {
    let fits = |r: u32| r.checked_add(w).is_some_and(|end| end <= file_len);
    fits(dst) && fits(a) && fits(b) && disjoint(dst, a, w) && disjoint(dst, b, w)
}

/// Map an integer binary op to its specialized variant, if one exists
/// and the operand layout permits; generic [`KOp::BinI`] otherwise.
#[allow(clippy::too_many_arguments)]
fn kop_bin_i(op: BinOp, ty: ScalarTy, dst: u32, a: u32, b: u32, w: u32, int_regs: u32) -> KOp {
    if !op.is_comparison() && specializable(dst, a, b, w, int_regs) {
        match (op, ty) {
            (BinOp::Add, ScalarTy::I32) => return KOp::AddI32 { dst, a, b, w },
            (BinOp::Sub, ScalarTy::I32) => return KOp::SubI32 { dst, a, b, w },
            (BinOp::Mul, ScalarTy::I32) => return KOp::MulI32 { dst, a, b, w },
            (BinOp::Add, ScalarTy::I64) => return KOp::AddI64 { dst, a, b, w },
            (BinOp::Sub, ScalarTy::I64) => return KOp::SubI64 { dst, a, b, w },
            (BinOp::Mul, ScalarTy::I64) => return KOp::MulI64 { dst, a, b, w },
            (BinOp::And, _) => return KOp::AndI { dst, a, b, w },
            (BinOp::Or, _) => return KOp::OrI { dst, a, b, w },
            (BinOp::Xor, _) => return KOp::XorI { dst, a, b, w },
            _ => {}
        }
    }
    KOp::BinI {
        op,
        ty,
        dst,
        a,
        b,
        w,
    }
}

/// Map a float binary op, preferring the specialized variant.
#[allow(clippy::too_many_arguments)]
fn kop_bin_f(op: BinOp, ty: ScalarTy, dst: u32, a: u32, b: u32, w: u32, float_regs: u32) -> KOp {
    if specializable(dst, a, b, w, float_regs) {
        match (op, ty) {
            (BinOp::Add, ScalarTy::F32) => return KOp::AddF32 { dst, a, b, w },
            (BinOp::Sub, ScalarTy::F32) => return KOp::SubF32 { dst, a, b, w },
            (BinOp::Mul, ScalarTy::F32) => return KOp::MulF32 { dst, a, b, w },
            (BinOp::Div, ScalarTy::F32) => return KOp::DivF32 { dst, a, b, w },
            (BinOp::Add, ScalarTy::F64) => return KOp::AddF64 { dst, a, b, w },
            (BinOp::Sub, ScalarTy::F64) => return KOp::SubF64 { dst, a, b, w },
            (BinOp::Mul, ScalarTy::F64) => return KOp::MulF64 { dst, a, b, w },
            (BinOp::Div, ScalarTy::F64) => return KOp::DivF64 { dst, a, b, w },
            _ => {}
        }
    }
    KOp::BinF {
        op,
        ty,
        dst,
        a,
        b,
        w,
    }
}

/// Lower one bytecode op to a fused op, or `None` for non-fusible ops
/// (tape/channel/array accesses, control flow, `Charge`).
fn lower(op: &Op, int_regs: u32, float_regs: u32) -> Option<KOp> {
    Some(match *op {
        Op::ConstI { dst, v } => KOp::ConstVecI {
            dst,
            vals: Box::new([v]),
        },
        Op::ConstF { dst, v } => KOp::ConstVecF {
            dst,
            vals: Box::new([v]),
        },
        Op::ConstVecI { dst, ref vals } => KOp::ConstVecI {
            dst,
            vals: vals.clone(),
        },
        Op::ConstVecF { dst, ref vals } => KOp::ConstVecF {
            dst,
            vals: vals.clone(),
        },
        Op::MovI { dst, src } => KOp::MovNI { dst, src, w: 1 },
        Op::MovF { dst, src } => KOp::MovNF { dst, src, w: 1 },
        Op::MovNI { dst, src, w } => KOp::MovNI { dst, src, w },
        Op::MovNF { dst, src, w } => KOp::MovNF { dst, src, w },
        Op::FToI { dst, a } => KOp::FToI { dst, a },
        Op::BinI { op, ty, dst, a, b } => kop_bin_i(op, ty, dst, a, b, 1, int_regs),
        Op::VBinI {
            op,
            ty,
            dst,
            a,
            b,
            w,
        } => kop_bin_i(op, ty, dst, a, b, w, int_regs),
        Op::BinF { op, ty, dst, a, b } => kop_bin_f(op, ty, dst, a, b, 1, float_regs),
        Op::VBinF {
            op,
            ty,
            dst,
            a,
            b,
            w,
        } => kop_bin_f(op, ty, dst, a, b, w, float_regs),
        Op::CmpF { op, dst, a, b } => KOp::CmpF {
            op,
            dst,
            a,
            b,
            w: 1,
        },
        Op::VCmpF { op, dst, a, b, w } => KOp::CmpF { op, dst, a, b, w },
        Op::NegI { ty, dst, a } => KOp::NegI { ty, dst, a, w: 1 },
        Op::VNegI { ty, dst, a, w } => KOp::NegI { ty, dst, a, w },
        Op::NegF { dst, a } => KOp::NegF { dst, a, w: 1 },
        Op::VNegF { dst, a, w } => KOp::NegF { dst, a, w },
        Op::NotI { ty, dst, a } => KOp::NotI { ty, dst, a, w: 1 },
        Op::VNotI { ty, dst, a, w } => KOp::NotI { ty, dst, a, w },
        Op::LogNotI { dst, a } => KOp::LogNotI { dst, a, w: 1 },
        Op::VLogNotI { dst, a, w } => KOp::LogNotI { dst, a, w },
        Op::LogNotF { dst, a } => KOp::LogNotF { dst, a, w: 1 },
        Op::VLogNotF { dst, a, w } => KOp::LogNotF { dst, a, w },
        Op::CastII { from, to, dst, a } => KOp::CastII {
            from,
            to,
            dst,
            a,
            w: 1,
        },
        Op::VCastII {
            from,
            to,
            dst,
            a,
            w,
        } => KOp::CastII {
            from,
            to,
            dst,
            a,
            w,
        },
        Op::CastIF { to, dst, a } => KOp::CastIF { to, dst, a, w: 1 },
        Op::VCastIF { to, dst, a, w } => KOp::CastIF { to, dst, a, w },
        Op::CastFI { to, dst, a } => KOp::CastFI { to, dst, a, w: 1 },
        Op::VCastFI { to, dst, a, w } => KOp::CastFI { to, dst, a, w },
        Op::CastFF { to, dst, a } => KOp::CastFF { to, dst, a, w: 1 },
        Op::VCastFF { to, dst, a, w } => KOp::CastFF { to, dst, a, w },
        Op::Call1I { ty, dst, a, .. } => KOp::Call1I { ty, dst, a, w: 1 },
        Op::VCall1I { ty, dst, a, w, .. } => KOp::Call1I { ty, dst, a, w },
        Op::Call2I { i, dst, a, b } => KOp::Call2I { i, dst, a, b, w: 1 },
        Op::VCall2I { i, dst, a, b, w } => KOp::Call2I { i, dst, a, b, w },
        Op::Call1F { i, ty, dst, a } => KOp::Call1F {
            i,
            ty,
            dst,
            a,
            w: 1,
        },
        Op::VCall1F { i, ty, dst, a, w } => KOp::Call1F { i, ty, dst, a, w },
        Op::Call2F { i, ty, dst, a, b } => KOp::Call2F {
            i,
            ty,
            dst,
            a,
            b,
            w: 1,
        },
        Op::VCall2F {
            i,
            ty,
            dst,
            a,
            b,
            w,
        } => KOp::Call2F {
            i,
            ty,
            dst,
            a,
            b,
            w,
        },
        Op::SplatI { dst, a, w } => KOp::SplatI { dst, a, w },
        Op::SplatF { dst, a, w } => KOp::SplatF { dst, a, w },
        Op::PermI {
            parity,
            dst,
            a,
            b,
            w,
        } => KOp::PermI {
            parity,
            dst,
            a,
            b,
            w,
        },
        Op::PermF {
            parity,
            dst,
            a,
            b,
            w,
        } => KOp::PermF {
            parity,
            dst,
            a,
            b,
            w,
        },
        // The loop variable is declared i32: identical to a width-1
        // I64 -> I32 cast on the sign-extended representation.
        Op::SetLoopVar { var, counter } => KOp::CastII {
            from: ScalarTy::I64,
            to: ScalarTy::I32,
            dst: var,
            a: counter,
            w: 1,
        },
        _ => return None,
    })
}

/// Register space a fused-op range lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Space {
    I,
    F,
}

/// A `(space, start, len)` register range.
type RegRange = (Space, u32, u32);

fn overlaps(a: RegRange, b: RegRange) -> bool {
    a.0 == b.0 && a.1 < b.1 + b.2 && b.1 < a.1 + a.2
}

/// The single range a fused op writes and the (up to two) ranges it
/// reads — the alias footprint the redundancy pruner works over.
fn footprint(op: &KOp) -> (RegRange, [Option<RegRange>; 2]) {
    use Space::{F, I};
    let r1 = |r| [Some(r), None];
    let r2 = |a, b| [Some(a), Some(b)];
    match *op {
        KOp::ConstVecI { dst, ref vals } => ((I, dst, vals.len() as u32), [None, None]),
        KOp::ConstVecF { dst, ref vals } => ((F, dst, vals.len() as u32), [None, None]),
        KOp::MovNI { dst, src, w } => ((I, dst, w), r1((I, src, w))),
        KOp::MovNF { dst, src, w } => ((F, dst, w), r1((F, src, w))),
        KOp::SplatI { dst, a, w } => ((I, dst, w), r1((I, a, 1))),
        KOp::SplatF { dst, a, w } => ((F, dst, w), r1((F, a, 1))),
        KOp::PermI { dst, a, b, w, .. } => ((I, dst, w), r2((I, a, w), (I, b, w))),
        KOp::PermF { dst, a, b, w, .. } => ((F, dst, w), r2((F, a, w), (F, b, w))),
        KOp::FToI { dst, a } => ((I, dst, 1), r1((F, a, 1))),
        KOp::AddF32 { dst, a, b, w }
        | KOp::SubF32 { dst, a, b, w }
        | KOp::MulF32 { dst, a, b, w }
        | KOp::DivF32 { dst, a, b, w }
        | KOp::AddF64 { dst, a, b, w }
        | KOp::SubF64 { dst, a, b, w }
        | KOp::MulF64 { dst, a, b, w }
        | KOp::DivF64 { dst, a, b, w }
        | KOp::BinF { dst, a, b, w, .. }
        | KOp::Call2F { dst, a, b, w, .. } => ((F, dst, w), r2((F, a, w), (F, b, w))),
        KOp::AddI32 { dst, a, b, w }
        | KOp::SubI32 { dst, a, b, w }
        | KOp::MulI32 { dst, a, b, w }
        | KOp::AddI64 { dst, a, b, w }
        | KOp::SubI64 { dst, a, b, w }
        | KOp::MulI64 { dst, a, b, w }
        | KOp::AndI { dst, a, b, w }
        | KOp::OrI { dst, a, b, w }
        | KOp::XorI { dst, a, b, w }
        | KOp::BinI { dst, a, b, w, .. }
        | KOp::Call2I { dst, a, b, w, .. } => ((I, dst, w), r2((I, a, w), (I, b, w))),
        KOp::CmpF { dst, a, b, w, .. } => ((I, dst, w), r2((F, a, w), (F, b, w))),
        KOp::NegI { dst, a, w, .. }
        | KOp::NotI { dst, a, w, .. }
        | KOp::LogNotI { dst, a, w }
        | KOp::CastII { dst, a, w, .. }
        | KOp::Call1I { dst, a, w, .. } => ((I, dst, w), r1((I, a, w))),
        KOp::NegF { dst, a, w } | KOp::CastFF { dst, a, w, .. } | KOp::Call1F { dst, a, w, .. } => {
            ((F, dst, w), r1((F, a, w)))
        }
        KOp::LogNotF { dst, a, w } | KOp::CastFI { dst, a, w, .. } => ((I, dst, w), r1((F, a, w))),
        KOp::CastIF { dst, a, w, .. } => ((F, dst, w), r1((I, a, w))),
    }
}

/// Every range the op touches lies inside the register files. Fusion
/// refuses ops that fail this, so backends may use unchecked accesses
/// for *any* fused op, not just the specialized arithmetic variants.
fn in_bounds(op: &KOp, int_regs: u32, float_regs: u32) -> bool {
    let fits = |r: RegRange| {
        let file = match r.0 {
            Space::I => int_regs,
            Space::F => float_regs,
        };
        (r.1 as u64) + (r.2 as u64) <= file as u64
    };
    let (w, reads) = footprint(op);
    fits(w) && reads.iter().flatten().all(|&r| fits(r))
}

/// Drop idempotent re-executions: a fused op identical to an earlier one
/// in the same run, with nothing in between touching any register the
/// earlier op read or wrote, rewrites the exact same bits and can go.
/// Unrolled loop bodies re-materialize the same constants every
/// iteration; this collapses them to one materialization per kernel while
/// leaving final register state bit-identical.
///
/// An op whose write range overlaps one of its own read ranges (legal for
/// the generic fallback variants, e.g. `BinI` with `dst == a` from
/// `x = x + c`, or an overlapping `MovN`) is never idempotent: each
/// re-execution reads state its previous execution wrote. Such ops are
/// never offered as dedup candidates — and since equality implies an
/// identical footprint, a self-aliasing op can never match a registered
/// candidate either.
fn prune_idempotent(kops: Vec<KOp>) -> Vec<KOp> {
    let mut out: Vec<KOp> = Vec::with_capacity(kops.len());
    let mut avail: Vec<usize> = Vec::new();
    for k in kops {
        if avail.iter().any(|&e| out[e] == k) {
            continue;
        }
        let (w, r) = footprint(&k);
        avail.retain(|&e| {
            let (ew, er) = footprint(&out[e]);
            !overlaps(ew, w) && !er.iter().flatten().any(|&r| overlaps(r, w))
        });
        out.push(k);
        if !r.iter().flatten().any(|&rr| overlaps(rr, w)) {
            avail.push(out.len() - 1);
        }
    }
    out
}

/// Mutable access to the operands of the backend-specialized arithmetic
/// variants — the only ops copy propagation rewrites. Returns the shared
/// register space, both read operands, the destination, and the width.
fn arith_operands_mut(op: &mut KOp) -> Option<(Space, &mut u32, &mut u32, u32, u32)> {
    use Space::{F, I};
    match op {
        KOp::AddF32 { dst, a, b, w }
        | KOp::SubF32 { dst, a, b, w }
        | KOp::MulF32 { dst, a, b, w }
        | KOp::DivF32 { dst, a, b, w }
        | KOp::AddF64 { dst, a, b, w }
        | KOp::SubF64 { dst, a, b, w }
        | KOp::MulF64 { dst, a, b, w }
        | KOp::DivF64 { dst, a, b, w } => Some((F, a, b, *dst, *w)),
        KOp::AddI32 { dst, a, b, w }
        | KOp::SubI32 { dst, a, b, w }
        | KOp::MulI32 { dst, a, b, w }
        | KOp::AddI64 { dst, a, b, w }
        | KOp::SubI64 { dst, a, b, w }
        | KOp::MulI64 { dst, a, b, w }
        | KOp::AndI { dst, a, b, w }
        | KOp::OrI { dst, a, b, w }
        | KOp::XorI { dst, a, b, w } => Some((I, a, b, *dst, *w)),
        _ => None,
    }
}

/// Forward copy propagation. After `MovN dst <- src` with disjoint
/// ranges, `src` and `dst` hold the same bits until either is rewritten,
/// so an arithmetic read lying fully inside `dst` can read the
/// corresponding `src` registers instead (kept only if it preserves the
/// specialized variants' dst-disjoint-from-sources invariant). This
/// unchains the per-iteration writeback of unrolled accumulator loops
/// from the arithmetic that follows it, so [`drop_dead_copies`] can then
/// remove the copy itself.
fn propagate_copies(kops: &mut [KOp]) {
    // Live copies as (dst range, src start); ranges disjoint, same space.
    // Overlapping dst ranges cannot coexist: recording a copy first
    // invalidates every earlier copy its write touches.
    let mut copies: Vec<(RegRange, u32)> = Vec::new();
    for op in kops.iter_mut() {
        if let Some((sp, a, b, dst, w)) = arith_operands_mut(op) {
            for r in [a, b] {
                if let Some(&((_, cd, _), cs)) = copies
                    .iter()
                    .find(|&&((csp, cd, cw), _)| csp == sp && *r >= cd && *r + w <= cd + cw)
                {
                    let moved = cs + (*r - cd);
                    if disjoint(dst, moved, w) {
                        *r = moved;
                    }
                }
            }
        }
        let (wr, _) = footprint(op);
        copies.retain(|&(cdst, csrc)| !overlaps(cdst, wr) && !overlaps((cdst.0, csrc, cdst.2), wr));
        match *op {
            KOp::MovNF { dst, src, w } if disjoint(dst, src, w) => {
                copies.push(((Space::F, dst, w), src));
            }
            KOp::MovNI { dst, src, w } if disjoint(dst, src, w) => {
                copies.push(((Space::I, dst, w), src));
            }
            _ => {}
        }
    }
}

/// Drop a `MovN` whose destination is fully overwritten later in the
/// kernel before any read touches it: execution is straight-line, the
/// later write rewrites every lane, so final register state is
/// bit-identical without it. Sound even when the covering write is
/// itself dropped — its own cover then transitively covers this one with
/// no intervening reads. Together with [`propagate_copies`] this keeps
/// only the last writeback of an unrolled accumulator loop.
fn drop_dead_copies(kops: Vec<KOp>) -> Vec<KOp> {
    let dead = |i: usize| {
        let (w, _) = footprint(&kops[i]);
        for later in &kops[i + 1..] {
            let (jw, jr) = footprint(later);
            if jr.iter().flatten().any(|&r| overlaps(r, w)) {
                return false;
            }
            if jw.0 == w.0 && jw.1 <= w.1 && jw.1 + jw.2 >= w.1 + w.2 {
                return true;
            }
            if overlaps(jw, w) {
                // Partial overwrite: keep, conservatively.
                return false;
            }
        }
        false
    };
    let mut out = Vec::with_capacity(kops.len());
    for (i, k) in kops.iter().enumerate() {
        let copy = matches!(k, KOp::MovNF { .. } | KOp::MovNI { .. });
        if !(copy && dead(i)) {
            out.push(k.clone());
        }
    }
    out
}

/// Number of lanes an op executes on the backend's specialized slice
/// paths (0 for generic fallbacks and bookkeeping ops).
fn vector_lanes(op: &KOp) -> u32 {
    match *op {
        KOp::AddF32 { w, .. }
        | KOp::SubF32 { w, .. }
        | KOp::MulF32 { w, .. }
        | KOp::DivF32 { w, .. }
        | KOp::AddF64 { w, .. }
        | KOp::SubF64 { w, .. }
        | KOp::MulF64 { w, .. }
        | KOp::DivF64 { w, .. }
        | KOp::AddI32 { w, .. }
        | KOp::SubI32 { w, .. }
        | KOp::MulI32 { w, .. }
        | KOp::AddI64 { w, .. }
        | KOp::SubI64 { w, .. }
        | KOp::MulI64 { w, .. }
        | KOp::AndI { w, .. }
        | KOp::OrI { w, .. }
        | KOp::XorI { w, .. } => w,
        _ => 0,
    }
}

/// Entering a kernel has a fixed cost (kernel lookup, backend dispatch,
/// one non-inlined call), so short or purely scalar runs lose to the
/// plain dispatch loop. Keep a run only when it has enough genuine
/// vector work or is long enough for the saved dispatch to amortize it.
fn profitable(kops: &[KOp]) -> bool {
    let vec_ops = kops.iter().filter(|k| vector_lanes(k) >= 2).count();
    vec_ops * 4 + kops.len() >= 32
}

/// Basic-block leaders: every position a jump can land on. A fused run
/// must not extend across one (jumping into the middle of a kernel would
/// skip the run prefix), but may *start* at one — the jump then lands on
/// the `Op::Kernel` itself.
fn leaders(code: &[Op]) -> Vec<bool> {
    let mut leader = vec![false; code.len() + 1];
    for op in code {
        let t = match op {
            Op::Jump { target } => *target,
            Op::JumpIfZI { target, .. } => *target,
            Op::JumpIfZF { target, .. } => *target,
            Op::LoopHead { exit, .. } => *exit,
            Op::LoopBack { head, .. } => *head,
            _ => continue,
        };
        if (t as usize) < leader.len() {
            leader[t as usize] = true;
        }
    }
    leader
}

/// Fuse straight-line runs of pure register ops in `code`, appending the
/// kernels to `kernels` (shared between `init` and `work`, indexed by
/// [`Op::Kernel`]). Returns the number of kernels created.
pub fn fuse(code: &mut [Op], kernels: &mut Vec<Kernel>, int_regs: u32, float_regs: u32) -> usize {
    fuse_runs(code, kernels, int_regs, float_regs, profitable)
}

/// [`fuse`] with an explicit profitability gate (tests use `|_| true` to
/// exercise run formation independently of the cost model).
fn fuse_runs(
    code: &mut [Op],
    kernels: &mut Vec<Kernel>,
    int_regs: u32,
    float_regs: u32,
    gate: fn(&[KOp]) -> bool,
) -> usize {
    let leader = leaders(code);
    let before = kernels.len();
    let mut pc = 0usize;
    while pc < code.len() {
        let mut kops: Vec<KOp> = Vec::new();
        while pc + kops.len() < code.len() {
            let at = pc + kops.len();
            // Never extend across a jump target (except at run start).
            if !kops.is_empty() && leader[at] {
                break;
            }
            match lower(&code[at], int_regs, float_regs) {
                Some(k) if in_bounds(&k, int_regs, float_regs) => kops.push(k),
                _ => break,
            }
        }
        let span = kops.len();
        if span >= MIN_RUN {
            let mut kops = prune_idempotent(kops);
            propagate_copies(&mut kops);
            let kops = drop_dead_copies(kops);
            if gate(&kops) {
                let idx = kernels.len() as u32;
                kernels.push(Kernel {
                    span: span as u32,
                    kops: kops.into_boxed_slice(),
                });
                // The fused ops stay in place behind the marker, so jumps
                // into the run (none exist past the leader check, but also
                // any future disassembly) still see real instructions.
                code[pc] = Op::Kernel(idx);
            }
            pc += span;
        } else {
            pc += span.max(1);
        }
    }
    kernels.len() - before
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Execute one fused kernel against the register files.
#[inline]
pub fn exec(kernel: &Kernel, backend: KernelBackend, regs: &mut Regs) {
    #[cfg(target_arch = "x86_64")]
    if backend == KernelBackend::Avx2 {
        // SAFETY: `KernelBackend::Avx2` is only ever selected after
        // `is_x86_feature_detected!("avx2")` returned true.
        unsafe { x86::exec_avx2(&kernel.kops, regs) };
        return;
    }
    let _ = backend;
    for op in kernel.kops.iter() {
        exec_kop_portable(op, regs);
    }
}

/// Split a register file into a mutable destination window and two
/// shared source windows. Caller guarantees (fusion-time check) that the
/// ranges are in-bounds and the destination is disjoint from both
/// sources; the sources may alias each other.
fn split3<T>(file: &mut [T], dst: u32, a: u32, b: u32, w: u32) -> (&mut [T], &[T], &[T]) {
    let (dst, a, b, w) = (dst as usize, a as usize, b as usize, w as usize);
    let (lo, rest) = file.split_at_mut(dst);
    let (d, hi) = rest.split_at_mut(w);
    // A disjoint equal-or-shorter range lies entirely below `dst` or
    // entirely at/after `dst + w`.
    let pick = |r: usize| -> &[T] {
        if r < dst {
            &lo[r..r + w]
        } else {
            &hi[r - dst - w..r - dst - w + w]
        }
    };
    let (ra, rb) = (pick(a), pick(b));
    (d, ra, rb)
}

macro_rules! lanes_f32 {
    ($d:expr, $x:expr, $y:expr, $op:tt) => {
        for ((d, &x), &y) in $d.iter_mut().zip($x).zip($y) {
            *d = ((x as f32) $op (y as f32)) as f64;
        }
    };
}

macro_rules! lanes_f64 {
    ($d:expr, $x:expr, $y:expr, $op:tt) => {
        for ((d, &x), &y) in $d.iter_mut().zip($x).zip($y) {
            *d = x $op y;
        }
    };
}

macro_rules! lanes_i32 {
    ($d:expr, $x:expr, $y:expr, $f:ident) => {
        for ((d, &x), &y) in $d.iter_mut().zip($x).zip($y) {
            *d = ((x as i32).$f(y as i32)) as i64;
        }
    };
}

macro_rules! lanes_i64 {
    ($d:expr, $x:expr, $y:expr, $f:ident) => {
        for ((d, &x), &y) in $d.iter_mut().zip($x).zip($y) {
            *d = x.$f(y);
        }
    };
}

macro_rules! lanes_bits {
    ($d:expr, $x:expr, $y:expr, $op:tt) => {
        for ((d, &x), &y) in $d.iter_mut().zip($x).zip($y) {
            *d = x $op y;
        }
    };
}

/// Execute one fused op on the portable backend. Public within the crate
/// so the AVX2 dispatcher can fall through to it for generic variants.
pub(crate) fn exec_kop_portable(op: &KOp, regs: &mut Regs) {
    match *op {
        KOp::ConstVecI { dst, ref vals } => {
            regs.i[dst as usize..dst as usize + vals.len()].copy_from_slice(vals);
        }
        KOp::ConstVecF { dst, ref vals } => {
            regs.f[dst as usize..dst as usize + vals.len()].copy_from_slice(vals);
        }
        KOp::MovNI { dst, src, w } => {
            regs.i
                .copy_within(src as usize..(src + w) as usize, dst as usize);
        }
        KOp::MovNF { dst, src, w } => {
            regs.f
                .copy_within(src as usize..(src + w) as usize, dst as usize);
        }
        KOp::SplatI { dst, a, w } => {
            let v = regs.i[a as usize];
            regs.i[dst as usize..(dst + w) as usize].fill(v);
        }
        KOp::SplatF { dst, a, w } => {
            let v = regs.f[a as usize];
            regs.f[dst as usize..(dst + w) as usize].fill(v);
        }
        KOp::PermI {
            parity,
            dst,
            a,
            b,
            w,
        } => {
            let w = w as usize;
            for k in 0..w {
                let pos = parity as usize + 2 * k;
                let v = if pos < w {
                    regs.i[a as usize + pos]
                } else {
                    regs.i[b as usize + pos - w]
                };
                regs.i[dst as usize + k] = v;
            }
        }
        KOp::PermF {
            parity,
            dst,
            a,
            b,
            w,
        } => {
            let w = w as usize;
            for k in 0..w {
                let pos = parity as usize + 2 * k;
                let v = if pos < w {
                    regs.f[a as usize + pos]
                } else {
                    regs.f[b as usize + pos - w]
                };
                regs.f[dst as usize + k] = v;
            }
        }
        KOp::FToI { dst, a } => regs.i[dst as usize] = regs.f[a as usize] as i64,

        KOp::AddF32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f32!(d, x, y, +);
        }
        KOp::SubF32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f32!(d, x, y, -);
        }
        KOp::MulF32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f32!(d, x, y, *);
        }
        KOp::DivF32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f32!(d, x, y, /);
        }
        KOp::AddF64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f64!(d, x, y, +);
        }
        KOp::SubF64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f64!(d, x, y, -);
        }
        KOp::MulF64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f64!(d, x, y, *);
        }
        KOp::DivF64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.f, dst, a, b, w);
            lanes_f64!(d, x, y, /);
        }
        KOp::AddI32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i32!(d, x, y, wrapping_add);
        }
        KOp::SubI32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i32!(d, x, y, wrapping_sub);
        }
        KOp::MulI32 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i32!(d, x, y, wrapping_mul);
        }
        KOp::AddI64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i64!(d, x, y, wrapping_add);
        }
        KOp::SubI64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i64!(d, x, y, wrapping_sub);
        }
        KOp::MulI64 { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_i64!(d, x, y, wrapping_mul);
        }
        KOp::AndI { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_bits!(d, x, y, &);
        }
        KOp::OrI { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_bits!(d, x, y, |);
        }
        KOp::XorI { dst, a, b, w } => {
            let (d, x, y) = split3(&mut regs.i, dst, a, b, w);
            lanes_bits!(d, x, y, ^);
        }

        KOp::BinI {
            op,
            ty,
            dst,
            a,
            b,
            w,
        } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] =
                    bin_i(op, ty, regs.i[a as usize + k], regs.i[b as usize + k]);
            }
        }
        KOp::BinF {
            op,
            ty,
            dst,
            a,
            b,
            w,
        } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] =
                    bin_f(op, ty, regs.f[a as usize + k], regs.f[b as usize + k]);
            }
        }
        KOp::CmpF { op, dst, a, b, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] =
                    cmp_f(op, regs.f[a as usize + k], regs.f[b as usize + k]);
            }
        }
        KOp::NegI { ty, dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = neg_i(ty, regs.i[a as usize + k]);
            }
        }
        KOp::NegF { dst, a, w } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] = -regs.f[a as usize + k];
            }
        }
        KOp::NotI { ty, dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = not_i(ty, regs.i[a as usize + k]);
            }
        }
        KOp::LogNotI { dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = (regs.i[a as usize + k] == 0) as i64;
            }
        }
        KOp::LogNotF { dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = (regs.f[a as usize + k] == 0.0) as i64;
            }
        }
        KOp::CastII {
            from,
            to,
            dst,
            a,
            w,
        } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = cast_ii(from, to, regs.i[a as usize + k]);
            }
        }
        KOp::CastIF { to, dst, a, w } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] = cast_if(to, regs.i[a as usize + k]);
            }
        }
        KOp::CastFI { to, dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = cast_fi(to, regs.f[a as usize + k]);
            }
        }
        KOp::CastFF { to, dst, a, w } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] = cast_ff(to, regs.f[a as usize + k]);
            }
        }
        KOp::Call1I { ty, dst, a, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] = call1_i(ty, regs.i[a as usize + k]);
            }
        }
        KOp::Call2I { i, dst, a, b, w } => {
            for k in 0..w as usize {
                regs.i[dst as usize + k] =
                    call2_i(i, regs.i[a as usize + k], regs.i[b as usize + k]);
            }
        }
        KOp::Call1F { i, ty, dst, a, w } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] = call1_f(i, ty, regs.f[a as usize + k]);
            }
        }
        KOp::Call2F {
            i,
            ty,
            dst,
            a,
            b,
            w,
        } => {
            for k in 0..w as usize {
                regs.f[dst as usize + k] =
                    call2_f(i, ty, regs.f[a as usize + k], regs.f[b as usize + k]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_both(code: &mut [Op], int_regs: u32, float_regs: u32, seed: u64) -> (Regs, Regs) {
        use crate::bytecode::{run_code, CompiledFilter};
        use crate::machine::CycleCounters;
        let mk_regs = || {
            let mut r = Regs::new(int_regs as usize, float_regs as usize);
            for (k, x) in r.i.iter_mut().enumerate() {
                *x = ((seed.wrapping_mul(k as u64 + 1) % 2000) as i64) - 1000;
            }
            for (k, x) in r.f.iter_mut().enumerate() {
                *x = ((seed.wrapping_mul(k as u64 + 3) % 2000) as f64 - 1000.0) as f32 as f64;
            }
            r
        };
        let plain = CompiledFilter {
            name: "t".into(),
            int_regs,
            float_regs,
            zero_i: vec![],
            zero_f: vec![],
            init: vec![],
            work: code.to_vec(),
            charges: vec![],
            kernels: vec![],
            backend: KernelBackend::Portable,
        };
        let mut kernels = Vec::new();
        fuse_runs(code, &mut kernels, int_regs, float_regs, |_| true);
        let fused = CompiledFilter {
            work: code.to_vec(),
            kernels,
            backend: select_backend(),
            ..plain.clone()
        };
        let mut c = CycleCounters::default();
        let (mut r1, mut r2) = (mk_regs(), mk_regs());
        run_code(
            &plain,
            &plain.work,
            &mut r1,
            &mut [],
            None,
            None,
            0,
            0,
            &mut c,
        )
        .unwrap();
        run_code(
            &fused,
            &fused.work,
            &mut r2,
            &mut [],
            None,
            None,
            0,
            0,
            &mut c,
        )
        .unwrap();
        (r1, r2)
    }

    #[test]
    fn fused_arith_matches_dispatch() {
        for seed in [1u64, 7, 13, 9999] {
            let mut code = vec![
                Op::VBinF {
                    op: BinOp::Mul,
                    ty: ScalarTy::F32,
                    dst: 8,
                    a: 0,
                    b: 4,
                    w: 4,
                },
                Op::VBinF {
                    op: BinOp::Add,
                    ty: ScalarTy::F32,
                    dst: 12,
                    a: 8,
                    b: 0,
                    w: 4,
                },
                Op::VBinI {
                    op: BinOp::Mul,
                    ty: ScalarTy::I32,
                    dst: 8,
                    a: 0,
                    b: 4,
                    w: 4,
                },
                Op::VBinI {
                    op: BinOp::Xor,
                    ty: ScalarTy::I32,
                    dst: 12,
                    a: 8,
                    b: 0,
                    w: 4,
                },
                Op::SplatI {
                    dst: 16,
                    a: 2,
                    w: 4,
                },
                Op::PermI {
                    parity: 1,
                    dst: 20,
                    a: 8,
                    b: 12,
                    w: 4,
                },
            ];
            let (r1, r2) = run_both(&mut code, 24, 16, seed);
            assert_eq!(r1.i, r2.i, "seed {seed}");
            assert_eq!(
                r1.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                r2.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn runs_stop_at_leaders_and_nonfusible_ops() {
        let mut code = vec![
            Op::ConstI { dst: 0, v: 3 },
            Op::ConstI { dst: 1, v: 0 },
            // leader (LoopBack target below)
            Op::LoopHead {
                counter: 1,
                limit: 0,
                exit: 7,
            },
            Op::BinI {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: 2,
                a: 2,
                b: 0,
            },
            Op::BinI {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: 3,
                a: 2,
                b: 2,
            },
            Op::Charge(0),
            Op::LoopBack {
                counter: 1,
                head: 2,
            },
            Op::MovI { dst: 4, src: 3 },
        ];
        let mut kernels = Vec::new();
        fuse_runs(&mut code, &mut kernels, 8, 0, |_| true);
        // Two fused runs: the two leading consts, and the two adds inside
        // the loop body (stopped by Charge). The trailing single MovI is
        // below MIN_RUN.
        assert_eq!(kernels.len(), 2);
        assert_eq!(code[0], Op::Kernel(0));
        assert!(matches!(code[2], Op::LoopHead { .. }));
        assert_eq!(code[3], Op::Kernel(1));
        assert!(matches!(code[4], Op::BinI { .. })); // left in place
        assert!(matches!(code[7], Op::MovI { .. }));
        // dst aliases src `a` in the first add: must have degraded to the
        // generic lane-loop variant, not AddI64.
        assert!(matches!(kernels[1].kops[0], KOp::BinI { .. }));
        assert!(matches!(kernels[1].kops[1], KOp::AddI64 { .. }));
    }

    #[test]
    fn idempotent_rematerializations_are_pruned() {
        // An unrolled two-stage chain: the second stage re-materializes
        // the same constant into the same registers with nothing touching
        // them in between — one materialization must survive, and the
        // fused result must still match plain dispatch bit-for-bit.
        let stage = |dst| {
            vec![
                Op::ConstF { dst: 8, v: 1.5 },
                Op::SplatF { dst: 9, a: 8, w: 4 },
                Op::VBinF {
                    op: BinOp::Mul,
                    ty: ScalarTy::F32,
                    dst,
                    a: 0,
                    b: 9,
                    w: 4,
                },
                Op::MovNF {
                    dst: 0,
                    src: dst,
                    w: 4,
                },
            ]
        };
        let mut code: Vec<Op> = stage(16).into_iter().chain(stage(16)).collect();
        let (r1, r2) = run_both(&mut code, 4, 24, 5);
        assert_eq!(r1.i, r2.i);
        assert_eq!(
            r1.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            r2.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
        let pruned = prune_idempotent(code_kops(
            &stage(16).into_iter().chain(stage(16)).collect::<Vec<_>>(),
        ));
        // Second stage's ConstF + SplatF collapse; its Mul and MovNF stay
        // (their inputs were rewritten in between).
        assert_eq!(pruned.len(), 6);
    }

    fn code_kops(code: &[Op]) -> Vec<KOp> {
        code.iter().map(|op| lower(op, 32, 32).unwrap()).collect()
    }

    #[test]
    fn self_aliasing_ops_are_never_pruned() {
        // `x = x + c` twice in a row: the ops are identical and nothing
        // between them touches their registers, but each re-execution
        // reads what the previous one wrote — dropping one halves the
        // increment. Same for an overlapping copy_within-style MovN.
        let add = Op::BinI {
            op: BinOp::Add,
            ty: ScalarTy::I64,
            dst: 1,
            a: 1,
            b: 0,
        };
        let mov = Op::MovNI {
            dst: 2,
            src: 1,
            w: 4,
        };
        let code = vec![
            Op::ConstI { dst: 0, v: 3 },
            add.clone(),
            add.clone(),
            mov.clone(),
            mov.clone(),
        ];
        let pruned = prune_idempotent(code_kops(&code));
        assert_eq!(pruned.len(), 5, "self-aliasing ops must all survive");
        // And end-to-end: fused execution stays bit-identical to dispatch.
        for seed in [1u64, 7, 23] {
            let mut c = code.clone();
            let (r1, r2) = run_both(&mut c, 8, 0, seed);
            assert_eq!(r1.i, r2.i, "seed {seed}");
        }
    }

    #[test]
    fn unprofitable_runs_stay_on_dispatch() {
        // Two scalar consts: a legal run, but far below the profitability
        // bar — no kernel may be created and the ops stay in place.
        let mut code = vec![Op::ConstI { dst: 0, v: 1 }, Op::ConstI { dst: 1, v: 2 }];
        let mut kernels = Vec::new();
        assert_eq!(fuse(&mut code, &mut kernels, 4, 0), 0);
        assert!(kernels.is_empty());
        assert!(matches!(code[0], Op::ConstI { .. }));
    }

    #[test]
    fn backend_selection_honors_portable_override() {
        // Pure-function test: mutating the process env here would race
        // with concurrent tests in this module that call select_backend
        // via run_both. The env-var plumbing itself is exercised by
        // tests/kernel_backends.rs, which owns the variable in a single
        // #[test], and by the CI portable-backend test-matrix leg.
        assert!(forces_portable(Some("1")));
        assert!(forces_portable(Some("yes")));
        assert!(!forces_portable(Some("0")));
        assert!(!forces_portable(Some("")));
        assert!(!forces_portable(None));
        assert_eq!(backend_for(true), KernelBackend::Portable);
        #[cfg(target_arch = "x86_64")]
        if std::is_x86_feature_detected!("avx2") {
            assert_eq!(backend_for(false), KernelBackend::Avx2);
        }
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(backend_for(false), KernelBackend::Portable);
    }
}
