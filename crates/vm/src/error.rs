//! Typed execution errors.
//!
//! The interpreter used to panic on malformed programs (scalar/vector slot
//! mismatches, tape accesses without a tape). Panics poison a whole
//! process; the threaded runtime needs a worker to be able to fail one run
//! gracefully and report the failure across a thread boundary, so every
//! such condition is now a [`VmError`] propagated through
//! [`crate::exec::run_program`] / [`crate::exec::run_scheduled`].

use macross_sdf::ScheduleError;
use std::fmt;

/// Which end of a filter a missing tape was expected on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeSide {
    /// The filter's input tape.
    Input,
    /// The filter's output tape.
    Output,
}

impl fmt::Display for TapeSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapeSide::Input => write!(f, "input"),
            TapeSide::Output => write!(f, "output"),
        }
    }
}

/// An execution failure. All variants are plain data (`Send + Sync`) so a
/// worker thread can hand one back to the coordinating thread.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A filter popped/pushed/peeked without the corresponding tape.
    MissingTape {
        /// Filter name.
        filter: String,
        /// Which side was missing.
        side: TapeSide,
    },
    /// A value's scalar/vector/aggregate shape disagreed with the slot or
    /// operation it was used in (the SIMDizer must splat scalars, etc.).
    TypeMismatch {
        /// Filter name.
        filter: String,
        /// What was being executed when the mismatch surfaced.
        context: String,
    },
    /// An internal (fused-actor) channel was read while empty.
    ChannelUnderflow {
        /// Filter name.
        filter: String,
        /// Channel display name.
        chan: String,
    },
    /// Scheduling failed before execution began ([`crate::exec::run_program`] only).
    Schedule(ScheduleError),
    /// A runtime value had the wrong shape for the requested view
    /// ([`crate::interp::RtVal::scalar`] / [`crate::interp::RtVal::vector`]).
    Shape {
        /// The shape the caller asked for.
        expected: &'static str,
        /// The shape the value actually had.
        got: &'static str,
    },
    /// A tape this filter fires against was poisoned — by fault injection
    /// or by a prior failed firing that left it in an undefined state —
    /// so the firing was refused before touching it.
    Poisoned {
        /// Filter name.
        filter: String,
    },
    /// The filter body panicked. The unwind is caught at the firing
    /// boundary ([`crate::firing::fire_filter`]) and converted so one bad
    /// guest program cannot take a host worker thread down with it.
    Panicked {
        /// Filter name.
        filter: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::MissingTape { filter, side } => {
                write!(f, "filter {filter} accessed its {side} tape but has none")
            }
            VmError::TypeMismatch { filter, context } => {
                write!(f, "type mismatch in filter {filter}: {context}")
            }
            VmError::ChannelUnderflow { filter, chan } => {
                write!(f, "internal channel {chan} of filter {filter} underflowed")
            }
            VmError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            VmError::Shape { expected, got } => {
                write!(f, "expected {expected} value, got {got}")
            }
            VmError::Poisoned { filter } => {
                write!(f, "filter {filter} refused to fire on a poisoned tape")
            }
            VmError::Panicked { filter, message } => {
                write!(f, "filter {filter} panicked mid-firing: {message}")
            }
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for VmError {
    fn from(e: ScheduleError) -> Self {
        VmError::Schedule(e)
    }
}
