//! # macross-vm
//!
//! The execution substrate of the MacroSS reproduction: a virtual machine
//! that runs stream graphs (scalar *or* macro-SIMDized) functionally while
//! charging every operation against a target [`machine::Machine`] cost
//! table.
//!
//! The VM plays the role of the paper's Core i7 testbed: differential
//! execution checks that every SIMDization transform is output-preserving,
//! and the cycle counters provide the relative performance numbers behind
//! each figure. See DESIGN.md for the substitution argument.
//!
//! ```
//! use macross_streamir::builder::StreamSpec;
//! use macross_streamir::edsl::*;
//! use macross_streamir::types::{ScalarTy, Ty};
//! use macross_vm::{run_program, Machine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
//! let n = src.state("n", Ty::Scalar(ScalarTy::I32));
//! src.work(|b| { b.push(v(n)); b.set(n, v(n) + 1i32); });
//! let mut dbl = FilterBuilder::new("dbl", 1, 1, 1, ScalarTy::I32);
//! dbl.work(|b| { b.push(pop() * 2i32); });
//! let g = StreamSpec::pipeline(vec![src.build_spec(), dbl.build_spec(), StreamSpec::Sink]).build()?;
//! let res = run_program(&g, &Machine::core_i7(), 4)?;
//! assert_eq!(res.output.len(), 4);
//! assert!(res.total_cycles() > 0);
//! # Ok(())
//! # }
//! ```

pub mod bytecode;
pub mod compile;
pub mod error;
pub mod exec;
pub mod firing;
pub mod interp;
pub mod kernel;
pub mod machine;
pub mod programs;
pub mod tape;

pub use bytecode::{CompiledFilter, Regs};
pub use compile::{compile_filter, compile_filter_opts};
pub use error::{TapeSide, VmError};
pub use exec::{run_program, run_scheduled, run_scheduled_mode, ExecMode, Executor, RunResult};
pub use firing::FilterState;
pub use interp::{FiringCtx, RtVal, Slot};
pub use kernel::{select_tier, KernelBackend, KernelTier};
pub use machine::{CostTable, CycleCounters, Machine};
pub use programs::CompiledPrograms;
pub use tape::Tape;
