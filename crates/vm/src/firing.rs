//! Reentrant firing primitives.
//!
//! Free functions that fire one node once against a caller-supplied tape
//! slice, shared by the single-threaded [`crate::exec::Executor`] and the
//! worker threads of `macross-runtime`. All state is passed in explicitly
//! ([`FilterState`] is plain owned data and therefore `Send`), so a worker
//! thread can own the states of exactly the filters assigned to its core
//! and fire them against thread-local tapes.

use crate::bytecode::{run_code, CompiledFilter, Regs};
use crate::compile::compile_filter_opts;
use crate::error::VmError;
use crate::exec::ExecMode;
use crate::interp::{reset_locals, zero_slots, FiringCtx, Slot};
use crate::machine::{CycleCounters, Machine};
use crate::tape::Tape;
use macross_streamir::filter::{Filter, VarKind};
use macross_streamir::graph::{EdgeId, Graph, ReorderSide, SplitKind};
use macross_streamir::types::{ScalarTy, Ty, Value};
use macross_streamir::AddrGen;
use std::collections::VecDeque;
use std::sync::Arc;

/// Which engine a [`FilterState`] fires with. The compiled plan is shared
/// (`Arc`) so cloning a state for a worker thread does not recompile.
#[derive(Debug, Clone, Default)]
enum Engine {
    /// Tree-walking interpreter over `slots`.
    #[default]
    Tree,
    /// Register bytecode over `regs`.
    Compiled(Arc<CompiledFilter>),
}

/// Persistent per-filter execution state: variable slots and internal
/// (fused-actor) channels. Owned data — `Send` — so it can migrate to the
/// worker thread that hosts the filter.
#[derive(Debug, Clone, Default)]
pub struct FilterState {
    /// Variable storage, indexed by `VarId` (tree-walking engine).
    pub slots: Vec<Slot>,
    /// Internal channel storage, indexed by `ChanId`.
    pub chans: Vec<VecDeque<Value>>,
    /// Unboxed register files (bytecode engine).
    regs: Regs,
    engine: Engine,
}

impl FilterState {
    /// Zero-initialized state for a filter (tree-walking engine).
    pub fn new(filter: &Filter) -> FilterState {
        FilterState {
            slots: zero_slots(filter),
            chans: vec![VecDeque::new(); filter.chans.len()],
            regs: Regs::default(),
            engine: Engine::Tree,
        }
    }

    /// Zero-initialized state with the engine selected by `mode`.
    ///
    /// In [`ExecMode::Bytecode`], compiles the filter's bodies against the
    /// element types of its input/output edges; filters the compiler
    /// cannot lower exactly keep the tree-walking engine (per-filter
    /// fallback), so behaviour is always identical.
    pub fn prepared(
        filter: &Filter,
        machine: &Machine,
        in_elem: Option<ScalarTy>,
        out_elem: Option<ScalarTy>,
        mode: ExecMode,
    ) -> FilterState {
        FilterState::from_shared(
            filter,
            FilterState::compile_plan(filter, machine, in_elem, out_elem, mode),
        )
    }

    /// Compile the shareable plan [`FilterState::prepared`] would install,
    /// without building any state. `None` when `mode` is
    /// [`ExecMode::TreeWalk`] or the compiler cannot lower the body
    /// exactly (per-filter fallback).
    pub fn compile_plan(
        filter: &Filter,
        machine: &Machine,
        in_elem: Option<ScalarTy>,
        out_elem: Option<ScalarTy>,
        mode: ExecMode,
    ) -> Option<Arc<CompiledFilter>> {
        let fuse = match mode {
            ExecMode::Bytecode => Some(true),
            ExecMode::BytecodeNoFuse => Some(false),
            ExecMode::TreeWalk => None,
        }?;
        compile_filter_opts(filter, in_elem, out_elem, machine, fuse).map(Arc::new)
    }

    /// Zero-initialized state firing through an already-compiled shared
    /// plan (`None` selects the tree-walking engine). Only the `Arc` is
    /// cloned — many concurrent sessions of the same graph shape share
    /// one compilation. Behaviour is identical to
    /// [`FilterState::prepared`] with the mode the plan was compiled for.
    pub fn from_shared(filter: &Filter, plan: Option<Arc<CompiledFilter>>) -> FilterState {
        let mut state = FilterState::new(filter);
        if let Some(plan) = plan {
            state.regs = Regs::new(plan.int_regs as usize, plan.float_regs as usize);
            state.engine = Engine::Compiled(plan);
        }
        state
    }

    /// True when this state fires through compiled bytecode.
    pub fn is_compiled(&self) -> bool {
        matches!(self.engine, Engine::Compiled(_))
    }

    /// Number of fused superblock kernels in the compiled plan (0 when
    /// tree-walking or fusion is off) — telemetry's kernel-fusion trace.
    pub fn kernel_count(&self) -> usize {
        match &self.engine {
            Engine::Compiled(plan) => plan.kernels.len(),
            Engine::Tree => 0,
        }
    }

    /// Export the values of the filter's `State` variables, flattened in
    /// declaration order (vector-arrays row-major: all lanes of row 0,
    /// then row 1, ...). Exact in both engines: the tree-walker stores
    /// `Value`s directly, and the bytecode register files hold `i32`
    /// sign-extended to `i64` / `f32` exactly widened to `f64`, so
    /// narrowing back through the declared element type loses nothing.
    ///
    /// Together with [`FilterState::import_state_vars`] this is the
    /// configuration-swap carrier of the parameterized-dataflow runtime:
    /// a stateful filter's values move bit-exactly between two
    /// independently compiled configurations of the same program.
    pub fn export_state_vars(&self, filter: &Filter) -> Vec<Value> {
        let mut out = Vec::new();
        match &self.engine {
            Engine::Compiled(_) => {
                for (decl, (base, len, float)) in filter.vars.iter().zip(var_windows(filter)) {
                    if decl.kind != VarKind::State {
                        continue;
                    }
                    let elem = decl.ty.elem();
                    for k in base..base + len {
                        out.push(if float {
                            narrow_float(elem, self.regs.f[k as usize])
                        } else {
                            narrow_int(elem, self.regs.i[k as usize])
                        });
                    }
                }
            }
            Engine::Tree => {
                for (i, decl) in filter.vars.iter().enumerate() {
                    if decl.kind != VarKind::State {
                        continue;
                    }
                    match &self.slots[i] {
                        Slot::S(v) => out.push(*v),
                        Slot::V(vs) | Slot::A(vs) => out.extend_from_slice(vs),
                        Slot::VA(rows) => {
                            for row in rows {
                                out.extend_from_slice(row);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Overwrite the filter's `State` variables with values previously
    /// produced by [`FilterState::export_state_vars`] on a state of a
    /// filter with identical `State` declarations. Both engines' storage
    /// is updated so a subsequent export round-trips.
    ///
    /// # Errors
    /// [`VmError::TypeMismatch`] when the value count or any element
    /// type disagrees with the filter's declarations — the two
    /// configurations are not state-compatible.
    pub fn import_state_vars(&mut self, filter: &Filter, vals: &[Value]) -> Result<(), VmError> {
        let mismatch = |context: String| VmError::TypeMismatch {
            filter: filter.name.clone(),
            context,
        };
        let mut cursor = 0usize;
        let windows = var_windows(filter);
        for (i, decl) in filter.vars.iter().enumerate() {
            if decl.kind != VarKind::State {
                continue;
            }
            let len = flat_len(decl.ty);
            let chunk = vals
                .get(cursor..cursor + len)
                .ok_or_else(|| mismatch(format!("state carrier too short for '{}'", decl.name)))?;
            let elem = decl.ty.elem();
            if !chunk.iter().all(|v| value_matches(elem, *v)) {
                return Err(mismatch(format!(
                    "state carrier element type mismatch for '{}'",
                    decl.name
                )));
            }
            cursor += len;
            self.slots[i] = unflatten_slot(decl.ty, chunk);
            if let Engine::Compiled(_) = self.engine {
                let (base, _, float) = windows[i];
                for (k, v) in chunk.iter().enumerate() {
                    if float {
                        self.regs.f[base as usize + k] = widen_float(*v);
                    } else {
                        self.regs.i[base as usize + k] = widen_int(*v);
                    }
                }
            }
        }
        if cursor != vals.len() {
            return Err(mismatch(format!(
                "state carrier has {} values, filter consumes {cursor}",
                vals.len()
            )));
        }
        Ok(())
    }

    /// Run the filter's `init` function, if any. Cycles are *not*
    /// counted: the paper's measurements are steady-state.
    ///
    /// # Errors
    /// Propagates interpreter failures from the `init` body.
    pub fn run_init_fn(&mut self, filter: &Filter, machine: &Machine) -> Result<(), VmError> {
        if filter.init.is_empty() {
            return Ok(());
        }
        let mut scratch = CycleCounters::default();
        if let Engine::Compiled(plan) = &self.engine {
            let plan = Arc::clone(plan);
            return run_code(
                &plan,
                &plan.init,
                &mut self.regs,
                &mut self.chans,
                None,
                None,
                0,
                0,
                &mut scratch,
            );
        }
        let mut ctx = FiringCtx {
            filter,
            slots: &mut self.slots,
            chans: &mut self.chans,
            input: None,
            output: None,
            machine,
            counters: &mut scratch,
            input_addr_cost: 0,
            output_addr_cost: 0,
        };
        ctx.exec_block(&filter.init)
    }
}

/// Flattened element count of a declared variable type (mirrors the
/// bytecode compiler's register-window sizes).
fn flat_len(ty: Ty) -> usize {
    match ty {
        Ty::Scalar(_) => 1,
        Ty::Vector(_, w) => w,
        Ty::Array(_, n) => n,
        Ty::VectorArray(_, w, n) => w * n,
    }
}

/// Recompute each declared variable's register window `(base, len,
/// is_float)` exactly as the bytecode compiler allocates them: declaration
/// order, int/float files split, windows at the bottom of each file.
fn var_windows(filter: &Filter) -> Vec<(u32, u32, bool)> {
    let mut out = Vec::with_capacity(filter.vars.len());
    let (mut ni, mut nf) = (0u32, 0u32);
    for decl in &filter.vars {
        let len = flat_len(decl.ty) as u32;
        let float = decl.ty.elem().is_float();
        let cursor = if float { &mut nf } else { &mut ni };
        out.push((*cursor, len, float));
        *cursor += len;
    }
    out
}

fn value_matches(t: ScalarTy, v: Value) -> bool {
    matches!(
        (t, v),
        (ScalarTy::I32, Value::I32(_))
            | (ScalarTy::I64, Value::I64(_))
            | (ScalarTy::F32, Value::F32(_))
            | (ScalarTy::F64, Value::F64(_))
    )
}

fn widen_int(v: Value) -> i64 {
    match v {
        Value::I32(x) => x as i64,
        Value::I64(x) => x,
        _ => unreachable!("int window holds int values"),
    }
}

fn widen_float(v: Value) -> f64 {
    match v {
        Value::F32(x) => x as f64,
        Value::F64(x) => x,
        _ => unreachable!("float window holds float values"),
    }
}

fn narrow_int(t: ScalarTy, raw: i64) -> Value {
    match t {
        ScalarTy::I32 => Value::I32(raw as i32),
        ScalarTy::I64 => Value::I64(raw),
        _ => unreachable!("int window narrows to an int type"),
    }
}

fn narrow_float(t: ScalarTy, raw: f64) -> Value {
    match t {
        ScalarTy::F32 => Value::F32(raw as f32),
        ScalarTy::F64 => Value::F64(raw),
        _ => unreachable!("float window narrows to a float type"),
    }
}

fn unflatten_slot(ty: Ty, vals: &[Value]) -> Slot {
    match ty {
        Ty::Scalar(_) => Slot::S(vals[0]),
        Ty::Vector(_, _) => Slot::V(vals.to_vec()),
        Ty::Array(_, _) => Slot::A(vals.to_vec()),
        Ty::VectorArray(_, w, _) => Slot::VA(vals.chunks(w).map(<[Value]>::to_vec).collect()),
    }
}

/// Address-generation cost of one scalar access through a reorder unit.
pub fn addr_cost(machine: &Machine, gen: AddrGen) -> u64 {
    match gen {
        AddrGen::Sagu => machine.cost.sagu_access,
        AddrGen::Software => machine.cost.addr_software_reorder,
    }
}

/// Reorder address-generation cost a scalar access on `edge` pays at the
/// consuming (`consuming = true`) or producing end, if the edge is
/// reordered on that side.
pub fn edge_addr_cost(graph: &Graph, edge: EdgeId, consuming: bool, machine: &Machine) -> u64 {
    graph
        .edge(edge)
        .reorder
        .filter(|r| {
            (consuming && r.side == ReorderSide::Consumer)
                || (!consuming && r.side == ReorderSide::Producer)
        })
        .map(|r| addr_cost(machine, r.addr_gen))
        .unwrap_or(0)
}

/// Render a caught panic payload as text (best effort).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Disjoint mutable borrows of the tapes at `a` and `b` (which must be
/// distinct when both present — they are different edges of one node).
fn two_tapes(
    tapes: &mut [Tape],
    a: Option<usize>,
    b: Option<usize>,
) -> (Option<&mut Tape>, Option<&mut Tape>) {
    match (a, b) {
        (Some(i), Some(j)) if i < j => {
            let (lo, hi) = tapes.split_at_mut(j);
            (Some(&mut lo[i]), Some(&mut hi[0]))
        }
        (Some(i), Some(j)) => {
            assert_ne!(i, j, "input and output tape must be distinct edges");
            let (lo, hi) = tapes.split_at_mut(i);
            (Some(&mut hi[0]), Some(&mut lo[j]))
        }
        (Some(i), None) => (Some(&mut tapes[i]), None),
        (None, Some(j)) => (None, Some(&mut tapes[j])),
        (None, None) => (None, None),
    }
}

/// Fire a filter once: reset locals, run `work` against the tapes at
/// `in_edge` / `out_edge` in `tapes` (indices into the caller's tape
/// slice).
///
/// The firing is a failure boundary: a poisoned tape is refused before it
/// is touched ([`VmError::Poisoned`]), and a panic in the body is caught
/// and converted ([`VmError::Panicked`]) so a bad guest program fails one
/// firing instead of unwinding through a host worker thread.
///
/// # Errors
/// Propagates interpreter failures; the tapes are restored either way.
#[allow(clippy::too_many_arguments)]
pub fn fire_filter(
    filter: &Filter,
    state: &mut FilterState,
    tapes: &mut [Tape],
    in_edge: Option<usize>,
    out_edge: Option<usize>,
    input_addr_cost: u64,
    output_addr_cost: u64,
    machine: &Machine,
    counters: &mut CycleCounters,
) -> Result<(), VmError> {
    if in_edge
        .iter()
        .chain(out_edge.iter())
        .any(|&e| tapes[e].is_poisoned())
    {
        return Err(VmError::Poisoned {
            filter: filter.name.clone(),
        });
    }
    let (mut in_tape, mut out_tape) = two_tapes(tapes, in_edge, out_edge);
    let FilterState {
        slots,
        chans,
        regs,
        engine,
    } = state;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Engine::Compiled(plan) = engine {
            plan.zero_locals(regs);
            run_code(
                plan,
                &plan.work,
                regs,
                chans,
                in_tape.as_deref_mut(),
                out_tape.as_deref_mut(),
                input_addr_cost,
                output_addr_cost,
                counters,
            )
        } else {
            reset_locals(filter, slots);
            let mut ctx = FiringCtx {
                filter,
                slots,
                chans,
                input: in_tape.as_deref_mut(),
                output: out_tape.as_deref_mut(),
                machine,
                counters,
                input_addr_cost,
                output_addr_cost,
            };
            ctx.exec_block(&filter.work)
        }
    }))
    .unwrap_or_else(|payload| {
        Err(VmError::Panicked {
            filter: filter.name.clone(),
            message: panic_message(payload.as_ref()),
        })
    });
    // A failed firing may have left a torn write prefix behind; quarantine
    // it so downstream firings refuse the edge instead of consuming it.
    if result.is_err() {
        if let Some(t) = in_tape {
            t.poison();
        }
        if let Some(t) = out_tape {
            t.poison();
        }
    }
    result?;
    debug_assert!(
        chans.iter().all(|c| c.is_empty()),
        "filter {} left data in an internal channel after firing",
        filter.name
    );
    Ok(())
}

/// Fire a splitter once. `in_cost` / `out_costs` are the per-access
/// reorder address costs of the input edge and each output edge.
#[allow(clippy::too_many_arguments)]
pub fn fire_splitter(
    kind: &SplitKind,
    tapes: &mut [Tape],
    in_edge: usize,
    out_edges: &[usize],
    in_cost: u64,
    out_costs: &[u64],
    machine: &Machine,
    counters: &mut CycleCounters,
) {
    match kind {
        SplitKind::Duplicate => {
            counters.mem_scalar += machine.cost.load;
            counters.addr_overhead += in_cost;
            let v = tapes[in_edge].pop();
            for (i, &e) in out_edges.iter().enumerate() {
                counters.mem_scalar += machine.cost.store;
                counters.addr_overhead += out_costs[i];
                tapes[e].push(v);
            }
        }
        SplitKind::RoundRobin(weights) => {
            for (i, &e) in out_edges.iter().enumerate() {
                for _ in 0..weights[i] {
                    counters.mem_scalar += machine.cost.load + machine.cost.store;
                    counters.addr_overhead += in_cost + out_costs[i];
                    let v = tapes[in_edge].pop();
                    tapes[e].push(v);
                }
            }
        }
    }
}

/// Fire a round-robin joiner once.
#[allow(clippy::too_many_arguments)]
pub fn fire_joiner(
    weights: &[usize],
    tapes: &mut [Tape],
    in_edges: &[usize],
    out_edge: usize,
    in_costs: &[u64],
    out_cost: u64,
    machine: &Machine,
    counters: &mut CycleCounters,
) {
    for (i, &e) in in_edges.iter().enumerate() {
        for _ in 0..weights[i] {
            counters.mem_scalar += machine.cost.load + machine.cost.store;
            counters.addr_overhead += in_costs[i] + out_cost;
            let v = tapes[e].pop();
            tapes[out_edge].push(v);
        }
    }
}

/// Fire a horizontal splitter once: pops the original splitter's worth of
/// scalars, packs them into vectors (one lane per fused branch), and
/// vector-pushes to each group's vector tape.
pub fn fire_hsplitter(
    kind: &SplitKind,
    width: usize,
    tapes: &mut [Tape],
    in_edge: usize,
    out_edges: &[usize],
    machine: &Machine,
    counters: &mut CycleCounters,
) {
    let groups = out_edges.len();
    match kind {
        SplitKind::Duplicate => {
            counters.mem_scalar += machine.cost.load;
            let v = tapes[in_edge].pop();
            for &e in out_edges {
                counters.pack_unpack += machine.cost.splat;
                counters.mem_vector += machine.cost.vstore;
                tapes[e].vpush(&vec![v; width]);
            }
        }
        SplitKind::RoundRobin(weights) => {
            let w = weights[0];
            debug_assert!(
                weights.iter().all(|&x| x == w),
                "hsplitter weights must be uniform"
            );
            let n = groups * width;
            let mut vals = Vec::with_capacity(n * w);
            for _ in 0..n * w {
                counters.mem_scalar += machine.cost.load;
                vals.push(tapes[in_edge].pop());
            }
            for (g, &e) in out_edges.iter().enumerate() {
                for k in 0..w {
                    let mut vec = Vec::with_capacity(width);
                    for j in 0..width {
                        counters.pack_unpack += machine.cost.lane_insert;
                        vec.push(vals[w * (g * width + j) + k]);
                    }
                    counters.mem_vector += machine.cost.vstore;
                    tapes[e].vpush(&vec);
                }
            }
        }
    }
}

/// Fire a horizontal joiner once: vector-pops from each group, unpacks
/// lanes, and pushes scalars in the original joiner's round-robin order.
pub fn fire_hjoiner(
    weights: &[usize],
    width: usize,
    tapes: &mut [Tape],
    in_edges: &[usize],
    out_edge: usize,
    machine: &Machine,
    counters: &mut CycleCounters,
) {
    let w = weights[0];
    debug_assert!(
        weights.iter().all(|&x| x == w),
        "hjoiner weights must be uniform"
    );
    let groups = in_edges.len();
    // rows[g][k] = k-th vector popped from group g this firing.
    let mut rows: Vec<Vec<Vec<Value>>> = Vec::with_capacity(groups);
    for &e in in_edges {
        let mut group_rows = Vec::with_capacity(w);
        for _ in 0..w {
            counters.mem_vector += machine.cost.vload;
            group_rows.push(tapes[e].vpop(width));
        }
        rows.push(group_rows);
    }
    let n = groups * width;
    for b in 0..n {
        for row in &rows[b / width] {
            counters.pack_unpack += machine.cost.lane_extract;
            counters.mem_scalar += machine.cost.store;
            tapes[out_edge].push(row[b % width]);
        }
    }
}

/// Fire a sink once: pop one value from its input tape and return it for
/// the caller to record.
pub fn fire_sink(
    tapes: &mut [Tape],
    in_edge: usize,
    in_cost: u64,
    machine: &Machine,
    counters: &mut CycleCounters,
) -> Value {
    counters.mem_scalar += machine.cost.load;
    counters.addr_overhead += in_cost;
    tapes[in_edge].pop()
}
