//! The firing compiler: lowers a filter's `init`/`work` statement trees
//! into the flat register bytecode of [`crate::bytecode`].
//!
//! Compilation is **all-or-nothing per filter**: if any construct cannot
//! be lowered with provably identical semantics — ill-typed stores that
//! the dynamically-typed tree-walker would tolerate (or fail on at run
//! time), unknown tape element types, shape mismatches — the compiler
//! returns `None` and the filter keeps tree-walking. That guarantee is
//! what lets the differential suite demand bit-identical outputs *and*
//! identical error behaviour: the bytecode path only ever runs programs
//! whose every operation it can reproduce exactly.
//!
//! # Register allocation
//!
//! Declared variables get fixed register windows (scalars one register,
//! vectors `w`, arrays `n`, vector-arrays `w*n`), split by class into the
//! integer and float files. Expression temporaries are bump-allocated
//! above the variable windows and released per statement, so the register
//! files stay small; destination registers of value-producing ops are
//! always fresh, which is the no-aliasing invariant the vector ops in the
//! VM rely on.
//!
//! # Cycle accounting
//!
//! Every charge the tree-walker makes is accumulated into a pending
//! [`ChargeEntry`] and flushed as a single [`Op::Charge`] per basic
//! block (at branches, loop-body ends, and function ends). Counter
//! fields are `u64` sums, so aggregation order cannot change totals;
//! per-access input/output reorder costs are kept as *counts* and
//! multiplied by the edge costs at run time, exactly like the
//! tree-walker's incremental additions.

use crate::bytecode::{ChargeEntry, CompiledFilter, Op};
use crate::kernel;
use crate::machine::Machine;
use macross_streamir::expr::{BinOp, Expr, Intrinsic, LValue, UnOp};
use macross_streamir::filter::{Filter, VarKind};
use macross_streamir::stmt::Stmt;
use macross_streamir::types::{ScalarTy, Ty, Value};

/// A compiled expression value: a scalar register or `w` consecutive
/// registers, in the file selected by `ty`'s class.
#[derive(Debug, Clone, Copy)]
struct Operand {
    ty: ScalarTy,
    /// `None` for scalars, `Some(w)` for vectors.
    w: Option<u32>,
    reg: u32,
}

impl Operand {
    fn is_float(&self) -> bool {
        self.ty.is_float()
    }
}

/// A declared variable's register window.
#[derive(Debug, Clone, Copy)]
struct VarSlot {
    ty: Ty,
    base: u32,
}

struct Compiler<'a> {
    machine: &'a Machine,
    in_elem: Option<ScalarTy>,
    out_elem: Option<ScalarTy>,
    chan_elems: Vec<ScalarTy>,
    vars: Vec<VarSlot>,
    code: Vec<Op>,
    charges: Vec<ChargeEntry>,
    pending: ChargeEntry,
    cur_i: u32,
    cur_f: u32,
    max_i: u32,
    max_f: u32,
}

fn window_len(ty: Ty) -> Option<u32> {
    let n = match ty {
        Ty::Scalar(_) => 1,
        Ty::Vector(_, w) => w,
        Ty::Array(_, n) => n,
        Ty::VectorArray(_, w, n) => w.checked_mul(n)?,
    };
    u32::try_from(n).ok()
}

/// Compile a filter's `init` and `work` bodies to bytecode.
///
/// `in_elem` / `out_elem` are the element types of the filter's
/// input/output edges (`None` when the filter has no such edge — any tape
/// op then forces a fallback, since its element type is unknowable).
/// Returns `None` when any construct cannot be lowered exactly; the
/// caller must then keep the tree-walking engine for this filter.
pub fn compile_filter(
    filter: &Filter,
    in_elem: Option<ScalarTy>,
    out_elem: Option<ScalarTy>,
    machine: &Machine,
) -> Option<CompiledFilter> {
    compile_filter_opts(filter, in_elem, out_elem, machine, true)
}

/// [`compile_filter`] with superblock kernel fusion controllable: `fuse`
/// = false keeps the plain per-op dispatch plan (the kernels-off
/// baseline measured by `interp_hotpath`, exposed to callers as
/// `ExecMode::BytecodeNoFuse`).
pub fn compile_filter_opts(
    filter: &Filter,
    in_elem: Option<ScalarTy>,
    out_elem: Option<ScalarTy>,
    machine: &Machine,
    fuse: bool,
) -> Option<CompiledFilter> {
    let mut vars = Vec::with_capacity(filter.vars.len());
    let mut zero_i = Vec::new();
    let mut zero_f = Vec::new();
    let mut ni = 0u32;
    let mut nf = 0u32;
    for decl in &filter.vars {
        let len = window_len(decl.ty)?;
        let (cursor, zeros) = if decl.ty.elem().is_float() {
            (&mut nf, &mut zero_f)
        } else {
            (&mut ni, &mut zero_i)
        };
        let base = *cursor;
        *cursor = cursor.checked_add(len)?;
        if decl.kind == VarKind::Local && len > 0 {
            zeros.push((base, len));
        }
        vars.push(VarSlot { ty: decl.ty, base });
    }
    let mut c = Compiler {
        machine,
        in_elem,
        out_elem,
        chan_elems: filter.chans.iter().map(|ch| ch.ty.elem()).collect(),
        vars,
        code: Vec::new(),
        charges: Vec::new(),
        pending: ChargeEntry::default(),
        cur_i: ni,
        cur_f: nf,
        max_i: ni,
        max_f: nf,
    };
    let mut init = c.compile_body(&filter.init)?;
    let mut work = c.compile_body(&filter.work)?;
    let tier = kernel::select_tier();
    let mut kernels = Vec::new();
    if fuse {
        kernel::fuse(&mut init, &mut kernels, c.max_i, c.max_f, tier);
        kernel::fuse(&mut work, &mut kernels, c.max_i, c.max_f, tier);
    }
    Some(CompiledFilter {
        name: filter.name.clone(),
        int_regs: c.max_i,
        float_regs: c.max_f,
        zero_i,
        zero_f,
        init,
        work,
        charges: c.charges,
        kernels,
        tier,
    })
}

impl<'a> Compiler<'a> {
    fn compile_body(&mut self, stmts: &[Stmt]) -> Option<Vec<Op>> {
        debug_assert!(self.pending.is_zero());
        self.code = Vec::new();
        self.compile_block(stmts)?;
        self.flush();
        Some(std::mem::take(&mut self.code))
    }

    fn compile_block(&mut self, stmts: &[Stmt]) -> Option<()> {
        for s in stmts {
            // Expression temporaries live only for their statement.
            let (ci, cf) = (self.cur_i, self.cur_f);
            self.compile_stmt(s)?;
            self.cur_i = ci;
            self.cur_f = cf;
        }
        Some(())
    }

    fn emit(&mut self, op: Op) {
        self.code.push(op);
    }

    /// Emit an op whose jump target will be patched later.
    fn emit_patch(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Op::Jump { target: t }
            | Op::JumpIfZI { target: t, .. }
            | Op::JumpIfZF { target: t, .. }
            | Op::LoopHead { exit: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Flush pending charges as a single `Charge` op (basic-block end).
    fn flush(&mut self) {
        if self.pending.is_zero() {
            return;
        }
        let idx = self.charges.len() as u32;
        self.charges.push(self.pending);
        self.pending = ChargeEntry::default();
        self.emit(Op::Charge(idx));
    }

    fn alloc(&mut self, float: bool, n: u32) -> u32 {
        if float {
            let r = self.cur_f;
            self.cur_f += n;
            self.max_f = self.max_f.max(self.cur_f);
            r
        } else {
            let r = self.cur_i;
            self.cur_i += n;
            self.max_i = self.max_i.max(self.cur_i);
            r
        }
    }

    /// An index/offset/count register: scalar operand as `i64` (floats go
    /// through the free `as_i64` conversion, like the tree-walker).
    fn as_index(&mut self, op: Operand) -> Option<u32> {
        if op.w.is_some() {
            return None;
        }
        if op.is_float() {
            let dst = self.alloc(false, 1);
            self.emit(Op::FToI { dst, a: op.reg });
            Some(dst)
        } else {
            Some(op.reg)
        }
    }

    fn scalar_binop_cost(&self, op: BinOp) -> u64 {
        match op {
            BinOp::Mul => self.machine.cost.mul,
            BinOp::Div | BinOp::Rem => self.machine.cost.div,
            _ => self.machine.cost.alu,
        }
    }

    fn vector_binop_cost(&self, op: BinOp) -> u64 {
        match op {
            BinOp::Mul => self.machine.cost.vmul,
            BinOp::Div | BinOp::Rem => self.machine.cost.vdiv,
            _ => self.machine.cost.valu,
        }
    }

    fn compile_stmt(&mut self, s: &Stmt) -> Option<()> {
        match s {
            Stmt::Assign(lv, e) => {
                let val = self.compile_expr(e)?;
                self.compile_store(lv, val)
            }
            Stmt::Push(e) => {
                let val = self.compile_expr(e)?;
                let ty = self.out_elem?;
                if val.w.is_some() || val.ty != ty {
                    return None;
                }
                self.pending.counters.mem_scalar += self.machine.cost.store;
                self.pending.out_addr += 1;
                self.emit(if val.is_float() {
                    Op::PushF { ty, src: val.reg }
                } else {
                    Op::PushI { ty, src: val.reg }
                });
                Some(())
            }
            Stmt::RPush { value, offset } => {
                let val = self.compile_expr(value)?;
                let ty = self.out_elem?;
                if val.w.is_some() || val.ty != ty {
                    return None;
                }
                let off = self.compile_expr(offset)?;
                let off = self.as_index(off)?;
                self.pending.counters.mem_scalar += self.machine.cost.store;
                // rpush pays a flat ALU for its offset arithmetic, not the
                // per-edge reorder cost (the producer *is* the reorderer).
                self.pending.counters.addr_overhead += self.machine.cost.alu;
                self.emit(if val.is_float() {
                    Op::RPushF {
                        ty,
                        src: val.reg,
                        off,
                    }
                } else {
                    Op::RPushI {
                        ty,
                        src: val.reg,
                        off,
                    }
                });
                Some(())
            }
            Stmt::VPush { value, width } => {
                let val = self.compile_expr(value)?;
                let ty = self.out_elem?;
                if val.ty != ty || val.w != Some(u32::try_from(*width).ok()?) {
                    return None;
                }
                self.pending.counters.mem_vector += self.machine.cost.vstore;
                let w = val.w.expect("checked vector");
                self.emit(if val.is_float() {
                    Op::VPushF {
                        ty,
                        src: val.reg,
                        w,
                    }
                } else {
                    Op::VPushI {
                        ty,
                        src: val.reg,
                        w,
                    }
                });
                Some(())
            }
            Stmt::LPush(c, e) => {
                let val = self.compile_expr(e)?;
                let ty = *self.chan_elems.get(c.0 as usize)?;
                if val.w.is_some() || val.ty != ty {
                    return None;
                }
                self.pending.counters.mem_scalar += self.machine.cost.store;
                let chan = c.0;
                self.emit(if val.is_float() {
                    Op::LPushF {
                        ty,
                        chan,
                        src: val.reg,
                    }
                } else {
                    Op::LPushI {
                        ty,
                        chan,
                        src: val.reg,
                    }
                });
                Some(())
            }
            Stmt::LVPush(c, e, width) => {
                let val = self.compile_expr(e)?;
                let ty = *self.chan_elems.get(c.0 as usize)?;
                if val.ty != ty || val.w != Some(u32::try_from(*width).ok()?) {
                    return None;
                }
                self.pending.counters.mem_vector += self.machine.cost.vstore;
                let (chan, w) = (c.0, val.w.expect("checked vector"));
                self.emit(if val.is_float() {
                    Op::LVPushF {
                        ty,
                        chan,
                        src: val.reg,
                        w,
                    }
                } else {
                    Op::LVPushI {
                        ty,
                        chan,
                        src: val.reg,
                        w,
                    }
                });
                Some(())
            }
            Stmt::For { var, count, body } => {
                // The loop variable must be a declared i32 scalar: the
                // tree-walker overwrites the slot with `Value::I32`
                // regardless of declaration, which the typed register file
                // cannot reproduce for any other declaration.
                let slot = *self.vars.get(var.0 as usize)?;
                if slot.ty != Ty::Scalar(ScalarTy::I32) {
                    return None;
                }
                let cnt = self.compile_expr(count)?;
                if cnt.w.is_some() {
                    return None;
                }
                self.pending.counters.compute_scalar += self.machine.cost.alu; // loop setup
                                                                               // Copy the limit to a fresh temp: the body may reassign
                                                                               // whatever variable the count was read from.
                let limit = if cnt.is_float() {
                    let dst = self.alloc(false, 1);
                    self.emit(Op::FToI { dst, a: cnt.reg });
                    dst
                } else {
                    let dst = self.alloc(false, 1);
                    self.emit(Op::MovI { dst, src: cnt.reg });
                    dst
                };
                let counter = self.alloc(false, 1);
                self.emit(Op::ConstI { dst: counter, v: 0 });
                self.flush();
                let head = self.here();
                let head_at = self.emit_patch(Op::LoopHead {
                    counter,
                    limit,
                    exit: 0,
                });
                self.emit(Op::SetLoopVar {
                    var: slot.base,
                    counter,
                });
                self.pending.counters.loop_overhead += self.machine.cost.loop_iter;
                self.compile_block(body)?;
                self.flush();
                self.emit(Op::LoopBack { counter, head });
                let exit = self.here();
                self.patch(head_at, exit);
                Some(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.compile_expr(cond)?;
                if c.w.is_some() {
                    return None;
                }
                self.pending.counters.compute_scalar += self.machine.cost.alu; // branch
                self.flush();
                let to_else = self.emit_patch(if c.is_float() {
                    Op::JumpIfZF {
                        cond: c.reg,
                        target: 0,
                    }
                } else {
                    Op::JumpIfZI {
                        cond: c.reg,
                        target: 0,
                    }
                });
                self.compile_block(then_branch)?;
                self.flush();
                let to_end = self.emit_patch(Op::Jump { target: 0 });
                let else_label = self.here();
                self.patch(to_else, else_label);
                self.compile_block(else_branch)?;
                self.flush();
                let end = self.here();
                self.patch(to_end, end);
                Some(())
            }
            Stmt::AdvanceRead(n) => {
                self.pending.counters.addr_overhead += self.machine.cost.alu;
                let n = u32::try_from(*n).ok()?;
                self.emit(Op::AdvRead { n });
                Some(())
            }
            Stmt::AdvanceWrite(n) => {
                self.pending.counters.addr_overhead += self.machine.cost.alu;
                let n = u32::try_from(*n).ok()?;
                self.emit(Op::AdvWrite { n });
                Some(())
            }
        }
    }

    /// Lower `lv = val`. Evaluation order matches the tree-walker: the
    /// value is already compiled; any lvalue index is compiled after it.
    fn compile_store(&mut self, lv: &LValue, val: Operand) -> Option<()> {
        match lv {
            LValue::Var(v) => {
                let slot = *self.vars.get(v.0 as usize)?;
                match (slot.ty, val.w) {
                    (Ty::Scalar(t), None) if t == val.ty => {
                        // Register move: free in the cost model.
                        self.emit(if val.is_float() {
                            Op::MovF {
                                dst: slot.base,
                                src: val.reg,
                            }
                        } else {
                            Op::MovI {
                                dst: slot.base,
                                src: val.reg,
                            }
                        });
                        Some(())
                    }
                    (Ty::Vector(t, w), Some(vw)) if t == val.ty && u32::try_from(w).ok()? == vw => {
                        self.emit(if val.is_float() {
                            Op::MovNF {
                                dst: slot.base,
                                src: val.reg,
                                w: vw,
                            }
                        } else {
                            Op::MovNI {
                                dst: slot.base,
                                src: val.reg,
                                w: vw,
                            }
                        });
                        Some(())
                    }
                    _ => None,
                }
            }
            LValue::Index(v, i) => {
                let slot = *self.vars.get(v.0 as usize)?;
                let idx = self.compile_expr(i)?;
                let idx = self.as_index(idx)?;
                match (slot.ty, val.w) {
                    (Ty::Array(t, n), None) if t == val.ty => {
                        self.pending.counters.mem_scalar += self.machine.cost.store;
                        let len = u32::try_from(n).ok()?;
                        self.emit(if val.is_float() {
                            Op::StoreIdxF {
                                base: slot.base,
                                len,
                                idx,
                                src: val.reg,
                            }
                        } else {
                            Op::StoreIdxI {
                                base: slot.base,
                                len,
                                idx,
                                src: val.reg,
                            }
                        });
                        Some(())
                    }
                    (Ty::VectorArray(t, w, n), Some(vw))
                        if t == val.ty && u32::try_from(w).ok()? == vw =>
                    {
                        self.pending.counters.mem_vector += self.machine.cost.vstore;
                        let len = u32::try_from(n).ok()?;
                        self.emit(if val.is_float() {
                            Op::StoreVElemF {
                                base: slot.base,
                                len,
                                idx,
                                src: val.reg,
                                w: vw,
                            }
                        } else {
                            Op::StoreVElemI {
                                base: slot.base,
                                len,
                                idx,
                                src: val.reg,
                                w: vw,
                            }
                        });
                        Some(())
                    }
                    _ => None,
                }
            }
            LValue::VIndex(v, i, _) => {
                let slot = *self.vars.get(v.0 as usize)?;
                let idx = self.compile_expr(i)?;
                let idx = self.as_index(idx)?;
                // The tree-walker copies `vals.len()` elements, ignoring
                // the annotation; mirror that by using the value's width.
                let vw = val.w?;
                match slot.ty {
                    Ty::Array(t, n) if t == val.ty => {
                        self.pending.counters.mem_vector += self.machine.cost.vstore;
                        let len = u32::try_from(n).ok()?;
                        self.emit(if val.is_float() {
                            Op::StoreVSliceF {
                                base: slot.base,
                                len,
                                idx,
                                src: val.reg,
                                w: vw,
                            }
                        } else {
                            Op::StoreVSliceI {
                                base: slot.base,
                                len,
                                idx,
                                src: val.reg,
                                w: vw,
                            }
                        });
                        Some(())
                    }
                    _ => None,
                }
            }
            LValue::LaneVar(v, lane) => {
                let slot = *self.vars.get(v.0 as usize)?;
                match slot.ty {
                    Ty::Vector(t, w) if t == val.ty && val.w.is_none() && *lane < w => {
                        self.pending.counters.pack_unpack += self.machine.cost.lane_insert;
                        let dst = slot.base + u32::try_from(*lane).ok()?;
                        self.emit(if val.is_float() {
                            Op::MovF { dst, src: val.reg }
                        } else {
                            Op::MovI { dst, src: val.reg }
                        });
                        Some(())
                    }
                    _ => None,
                }
            }
            LValue::LaneIndex(v, i, lane) => {
                let slot = *self.vars.get(v.0 as usize)?;
                let idx = self.compile_expr(i)?;
                let idx = self.as_index(idx)?;
                match slot.ty {
                    Ty::VectorArray(t, w, n) if t == val.ty && val.w.is_none() && *lane < w => {
                        self.pending.counters.pack_unpack += self.machine.cost.lane_insert;
                        let (len, w, lane) = (
                            u32::try_from(n).ok()?,
                            u32::try_from(w).ok()?,
                            u32::try_from(*lane).ok()?,
                        );
                        self.emit(if val.is_float() {
                            Op::LaneStoreF {
                                base: slot.base,
                                len,
                                idx,
                                lane,
                                w,
                                src: val.reg,
                            }
                        } else {
                            Op::LaneStoreI {
                                base: slot.base,
                                len,
                                idx,
                                lane,
                                w,
                                src: val.reg,
                            }
                        });
                        Some(())
                    }
                    _ => None,
                }
            }
        }
    }

    fn compile_expr(&mut self, e: &Expr) -> Option<Operand> {
        match e {
            Expr::Const(v) => {
                let (ty, float) = match v {
                    Value::I32(_) => (ScalarTy::I32, false),
                    Value::I64(_) => (ScalarTy::I64, false),
                    Value::F32(_) => (ScalarTy::F32, true),
                    Value::F64(_) => (ScalarTy::F64, true),
                };
                let reg = self.alloc(float, 1);
                self.emit(match v {
                    Value::I32(x) => Op::ConstI {
                        dst: reg,
                        v: *x as i64,
                    },
                    Value::I64(x) => Op::ConstI { dst: reg, v: *x },
                    Value::F32(x) => Op::ConstF {
                        dst: reg,
                        v: *x as f64,
                    },
                    Value::F64(x) => Op::ConstF { dst: reg, v: *x },
                });
                Some(Operand { ty, w: None, reg })
            }
            Expr::ConstVec(vs) => {
                let first = *vs.first()?;
                let ty = match first {
                    Value::I32(_) => ScalarTy::I32,
                    Value::I64(_) => ScalarTy::I64,
                    Value::F32(_) => ScalarTy::F32,
                    Value::F64(_) => ScalarTy::F64,
                };
                let same = |v: &Value| {
                    matches!(
                        (ty, v),
                        (ScalarTy::I32, Value::I32(_))
                            | (ScalarTy::I64, Value::I64(_))
                            | (ScalarTy::F32, Value::F32(_))
                            | (ScalarTy::F64, Value::F64(_))
                    )
                };
                if !vs.iter().all(same) {
                    return None;
                }
                let w = u32::try_from(vs.len()).ok()?;
                self.pending.counters.mem_vector += self.machine.cost.vload;
                let reg = self.alloc(ty.is_float(), w);
                if ty.is_float() {
                    let vals = vs.iter().map(|v| v.as_f64()).collect::<Box<[f64]>>();
                    self.emit(Op::ConstVecF { dst: reg, vals });
                } else {
                    let vals = vs.iter().map(|v| v.as_i64()).collect::<Box<[i64]>>();
                    self.emit(Op::ConstVecI { dst: reg, vals });
                }
                Some(Operand {
                    ty,
                    w: Some(w),
                    reg,
                })
            }
            Expr::Var(v) => {
                let slot = *self.vars.get(v.0 as usize)?;
                match slot.ty {
                    // Reads are free (register residency); aggregates
                    // cannot be read as values (tree-walk errors).
                    Ty::Scalar(t) => Some(Operand {
                        ty: t,
                        w: None,
                        reg: slot.base,
                    }),
                    Ty::Vector(t, w) => Some(Operand {
                        ty: t,
                        w: Some(u32::try_from(w).ok()?),
                        reg: slot.base,
                    }),
                    _ => None,
                }
            }
            Expr::Index(v, i) => {
                let slot = *self.vars.get(v.0 as usize)?;
                let idx = self.compile_expr(i)?;
                let idx = self.as_index(idx)?;
                match slot.ty {
                    Ty::Array(t, n) => {
                        self.pending.counters.mem_scalar += self.machine.cost.load;
                        let len = u32::try_from(n).ok()?;
                        let dst = self.alloc(t.is_float(), 1);
                        self.emit(if t.is_float() {
                            Op::LoadIdxF {
                                dst,
                                base: slot.base,
                                len,
                                idx,
                            }
                        } else {
                            Op::LoadIdxI {
                                dst,
                                base: slot.base,
                                len,
                                idx,
                            }
                        });
                        Some(Operand {
                            ty: t,
                            w: None,
                            reg: dst,
                        })
                    }
                    Ty::VectorArray(t, w, n) => {
                        self.pending.counters.mem_vector += self.machine.cost.vload;
                        let (len, w) = (u32::try_from(n).ok()?, u32::try_from(w).ok()?);
                        let dst = self.alloc(t.is_float(), w);
                        self.emit(if t.is_float() {
                            Op::LoadVElemF {
                                dst,
                                base: slot.base,
                                len,
                                idx,
                                w,
                            }
                        } else {
                            Op::LoadVElemI {
                                dst,
                                base: slot.base,
                                len,
                                idx,
                                w,
                            }
                        });
                        Some(Operand {
                            ty: t,
                            w: Some(w),
                            reg: dst,
                        })
                    }
                    _ => None,
                }
            }
            Expr::VIndex(v, i, w) => {
                let slot = *self.vars.get(v.0 as usize)?;
                let idx = self.compile_expr(i)?;
                let idx = self.as_index(idx)?;
                let w = u32::try_from(*w).ok()?;
                match slot.ty {
                    Ty::Array(t, n) => {
                        self.pending.counters.mem_vector += self.machine.cost.vload;
                        let len = u32::try_from(n).ok()?;
                        let dst = self.alloc(t.is_float(), w);
                        self.emit(if t.is_float() {
                            Op::LoadVSliceF {
                                dst,
                                base: slot.base,
                                len,
                                idx,
                                w,
                            }
                        } else {
                            Op::LoadVSliceI {
                                dst,
                                base: slot.base,
                                len,
                                idx,
                                w,
                            }
                        });
                        Some(Operand {
                            ty: t,
                            w: Some(w),
                            reg: dst,
                        })
                    }
                    _ => None,
                }
            }
            Expr::Unary(op, a) => {
                let a = self.compile_expr(a)?;
                match a.w {
                    None => {
                        self.pending.counters.compute_scalar += self.machine.cost.alu;
                        self.unary(*op, a, None)
                    }
                    Some(w) => {
                        self.pending.counters.compute_vector += self.machine.cost.valu;
                        self.unary(*op, a, Some(w))
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                let a = self.compile_expr(a)?;
                let b = self.compile_expr(b)?;
                if a.ty != b.ty || a.w != b.w {
                    // Mixed widths/classes: tree-walk errors or panics.
                    return None;
                }
                if a.is_float() && op.is_integer_only() {
                    return None;
                }
                match a.w {
                    None => {
                        self.pending.counters.compute_scalar += self.scalar_binop_cost(*op);
                        let float = a.is_float();
                        if float && op.is_comparison() {
                            let dst = self.alloc(false, 1);
                            self.emit(Op::CmpF {
                                op: *op,
                                dst,
                                a: a.reg,
                                b: b.reg,
                            });
                            Some(Operand {
                                ty: ScalarTy::I32,
                                w: None,
                                reg: dst,
                            })
                        } else if float {
                            let dst = self.alloc(true, 1);
                            self.emit(Op::BinF {
                                op: *op,
                                ty: a.ty,
                                dst,
                                a: a.reg,
                                b: b.reg,
                            });
                            Some(Operand {
                                ty: a.ty,
                                w: None,
                                reg: dst,
                            })
                        } else {
                            let dst = self.alloc(false, 1);
                            self.emit(Op::BinI {
                                op: *op,
                                ty: a.ty,
                                dst,
                                a: a.reg,
                                b: b.reg,
                            });
                            let ty = if op.is_comparison() {
                                ScalarTy::I32
                            } else {
                                a.ty
                            };
                            Some(Operand {
                                ty,
                                w: None,
                                reg: dst,
                            })
                        }
                    }
                    Some(w) => {
                        self.pending.counters.compute_vector += self.vector_binop_cost(*op);
                        let float = a.is_float();
                        if float && op.is_comparison() {
                            let dst = self.alloc(false, w);
                            self.emit(Op::VCmpF {
                                op: *op,
                                dst,
                                a: a.reg,
                                b: b.reg,
                                w,
                            });
                            Some(Operand {
                                ty: ScalarTy::I32,
                                w: Some(w),
                                reg: dst,
                            })
                        } else if float {
                            let dst = self.alloc(true, w);
                            self.emit(Op::VBinF {
                                op: *op,
                                ty: a.ty,
                                dst,
                                a: a.reg,
                                b: b.reg,
                                w,
                            });
                            Some(Operand {
                                ty: a.ty,
                                w: Some(w),
                                reg: dst,
                            })
                        } else {
                            let dst = self.alloc(false, w);
                            self.emit(Op::VBinI {
                                op: *op,
                                ty: a.ty,
                                dst,
                                a: a.reg,
                                b: b.reg,
                                w,
                            });
                            let ty = if op.is_comparison() {
                                ScalarTy::I32
                            } else {
                                a.ty
                            };
                            Some(Operand {
                                ty,
                                w: Some(w),
                                reg: dst,
                            })
                        }
                    }
                }
            }
            Expr::Call(i, args) => {
                if args.len() != i.arity() {
                    return None; // tree-walk asserts on arity
                }
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.compile_expr(a)?);
                }
                let a = ops[0];
                if ops.iter().any(|o| o.ty != a.ty || o.w != a.w) {
                    return None;
                }
                self.intrinsic(*i, &ops)
            }
            Expr::Cast(t, a) => {
                let a = self.compile_expr(a)?;
                let to = *t;
                match a.w {
                    None => {
                        self.pending.counters.compute_scalar += self.machine.cost.alu;
                        let dst = self.alloc(to.is_float(), 1);
                        self.emit(cast_op(a.ty, to, dst, a.reg, None));
                        Some(Operand {
                            ty: to,
                            w: None,
                            reg: dst,
                        })
                    }
                    Some(w) => {
                        self.pending.counters.compute_vector += self.machine.cost.valu;
                        let dst = self.alloc(to.is_float(), w);
                        self.emit(cast_op(a.ty, to, dst, a.reg, Some(w)));
                        Some(Operand {
                            ty: to,
                            w: Some(w),
                            reg: dst,
                        })
                    }
                }
            }
            Expr::Pop => {
                let ty = self.in_elem?;
                self.pending.counters.mem_scalar += self.machine.cost.load;
                self.pending.in_addr += 1;
                let dst = self.alloc(ty.is_float(), 1);
                self.emit(if ty.is_float() {
                    Op::PopF { ty, dst }
                } else {
                    Op::PopI { ty, dst }
                });
                Some(Operand {
                    ty,
                    w: None,
                    reg: dst,
                })
            }
            Expr::Peek(off) => {
                let o = self.compile_expr(off)?;
                let off = self.as_index(o)?;
                let ty = self.in_elem?;
                self.pending.counters.mem_scalar += self.machine.cost.load;
                self.pending.in_addr += 1;
                let dst = self.alloc(ty.is_float(), 1);
                self.emit(if ty.is_float() {
                    Op::PeekF { ty, dst, off }
                } else {
                    Op::PeekI { ty, dst, off }
                });
                Some(Operand {
                    ty,
                    w: None,
                    reg: dst,
                })
            }
            Expr::VPop { width } => {
                let ty = self.in_elem?;
                let w = u32::try_from(*width).ok()?;
                self.pending.counters.mem_vector += self.machine.cost.vload;
                let dst = self.alloc(ty.is_float(), w);
                self.emit(if ty.is_float() {
                    Op::VPopF { ty, dst, w }
                } else {
                    Op::VPopI { ty, dst, w }
                });
                Some(Operand {
                    ty,
                    w: Some(w),
                    reg: dst,
                })
            }
            Expr::VPeek { offset, width } => {
                let o = self.compile_expr(offset)?;
                let off = self.as_index(o)?;
                let ty = self.in_elem?;
                let w = u32::try_from(*width).ok()?;
                self.pending.counters.mem_vector += self.machine.cost.vload;
                let dst = self.alloc(ty.is_float(), w);
                self.emit(if ty.is_float() {
                    Op::VPeekF { ty, dst, off, w }
                } else {
                    Op::VPeekI { ty, dst, off, w }
                });
                Some(Operand {
                    ty,
                    w: Some(w),
                    reg: dst,
                })
            }
            Expr::LPop(c) => {
                let ty = *self.chan_elems.get(c.0 as usize)?;
                self.pending.counters.mem_scalar += self.machine.cost.load;
                let dst = self.alloc(ty.is_float(), 1);
                let chan = c.0;
                self.emit(if ty.is_float() {
                    Op::LPopF { ty, chan, dst }
                } else {
                    Op::LPopI { ty, chan, dst }
                });
                Some(Operand {
                    ty,
                    w: None,
                    reg: dst,
                })
            }
            Expr::LVPop(c, width) => {
                let ty = *self.chan_elems.get(c.0 as usize)?;
                let w = u32::try_from(*width).ok()?;
                self.pending.counters.mem_vector += self.machine.cost.vload;
                let dst = self.alloc(ty.is_float(), w);
                let chan = c.0;
                self.emit(if ty.is_float() {
                    Op::LVPopF { ty, chan, dst, w }
                } else {
                    Op::LVPopI { ty, chan, dst, w }
                });
                Some(Operand {
                    ty,
                    w: Some(w),
                    reg: dst,
                })
            }
            Expr::Lane(e, lane) => {
                let v = self.compile_expr(e)?;
                let w = v.w?;
                let lane = u32::try_from(*lane).ok()?;
                if lane >= w {
                    return None; // tree-walk panics on lane OOB
                }
                self.pending.counters.pack_unpack += self.machine.cost.lane_extract;
                // A lane is just a register offset; no move needed. The
                // source registers cannot be overwritten before use:
                // expressions have no variable side effects.
                Some(Operand {
                    ty: v.ty,
                    w: None,
                    reg: v.reg + lane,
                })
            }
            Expr::Splat(e, width) => {
                let x = self.compile_expr(e)?;
                if x.w.is_some() {
                    return None;
                }
                let w = u32::try_from(*width).ok()?;
                self.pending.counters.pack_unpack += self.machine.cost.splat;
                let dst = self.alloc(x.is_float(), w);
                self.emit(if x.is_float() {
                    Op::SplatF { dst, a: x.reg, w }
                } else {
                    Op::SplatI { dst, a: x.reg, w }
                });
                Some(Operand {
                    ty: x.ty,
                    w: Some(w),
                    reg: dst,
                })
            }
            Expr::PermuteEven(a, b) => self.permute(a, b, 0),
            Expr::PermuteOdd(a, b) => self.permute(a, b, 1),
        }
    }

    fn permute(&mut self, a: &Expr, b: &Expr, parity: u32) -> Option<Operand> {
        let a = self.compile_expr(a)?;
        let b = self.compile_expr(b)?;
        let w = a.w?;
        if b.w != Some(w) || a.ty != b.ty {
            return None;
        }
        self.pending.counters.permute += self.machine.cost.permute;
        let dst = self.alloc(a.is_float(), w);
        self.emit(if a.is_float() {
            Op::PermF {
                parity,
                dst,
                a: a.reg,
                b: b.reg,
                w,
            }
        } else {
            Op::PermI {
                parity,
                dst,
                a: a.reg,
                b: b.reg,
                w,
            }
        });
        Some(Operand {
            ty: a.ty,
            w: Some(w),
            reg: dst,
        })
    }

    fn unary(&mut self, op: UnOp, a: Operand, w: Option<u32>) -> Option<Operand> {
        let float = a.is_float();
        let (result_float, result_ty) = match op {
            UnOp::Neg => (float, a.ty),
            UnOp::Not => {
                if float {
                    return None; // tree-walk panics: Not on float
                }
                (false, a.ty)
            }
            UnOp::LogNot => (false, ScalarTy::I32),
        };
        let dst = self.alloc(result_float, w.unwrap_or(1));
        let op = match (op, float, w) {
            (UnOp::Neg, false, None) => Op::NegI {
                ty: a.ty,
                dst,
                a: a.reg,
            },
            (UnOp::Neg, true, None) => Op::NegF { dst, a: a.reg },
            (UnOp::Not, false, None) => Op::NotI {
                ty: a.ty,
                dst,
                a: a.reg,
            },
            (UnOp::LogNot, false, None) => Op::LogNotI { dst, a: a.reg },
            (UnOp::LogNot, true, None) => Op::LogNotF { dst, a: a.reg },
            (UnOp::Neg, false, Some(w)) => Op::VNegI {
                ty: a.ty,
                dst,
                a: a.reg,
                w,
            },
            (UnOp::Neg, true, Some(w)) => Op::VNegF { dst, a: a.reg, w },
            (UnOp::Not, false, Some(w)) => Op::VNotI {
                ty: a.ty,
                dst,
                a: a.reg,
                w,
            },
            (UnOp::LogNot, false, Some(w)) => Op::VLogNotI { dst, a: a.reg, w },
            (UnOp::LogNot, true, Some(w)) => Op::VLogNotF { dst, a: a.reg, w },
            (UnOp::Not, true, _) => unreachable!("rejected above"),
        };
        self.emit(op);
        Some(Operand {
            ty: result_ty,
            w,
            reg: dst,
        })
    }

    fn intrinsic(&mut self, i: Intrinsic, ops: &[Operand]) -> Option<Operand> {
        let a = ops[0];
        let float = a.is_float();
        // Which (intrinsic, class) pairs the tree-walker evaluates without
        // panicking: Abs/Min/Max on any class, everything else float-only.
        let int_ok = matches!(i, Intrinsic::Abs | Intrinsic::Min | Intrinsic::Max);
        if !float && !int_ok {
            return None;
        }
        match a.w {
            None => {
                self.pending.counters.compute_scalar += self.machine.scalar_intrinsic_cost(i);
                let dst = self.alloc(float, 1);
                let op = match (ops.len(), float) {
                    (1, false) => Op::Call1I {
                        i,
                        ty: a.ty,
                        dst,
                        a: a.reg,
                    },
                    (1, true) => Op::Call1F {
                        i,
                        ty: a.ty,
                        dst,
                        a: a.reg,
                    },
                    (2, false) => Op::Call2I {
                        i,
                        dst,
                        a: a.reg,
                        b: ops[1].reg,
                    },
                    (2, true) => Op::Call2F {
                        i,
                        ty: a.ty,
                        dst,
                        a: a.reg,
                        b: ops[1].reg,
                    },
                    _ => return None,
                };
                self.emit(op);
                Some(Operand {
                    ty: a.ty,
                    w: None,
                    reg: dst,
                })
            }
            Some(w) => {
                self.pending.counters.compute_vector += self.machine.vector_intrinsic_cost(i);
                let dst = self.alloc(float, w);
                let op = match (ops.len(), float) {
                    (1, false) => Op::VCall1I {
                        i,
                        ty: a.ty,
                        dst,
                        a: a.reg,
                        w,
                    },
                    (1, true) => Op::VCall1F {
                        i,
                        ty: a.ty,
                        dst,
                        a: a.reg,
                        w,
                    },
                    (2, false) => Op::VCall2I {
                        i,
                        dst,
                        a: a.reg,
                        b: ops[1].reg,
                        w,
                    },
                    (2, true) => Op::VCall2F {
                        i,
                        ty: a.ty,
                        dst,
                        a: a.reg,
                        b: ops[1].reg,
                        w,
                    },
                    _ => return None,
                };
                self.emit(op);
                Some(Operand {
                    ty: a.ty,
                    w: Some(w),
                    reg: dst,
                })
            }
        }
    }
}

fn cast_op(from: ScalarTy, to: ScalarTy, dst: u32, a: u32, w: Option<u32>) -> Op {
    match (from.is_float(), to.is_float(), w) {
        (false, false, None) => Op::CastII { from, to, dst, a },
        (false, true, None) => Op::CastIF { to, dst, a },
        (true, false, None) => Op::CastFI { to, dst, a },
        (true, true, None) => Op::CastFF { to, dst, a },
        (false, false, Some(w)) => Op::VCastII {
            from,
            to,
            dst,
            a,
            w,
        },
        (false, true, Some(w)) => Op::VCastIF { to, dst, a, w },
        (true, false, Some(w)) => Op::VCastFI { to, dst, a, w },
        (true, true, Some(w)) => Op::VCastFF { to, dst, a, w },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::edsl::*;

    #[test]
    fn simple_filter_compiles() {
        let mut fb = FilterBuilder::new("dbl", 1, 1, 1, ScalarTy::I32);
        fb.work(|b| {
            b.push(pop() * 2i32);
        });
        let f = fb.build();
        let plan = compile_filter(
            &f,
            Some(ScalarTy::I32),
            Some(ScalarTy::I32),
            &Machine::core_i7(),
        )
        .expect("should compile");
        assert!(plan.work.len() >= 3); // pop, const, mul, push, charge
        assert_eq!(plan.charges.len(), 1);
        // load + store, mul, one in-access, one out-access.
        let c = plan.charges[0];
        assert_eq!(c.counters.mem_scalar, 4);
        assert_eq!(c.counters.compute_scalar, 3);
        assert_eq!(c.in_addr, 1);
        assert_eq!(c.out_addr, 1);
    }

    #[test]
    fn unknown_tape_elem_forces_fallback() {
        let mut fb = FilterBuilder::new("dbl", 1, 1, 1, ScalarTy::I32);
        fb.work(|b| {
            b.push(pop() * 2i32);
        });
        let f = fb.build();
        assert!(compile_filter(&f, None, Some(ScalarTy::I32), &Machine::core_i7()).is_none());
        assert!(compile_filter(&f, Some(ScalarTy::I32), None, &Machine::core_i7()).is_none());
    }

    #[test]
    fn ill_typed_store_forces_fallback() {
        let mut fb = FilterBuilder::new("bad", 0, 0, 1, ScalarTy::I32);
        let x = fb.local("x", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.set(x, c(1.5f32)); // f32 into an i32 slot: tree-walk tolerates
            b.push(v(x));
        });
        let f = fb.build();
        assert!(compile_filter(&f, None, Some(ScalarTy::I32), &Machine::core_i7()).is_none());
    }

    #[test]
    fn loop_compiles_with_setup_and_per_iter_charges() {
        let mut fb = FilterBuilder::new("looper", 0, 0, 4, ScalarTy::I32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.for_(i, 4i32, |b| {
                b.push(v(i));
            });
        });
        let f = fb.build();
        let plan =
            compile_filter(&f, None, Some(ScalarTy::I32), &Machine::core_i7()).expect("compiles");
        assert!(plan.work.iter().any(|op| matches!(op, Op::LoopHead { .. })));
        // One pre-loop charge (const + setup alu), one per-iteration charge.
        assert_eq!(plan.charges.len(), 2);
        assert_eq!(plan.charges[1].counters.loop_overhead, 1);
        assert_eq!(plan.charges[1].counters.mem_scalar, 2); // store
    }

    #[test]
    fn float_loop_var_forces_fallback() {
        let mut fb = FilterBuilder::new("fl", 0, 0, 1, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::F32));
        fb.work(|b| {
            b.for_(i, 4i32, |b| {
                b.push(v(i));
            });
        });
        let f = fb.build();
        assert!(compile_filter(&f, None, Some(ScalarTy::F32), &Machine::core_i7()).is_none());
    }
}
