//! AVX2 execution of fused kernels. The only `unsafe` in the kernel
//! layer lives here, and every function is gated on
//! `#[target_feature(enable = "avx2")]` — callers must have verified
//! `is_x86_feature_detected!("avx2")` (done once in
//! [`super::select_backend`]).
//!
//! Bit-exactness contract: each specialized path must produce exactly
//! what the portable loop produces.
//!
//! - **f32 domain**: registers hold `f32` values exactly widened to
//!   `f64`. `vcvtpd2ps` rounds to nearest under the default MXCSR (which
//!   Rust never changes), which is precisely `x as f32`; the operand is
//!   an exactly-representable `f32`, so the narrow is exact anyway. The
//!   4-lane `ps` op then matches scalar `f32` IEEE arithmetic, and
//!   `vcvtps2pd` is exact. Net effect: `((x as f32) op (y as f32)) as
//!   f64`, lane-wise.
//! - **i32 domain**: registers hold `i32` values sign-extended to
//!   `i64`. We gather the low dwords of 4 lanes (they carry the full
//!   `i32` value), do wrapping 32-bit ops (`vpaddd`/`vpsubd`/`vpmulld`),
//!   and re-sign-extend with `vpmovsxdq` — exactly
//!   `((x as i32).wrapping_op(y as i32)) as i64`.
//! - **i64 / f64 / bitwise**: the 256-bit op *is* the scalar op,
//!   lane-wise.
//!
//! `MulI64` has no AVX2 instruction and every non-arithmetic variant is
//! rare in hot loops, so those fall through to
//! [`super::exec_kop_portable`] — still inside the `target_feature`
//! region, so the compiler may vectorize them too.

use super::KOp;
use crate::bytecode::Regs;
use core::arch::x86_64::*;

/// `f32`-domain binop: narrow 4 `f64` lanes, op in `ps`, widen back.
macro_rules! f32_binop {
    ($name:ident, $intrin:ident, $op:tt) => {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn $name(d: *mut f64, x: *const f64, y: *const f64, n: usize) {
            let mut k = 0;
            while k + 4 <= n {
                let a = _mm256_cvtpd_ps(_mm256_loadu_pd(x.add(k)));
                let b = _mm256_cvtpd_ps(_mm256_loadu_pd(y.add(k)));
                let r = _mm256_cvtps_pd($intrin(a, b));
                _mm256_storeu_pd(d.add(k), r);
                k += 4;
            }
            while k < n {
                *d.add(k) = ((*x.add(k) as f32) $op (*y.add(k) as f32)) as f64;
                k += 1;
            }
        }
    };
}

f32_binop!(add_f32, _mm_add_ps, +);
f32_binop!(sub_f32, _mm_sub_ps, -);
f32_binop!(mul_f32, _mm_mul_ps, *);
f32_binop!(div_f32, _mm_div_ps, /);

/// `f64`-domain binop: the 256-bit op is the scalar op, lane-wise.
macro_rules! f64_binop {
    ($name:ident, $intrin:ident, $op:tt) => {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn $name(d: *mut f64, x: *const f64, y: *const f64, n: usize) {
            let mut k = 0;
            while k + 4 <= n {
                let a = _mm256_loadu_pd(x.add(k));
                let b = _mm256_loadu_pd(y.add(k));
                _mm256_storeu_pd(d.add(k), $intrin(a, b));
                k += 4;
            }
            while k < n {
                *d.add(k) = *x.add(k) $op *y.add(k);
                k += 1;
            }
        }
    };
}

f64_binop!(add_f64, _mm256_add_pd, +);
f64_binop!(sub_f64, _mm256_sub_pd, -);
f64_binop!(mul_f64, _mm256_mul_pd, *);
f64_binop!(div_f64, _mm256_div_pd, /);

/// `i32`-domain binop: gather low dwords of 4 `i64` lanes, wrapping
/// 32-bit op, sign-extend back to `i64`.
macro_rules! i32_binop {
    ($name:ident, $intrin:ident, $scalar:ident) => {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn $name(d: *mut i64, x: *const i64, y: *const i64, n: usize) {
            // Select dwords 0,2,4,6 (low halves of the four i64 lanes).
            let even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
            let mut k = 0;
            while k + 4 <= n {
                let a = _mm256_loadu_si256(x.add(k) as *const __m256i);
                let b = _mm256_loadu_si256(y.add(k) as *const __m256i);
                let a32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(a, even));
                let b32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(b, even));
                let r = _mm256_cvtepi32_epi64($intrin(a32, b32));
                _mm256_storeu_si256(d.add(k) as *mut __m256i, r);
                k += 4;
            }
            while k < n {
                *d.add(k) = ((*x.add(k) as i32).$scalar(*y.add(k) as i32)) as i64;
                k += 1;
            }
        }
    };
}

i32_binop!(add_i32, _mm_add_epi32, wrapping_add);
i32_binop!(sub_i32, _mm_sub_epi32, wrapping_sub);
i32_binop!(mul_i32, _mm_mullo_epi32, wrapping_mul);

/// `i64` / bitwise binop on full 256-bit lanes.
macro_rules! i64_binop {
    ($name:ident, $intrin:ident, $scalar:ident) => {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn $name(d: *mut i64, x: *const i64, y: *const i64, n: usize) {
            let mut k = 0;
            while k + 4 <= n {
                let a = _mm256_loadu_si256(x.add(k) as *const __m256i);
                let b = _mm256_loadu_si256(y.add(k) as *const __m256i);
                _mm256_storeu_si256(d.add(k) as *mut __m256i, $intrin(a, b));
                k += 4;
            }
            while k < n {
                *d.add(k) = (*x.add(k)).$scalar(*y.add(k));
                k += 1;
            }
        }
    };
}

i64_binop!(add_i64, _mm256_add_epi64, wrapping_add);
i64_binop!(sub_i64, _mm256_sub_epi64, wrapping_sub);

macro_rules! bits_binop {
    ($name:ident, $intrin:ident, $op:tt) => {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn $name(d: *mut i64, x: *const i64, y: *const i64, n: usize) {
            let mut k = 0;
            while k + 4 <= n {
                let a = _mm256_loadu_si256(x.add(k) as *const __m256i);
                let b = _mm256_loadu_si256(y.add(k) as *const __m256i);
                _mm256_storeu_si256(d.add(k) as *mut __m256i, $intrin(a, b));
                k += 4;
            }
            while k < n {
                *d.add(k) = *x.add(k) $op *y.add(k);
                k += 1;
            }
        }
    };
}

bits_binop!(and_i, _mm256_and_si256, &);
bits_binop!(or_i, _mm256_or_si256, |);
bits_binop!(xor_i, _mm256_xor_si256, ^);

/// Execute a kernel's ops with AVX2 paths for the specialized arithmetic
/// variants; everything else runs the portable code.
///
/// # Safety
/// The CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn exec_avx2(kops: &[KOp], regs: &mut Regs) {
    // Fusion verified for every specialized variant that `dst` is
    // disjoint from `a`/`b` and all three ranges are in-bounds, so raw
    // pointer arithmetic into the register file cannot alias or escape.
    macro_rules! dispatch {
        ($file:ident, $f:ident, $dst:expr, $a:expr, $b:expr, $w:expr) => {{
            let base = regs.$file.as_mut_ptr();
            $f(
                base.add($dst as usize),
                base.add($a as usize) as *const _,
                base.add($b as usize) as *const _,
                $w as usize,
            );
        }};
    }
    for op in kops {
        match *op {
            KOp::AddF32 { dst, a, b, w } => dispatch!(f, add_f32, dst, a, b, w),
            KOp::SubF32 { dst, a, b, w } => dispatch!(f, sub_f32, dst, a, b, w),
            KOp::MulF32 { dst, a, b, w } => dispatch!(f, mul_f32, dst, a, b, w),
            KOp::DivF32 { dst, a, b, w } => dispatch!(f, div_f32, dst, a, b, w),
            KOp::AddF64 { dst, a, b, w } => dispatch!(f, add_f64, dst, a, b, w),
            KOp::SubF64 { dst, a, b, w } => dispatch!(f, sub_f64, dst, a, b, w),
            KOp::MulF64 { dst, a, b, w } => dispatch!(f, mul_f64, dst, a, b, w),
            KOp::DivF64 { dst, a, b, w } => dispatch!(f, div_f64, dst, a, b, w),
            KOp::AddI32 { dst, a, b, w } => dispatch!(i, add_i32, dst, a, b, w),
            KOp::SubI32 { dst, a, b, w } => dispatch!(i, sub_i32, dst, a, b, w),
            KOp::MulI32 { dst, a, b, w } => dispatch!(i, mul_i32, dst, a, b, w),
            KOp::AddI64 { dst, a, b, w } => dispatch!(i, add_i64, dst, a, b, w),
            KOp::SubI64 { dst, a, b, w } => dispatch!(i, sub_i64, dst, a, b, w),
            KOp::AndI { dst, a, b, w } => dispatch!(i, and_i, dst, a, b, w),
            KOp::OrI { dst, a, b, w } => dispatch!(i, or_i, dst, a, b, w),
            KOp::XorI { dst, a, b, w } => dispatch!(i, xor_i, dst, a, b, w),
            // Bookkeeping ops: same semantics as the portable arms, with
            // the bounds checks the fusion pass already performed
            // removed. `copy` (not `copy_nonoverlapping`) matches
            // `copy_within`'s overlap tolerance.
            KOp::MovNF { dst, src, w } => {
                core::ptr::copy(
                    regs.f.as_ptr().add(src as usize),
                    regs.f.as_mut_ptr().add(dst as usize),
                    w as usize,
                );
            }
            KOp::MovNI { dst, src, w } => {
                core::ptr::copy(
                    regs.i.as_ptr().add(src as usize),
                    regs.i.as_mut_ptr().add(dst as usize),
                    w as usize,
                );
            }
            KOp::ConstVecF { dst, ref vals } => {
                core::ptr::copy_nonoverlapping(
                    vals.as_ptr(),
                    regs.f.as_mut_ptr().add(dst as usize),
                    vals.len(),
                );
            }
            KOp::ConstVecI { dst, ref vals } => {
                core::ptr::copy_nonoverlapping(
                    vals.as_ptr(),
                    regs.i.as_mut_ptr().add(dst as usize),
                    vals.len(),
                );
            }
            KOp::SplatF { dst, a, w } => {
                let v = *regs.f.as_ptr().add(a as usize);
                let d = regs.f.as_mut_ptr().add(dst as usize);
                for k in 0..w as usize {
                    *d.add(k) = v;
                }
            }
            // MulI64 has no AVX2 instruction; everything generic runs
            // the exact portable loops.
            ref other => super::exec_kop_portable(other, regs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{exec_kop_portable, KOp};
    use crate::bytecode::Regs;

    #[test]
    fn avx2_paths_match_portable_lane_for_lane() {
        if !std::is_x86_feature_detected!("avx2") {
            return;
        }
        let w = 7u32; // odd width exercises the scalar remainder
        let mk = || {
            let mut r = Regs::new(32, 32);
            for (k, x) in r.i.iter_mut().enumerate() {
                *x = ((k as i64 * 2654435761) % 97) - 48;
            }
            for (k, x) in r.f.iter_mut().enumerate() {
                *x = (((k as f64) * 0.37 - 3.0) as f32) as f64;
            }
            r
        };
        let ops = [
            KOp::AddF32 {
                dst: 16,
                a: 0,
                b: 8,
                w,
            },
            KOp::MulF32 {
                dst: 24,
                a: 16,
                b: 0,
                w,
            },
            KOp::DivF32 {
                dst: 16,
                a: 24,
                b: 8,
                w,
            },
            KOp::AddF64 {
                dst: 24,
                a: 0,
                b: 16,
                w,
            },
            KOp::MulI32 {
                dst: 16,
                a: 0,
                b: 8,
                w,
            },
            KOp::SubI32 {
                dst: 24,
                a: 16,
                b: 0,
                w,
            },
            KOp::AddI64 {
                dst: 16,
                a: 24,
                b: 8,
                w,
            },
            KOp::XorI {
                dst: 24,
                a: 16,
                b: 0,
                w,
            },
            KOp::MulI64 {
                dst: 16,
                a: 24,
                b: 8,
                w,
            },
        ];
        let (mut ra, mut rp) = (mk(), mk());
        unsafe { super::exec_avx2(&ops, &mut ra) };
        for op in &ops {
            exec_kop_portable(op, &mut rp);
        }
        assert_eq!(ra.i, rp.i);
        let bits = |r: &Regs| r.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ra), bits(&rp));
    }
}
