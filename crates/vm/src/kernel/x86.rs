//! The x86-64 rows of the kernel backend matrix: SSE2 (128-bit) and
//! AVX2 (256-bit) execution of fused kernels. The only `unsafe` in the
//! kernel layer lives here.
//!
//! Both tiers are generated from one shared exec body
//! ([`tier_exec_body!`]) parameterized over the tier's vector types and
//! `LANES` (f64/i64 lanes per chunk). Each tier module supplies the same
//! wrapper row — loads, stores, lane ops, the stride-2 shuffle, the
//! compare-mask builder — and the macro derives the slice walkers,
//! register-resident chains, permutations, casts and intrinsic paths
//! from it. Every function is gated on its tier's `#[target_feature]`;
//! callers go through [`super::exec`], which only selects a tier that
//! [`super::KernelTier::available`] approved.
//!
//! Bit-exactness contract: each specialized path must produce exactly
//! what the portable loop produces.
//!
//! - **f32 domain**: registers hold `f32` values exactly widened to
//!   `f64`. `cvtpd2ps` rounds to nearest under the default MXCSR (which
//!   Rust never changes), which is precisely `x as f32`; the `ps` op
//!   then matches scalar `f32` IEEE arithmetic, and `cvtps2pd` is
//!   exact. Net effect: `((x as f32) op (y as f32)) as f64`, lane-wise.
//! - **i32 domain**: registers hold `i32` values sign-extended to
//!   `i64`. We gather the low dwords (they carry the full `i32` value),
//!   do wrapping 32-bit ops, and re-sign-extend — exactly
//!   `((x as i32).wrapping_op(y as i32)) as i64`. AVX2 sign-extends
//!   with `vpmovsxdq`; SSE2 with an arithmetic-shift/unpack pair.
//! - **i64 / f64 / bitwise**: the full-width op *is* the scalar op,
//!   lane-wise.
//! - **compares**: ordered-quiet predicates (`NEQ` unordered-quiet)
//!   match Rust's `PartialOrd` on `f64` exactly, NaN included; the
//!   all-ones mask is masked down to the portable `0/1`.
//! - **permutations**: the stride-2 gather (`unpacklo` + cross-lane
//!   permute on AVX2) is a pure data movement — bit-exact by nature —
//!   taken only for even widths with a destination disjoint from both
//!   sources, where it reads and writes exactly what the portable
//!   element loop does.
//! - **intrinsics**: `sqrtpd` *is* `f64::sqrt`; `abs` is a sign-bit
//!   clear just like Rust's `abs` (the f32 flavor narrows, clears in
//!   `ps`, widens — the portable composition verbatim); AVX2 `floor`
//!   uses `roundpd`. `f32`-typed results take the same
//!   narrow-after-f64-op rounding as the scalar helper.
//!
//! - **i64 multiply**: no tier has a qword `mullo`, so both decompose
//!   into `pmuludq` 32x32 partial products — `lo*lo + ((lo*hi + hi*lo)
//!   << 32)` is `i64::wrapping_mul` bit-exactly (the dropped `hi*hi`
//!   term is `2^64`-scaled; the shift truncates the cross terms the
//!   same way the scalar wrap does).
//! - **integer compares**: sign extension preserves order, so the
//!   full-width predicate (`vpcmpeqq`/`vpcmpgtq` + complements on AVX2)
//!   is exact for both widths; SSE2 has only dword compares, so it
//!   takes `i32` compares via the gathered-low-dword path and leaves
//!   `i64` compares to the portable loop.
//!
//! Ops a tier has no exact instruction for — `MulI32` on SSE2 (`pmulld`
//! is SSE4.1), `i64` compares on SSE2, `floor` on SSE2 (`roundpd` is
//! SSE4.1), saturating `CastFI`, `CastIF`, `Min`/`Max` (±0.0/NaN
//! tie-breaks differ), transcendentals — fall through to
//! [`super::exec_kop_portable`], still inside the `target_feature`
//! region, so the compiler may vectorize them too.

use core::arch::x86_64::*;
use macross_streamir::expr::BinOp;

/// Raw destination/source pointers into one register file. Fusion
/// verified for every specialized variant that `dst` is disjoint from
/// `a`/`b` and all ranges are in-bounds, so the pointers cannot alias
/// the destination or escape the file.
#[inline]
unsafe fn ptrs3<T>(file: &mut [T], dst: u32, a: u32, b: u32) -> (*mut T, *const T, *const T) {
    let p = file.as_mut_ptr();
    (
        p.add(dst as usize),
        p.add(a as usize) as *const T,
        p.add(b as usize) as *const T,
    )
}

/// Like [`ptrs3`] for unary ops.
#[inline]
unsafe fn ptrs2<T>(file: &mut [T], dst: u32, a: u32) -> (*mut T, *const T) {
    let p = file.as_mut_ptr();
    (p.add(dst as usize), p.add(a as usize) as *const T)
}

/// `|x|` on 4 packed `f32`: clear the sign bits.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn abs_ps128(v: __m128) -> __m128 {
    _mm_and_ps(v, _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff)))
}

/// Signed dword compare mask from the SSE2 baseline (`pcmpeqd` /
/// `pcmpgtd`); the remaining predicates are complements. Shared by both
/// tiers — the operands are gathered low dwords, always 128-bit.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn cmp_mask_epi32(op: BinOp, a: __m128i, b: __m128i) -> __m128i {
    let ones = _mm_set1_epi32(-1);
    match op {
        BinOp::Eq => _mm_cmpeq_epi32(a, b),
        BinOp::Ne => _mm_xor_si128(_mm_cmpeq_epi32(a, b), ones),
        BinOp::Lt => _mm_cmpgt_epi32(b, a),
        BinOp::Gt => _mm_cmpgt_epi32(a, b),
        BinOp::Le => _mm_xor_si128(_mm_cmpgt_epi32(a, b), ones),
        BinOp::Ge => _mm_xor_si128(_mm_cmpgt_epi32(b, a), ones),
        _ => unreachable!("not a comparison: {op:?}"),
    }
}

/// The shared tier body: everything below is identical for SSE2 and
/// AVX2 up to the wrapper row the enclosing module defines (`load_pd`,
/// `stride2_pd`, `cmp_mask`, ..., plus `LANES` and the capability
/// consts). Names resolve in the enclosing module, so each expansion
/// binds its own tier's wrappers — this is how one exec body serves
/// every width.
macro_rules! tier_exec_body {
    ($feat:literal) => {
        use super::super::{
            chain_apply_f32, chain_apply_f64, chain_apply_i32, chain_apply_i64, chain_parts,
            disjoint, exec_kop_portable, ChainClass, ChainDom, ChainKind, ChainStage, KOp,
        };
        use crate::bytecode::{call1_f, cmp_f, cmp_i, Regs};
        use macross_streamir::expr::{BinOp, Intrinsic};
        use macross_streamir::types::ScalarTy;

        /// `f32`-domain binop walker: narrow `LANES` `f64` lanes, op in
        /// `ps`, widen back; scalar `f32` remainder.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn bin_f32(kind: ChainKind, d: *mut f64, x: *const f64, y: *const f64, n: usize) {
            let mut k = 0;
            while k + LANES <= n {
                let a = cvt_pd_ps(load_pd(x.add(k)));
                let b = cvt_pd_ps(load_pd(y.add(k)));
                let r = match kind {
                    ChainKind::Add => _mm_add_ps(a, b),
                    ChainKind::Sub => _mm_sub_ps(a, b),
                    ChainKind::Mul => _mm_mul_ps(a, b),
                    ChainKind::Div => _mm_div_ps(a, b),
                    _ => unreachable!("f32 binop kind"),
                };
                store_pd(d.add(k), cvt_ps_pd(r));
                k += LANES;
            }
            while k < n {
                *d.add(k) = chain_apply_f32(kind, *x.add(k) as f32, *y.add(k) as f32) as f64;
                k += 1;
            }
        }

        /// `f64`-domain binop walker: the wide op is the scalar op.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn bin_f64(kind: ChainKind, d: *mut f64, x: *const f64, y: *const f64, n: usize) {
            let mut k = 0;
            while k + LANES <= n {
                let a = load_pd(x.add(k));
                let b = load_pd(y.add(k));
                let r = match kind {
                    ChainKind::Add => add_pd(a, b),
                    ChainKind::Sub => sub_pd(a, b),
                    ChainKind::Mul => mul_pd(a, b),
                    ChainKind::Div => div_pd(a, b),
                    _ => unreachable!("f64 binop kind"),
                };
                store_pd(d.add(k), r);
                k += LANES;
            }
            while k < n {
                *d.add(k) = chain_apply_f64(kind, *x.add(k), *y.add(k));
                k += 1;
            }
        }

        /// `i32`-domain binop walker: gather low dwords, wrapping 32-bit
        /// op, sign-extend back. `Mul` only when the tier has `pmulld`
        /// (the dispatcher checks `HAS_MULLO_I32`).
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn bin_i32(kind: ChainKind, d: *mut i64, x: *const i64, y: *const i64, n: usize) {
            let mut k = 0;
            while k + LANES <= n {
                let a = gather_lo32(load_si(x.add(k)));
                let b = gather_lo32(load_si(y.add(k)));
                let r = match kind {
                    ChainKind::Add => _mm_add_epi32(a, b),
                    ChainKind::Sub => _mm_sub_epi32(a, b),
                    ChainKind::Mul => mul32(a, b),
                    _ => unreachable!("i32 binop kind"),
                };
                store_si(d.add(k), sext_lo32(r));
                k += LANES;
            }
            while k < n {
                *d.add(k) = chain_apply_i32(kind, *x.add(k) as i32, *y.add(k) as i32) as i64;
                k += 1;
            }
        }

        /// `i64`/bitwise binop walker on full-width lanes. `Mul` goes
        /// through the tier's `pmuludq` partial-product decomposition.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn bin_i64(kind: ChainKind, d: *mut i64, x: *const i64, y: *const i64, n: usize) {
            let mut k = 0;
            while k + LANES <= n {
                let a = load_si(x.add(k));
                let b = load_si(y.add(k));
                let r = match kind {
                    ChainKind::Add => add_i64(a, b),
                    ChainKind::Sub => sub_i64(a, b),
                    ChainKind::Mul => mul_i64(a, b),
                    ChainKind::And => and_si(a, b),
                    ChainKind::Or => or_si(a, b),
                    ChainKind::Xor => xor_si(a, b),
                    _ => unreachable!("i64 binop kind"),
                };
                store_si(d.add(k), r);
                k += LANES;
            }
            while k < n {
                *d.add(k) = chain_apply_i64(kind, *x.add(k), *y.add(k));
                k += 1;
            }
        }

        /// Integer-compare walker producing the portable 0/1 lanes. The
        /// registers hold sign-extended values and sign extension
        /// preserves order, so the full-width predicate is exact for
        /// both integer widths; a tier without 64-bit compare masks
        /// (`HAS_CMP_I64`) only ever sees `i32` operands (the dispatcher
        /// guards) and compares their gathered low dwords instead.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn cmp_i_slice(op: BinOp, d: *mut i64, x: *const i64, y: *const i64, n: usize) {
            let mut k = 0;
            while k + LANES <= n {
                let a = load_si(x.add(k));
                let b = load_si(y.add(k));
                let m = if HAS_CMP_I64 {
                    cmp_mask_i64(op, a, b)
                } else {
                    sext_lo32(super::cmp_mask_epi32(op, gather_lo32(a), gather_lo32(b)))
                };
                store_si(d.add(k), and_si(m, ones_epi64()));
                k += LANES;
            }
            while k < n {
                *d.add(k) = cmp_i(op, *x.add(k), *y.add(k));
                k += 1;
            }
        }

        /// Register-resident `f32` chain: one narrow at the accumulator
        /// load, every stage in `ps` registers, one widen per surviving
        /// store. Per lane this is exactly the portable stage order.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn chain_f32(a: u32, w: u32, stages: &[ChainStage], regs: &mut Regs) {
            let base = regs.f.as_mut_ptr();
            let (a, w) = (a as usize, w as usize);
            let mut k = 0;
            while k + LANES <= w {
                let mut acc = cvt_pd_ps(load_pd(base.add(a + k)));
                for st in stages {
                    let o = cvt_pd_ps(load_pd(base.add(st.other as usize + k)));
                    acc = match st.kind {
                        ChainKind::Add => _mm_add_ps(acc, o),
                        ChainKind::Sub => _mm_sub_ps(acc, o),
                        ChainKind::Mul => _mm_mul_ps(acc, o),
                        ChainKind::Div => _mm_div_ps(acc, o),
                        ChainKind::RSub => _mm_sub_ps(o, acc),
                        ChainKind::RDiv => _mm_div_ps(o, acc),
                        _ => unreachable!("f32 chain kind"),
                    };
                    if let Some(d) = st.store {
                        store_pd(base.add(d as usize + k), cvt_ps_pd(acc));
                    }
                }
                k += LANES;
            }
            while k < w {
                let mut acc = *base.add(a + k) as f32;
                for st in stages {
                    acc = chain_apply_f32(st.kind, acc, *base.add(st.other as usize + k) as f32);
                    if let Some(d) = st.store {
                        *base.add(d as usize + k) = acc as f64;
                    }
                }
                k += 1;
            }
        }

        /// Register-resident `f64` chain.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn chain_f64(a: u32, w: u32, stages: &[ChainStage], regs: &mut Regs) {
            let base = regs.f.as_mut_ptr();
            let (a, w) = (a as usize, w as usize);
            let mut k = 0;
            while k + LANES <= w {
                let mut acc = load_pd(base.add(a + k));
                for st in stages {
                    let o = load_pd(base.add(st.other as usize + k));
                    acc = match st.kind {
                        ChainKind::Add => add_pd(acc, o),
                        ChainKind::Sub => sub_pd(acc, o),
                        ChainKind::Mul => mul_pd(acc, o),
                        ChainKind::Div => div_pd(acc, o),
                        ChainKind::RSub => sub_pd(o, acc),
                        ChainKind::RDiv => div_pd(o, acc),
                        _ => unreachable!("f64 chain kind"),
                    };
                    if let Some(d) = st.store {
                        store_pd(base.add(d as usize + k), acc);
                    }
                }
                k += LANES;
            }
            while k < w {
                let mut acc = *base.add(a + k);
                for st in stages {
                    acc = chain_apply_f64(st.kind, acc, *base.add(st.other as usize + k));
                    if let Some(d) = st.store {
                        *base.add(d as usize + k) = acc;
                    }
                }
                k += 1;
            }
        }

        /// Register-resident `i32` chain: the accumulator stays as
        /// packed dwords; each surviving store sign-extends. The
        /// dispatcher routes `Mul` stages here only when the tier has
        /// `pmulld`.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn chain_i32(a: u32, w: u32, stages: &[ChainStage], regs: &mut Regs) {
            let base = regs.i.as_mut_ptr();
            let (a, w) = (a as usize, w as usize);
            let mut k = 0;
            while k + LANES <= w {
                let mut acc = gather_lo32(load_si(base.add(a + k)));
                for st in stages {
                    let o = gather_lo32(load_si(base.add(st.other as usize + k)));
                    acc = match st.kind {
                        ChainKind::Add => _mm_add_epi32(acc, o),
                        ChainKind::Sub => _mm_sub_epi32(acc, o),
                        ChainKind::Mul => mul32(acc, o),
                        ChainKind::RSub => _mm_sub_epi32(o, acc),
                        _ => unreachable!("i32 chain kind"),
                    };
                    if let Some(d) = st.store {
                        store_si(base.add(d as usize + k), sext_lo32(acc));
                    }
                }
                k += LANES;
            }
            while k < w {
                let mut acc = *base.add(a + k) as i32;
                for st in stages {
                    acc = chain_apply_i32(st.kind, acc, *base.add(st.other as usize + k) as i32);
                    if let Some(d) = st.store {
                        *base.add(d as usize + k) = acc as i64;
                    }
                }
                k += 1;
            }
        }

        /// Register-resident `i64` chain (`Mul` stages through the
        /// tier's `pmuludq` decomposition).
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn chain_i64(a: u32, w: u32, stages: &[ChainStage], regs: &mut Regs) {
            let base = regs.i.as_mut_ptr();
            let (a, w) = (a as usize, w as usize);
            let mut k = 0;
            while k + LANES <= w {
                let mut acc = load_si(base.add(a + k));
                for st in stages {
                    let o = load_si(base.add(st.other as usize + k));
                    acc = match st.kind {
                        ChainKind::Add => add_i64(acc, o),
                        ChainKind::Sub => sub_i64(acc, o),
                        ChainKind::Mul => mul_i64(acc, o),
                        ChainKind::RSub => sub_i64(o, acc),
                        ChainKind::And => and_si(acc, o),
                        ChainKind::Or => or_si(acc, o),
                        ChainKind::Xor => xor_si(acc, o),
                        _ => unreachable!("i64 chain kind"),
                    };
                    if let Some(d) = st.store {
                        store_si(base.add(d as usize + k), acc);
                    }
                }
                k += LANES;
            }
            while k < w {
                let mut acc = *base.add(a + k);
                for st in stages {
                    acc = chain_apply_i64(st.kind, acc, *base.add(st.other as usize + k));
                    if let Some(d) = st.store {
                        *base.add(d as usize + k) = acc;
                    }
                }
                k += 1;
            }
        }

        /// `dst[k] = src[2k]` for `k < n` — the stride-2 half of a
        /// permutation. Reads `src[0..2n-1]`, within the caller's range.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn copy_stride2_pd(src: *const f64, dst: *mut f64, n: usize) {
            let mut k = 0;
            while k + LANES <= n {
                let v0 = load_pd(src.add(2 * k));
                let v1 = load_pd(src.add(2 * k + LANES));
                store_pd(dst.add(k), stride2_pd(v0, v1));
                k += LANES;
            }
            while k < n {
                *dst.add(k) = *src.add(2 * k);
                k += 1;
            }
        }

        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn copy_stride2_i64(src: *const i64, dst: *mut i64, n: usize) {
            let mut k = 0;
            while k + LANES <= n {
                let v0 = load_si(src.add(2 * k));
                let v1 = load_si(src.add(2 * k + LANES));
                store_si(dst.add(k), stride2_i64(v0, v1));
                k += LANES;
            }
            while k < n {
                *dst.add(k) = *src.add(2 * k);
                k += 1;
            }
        }

        /// `extract_even`/`extract_odd` over the float file. Caller
        /// verified: even `w`, `dst` disjoint from `a` and `b`. For even
        /// `w` the portable loop reads `a[parity + 2k]` for the low half
        /// and `b[parity + 2k]` for the high half — two stride-2 copies.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn perm_f(parity: u32, dst: u32, a: u32, b: u32, w: u32, regs: &mut Regs) {
            let half = (w / 2) as usize;
            let base = regs.f.as_mut_ptr();
            let src_a = base.add(a as usize + parity as usize) as *const f64;
            let src_b = base.add(b as usize + parity as usize) as *const f64;
            copy_stride2_pd(src_a, base.add(dst as usize), half);
            copy_stride2_pd(src_b, base.add(dst as usize + half), half);
        }

        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn perm_i(parity: u32, dst: u32, a: u32, b: u32, w: u32, regs: &mut Regs) {
            let half = (w / 2) as usize;
            let base = regs.i.as_mut_ptr();
            let src_a = base.add(a as usize + parity as usize) as *const i64;
            let src_b = base.add(b as usize + parity as usize) as *const i64;
            copy_stride2_i64(src_a, base.add(dst as usize), half);
            copy_stride2_i64(src_b, base.add(dst as usize + half), half);
        }

        /// Float compare into the int file: predicate mask, masked down
        /// to the portable `0/1`. The files are distinct, so no aliasing
        /// is possible.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn cmp_f_slice(op: BinOp, d: *mut i64, x: *const f64, y: *const f64, n: usize) {
            let mut k = 0;
            while k + LANES <= n {
                let m = cmp_mask(op, load_pd(x.add(k)), load_pd(y.add(k)));
                store_si(d.add(k), and_si(m, ones_epi64()));
                k += LANES;
            }
            while k < n {
                *d.add(k) = cmp_f(op, *x.add(k), *y.add(k));
                k += 1;
            }
        }

        /// `CastFF` to `f32`: the narrow/widen round trip *is* the cast.
        /// Caller verified `dst` disjoint from `a` (the chunked order
        /// would otherwise diverge from the portable element order).
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn cast_ff_f32(d: *mut f64, x: *const f64, n: usize) {
            let mut k = 0;
            while k + LANES <= n {
                store_pd(d.add(k), cvt_ps_pd(cvt_pd_ps(load_pd(x.add(k)))));
                k += LANES;
            }
            while k < n {
                *d.add(k) = (*x.add(k) as f32) as f64;
                k += 1;
            }
        }

        /// `sqrt`/`abs` (and `floor` where the tier has `roundpd`).
        /// `f32`-typed `sqrt`/`floor` replicate the scalar helper's
        /// round-once-to-f32 composition; `abs` narrows first like the
        /// scalar helper, clears the sign in `ps`, and widens back.
        #[inline]
        #[target_feature(enable = $feat)]
        unsafe fn call1_f_slice(i: Intrinsic, ty: ScalarTy, d: *mut f64, x: *const f64, n: usize) {
            let mut k = 0;
            while k + LANES <= n {
                let v = load_pd(x.add(k));
                let r = match (i, ty) {
                    (Intrinsic::Abs, ScalarTy::F32) => cvt_ps_pd(super::abs_ps128(cvt_pd_ps(v))),
                    (Intrinsic::Abs, _) => abs_pd(v),
                    (Intrinsic::Sqrt, ScalarTy::F32) => cvt_ps_pd(cvt_pd_ps(sqrt_pd(v))),
                    (Intrinsic::Sqrt, _) => sqrt_pd(v),
                    (Intrinsic::Floor, ScalarTy::F32) => cvt_ps_pd(cvt_pd_ps(floor_pd(v))),
                    (Intrinsic::Floor, _) => floor_pd(v),
                    _ => unreachable!("unsupported intrinsic on the SIMD path"),
                };
                store_pd(d.add(k), r);
                k += LANES;
            }
            while k < n {
                *d.add(k) = call1_f(i, ty, *x.add(k));
                k += 1;
            }
        }

        /// Execute a kernel's ops with this tier's paths for the
        /// specialized variants; everything else runs the portable code
        /// (still inside the `target_feature` region).
        ///
        /// # Safety
        /// The CPU must support this tier
        /// ([`super::super::KernelTier::available`]).
        #[target_feature(enable = $feat)]
        pub(crate) unsafe fn exec(kops: &[KOp], regs: &mut Regs) {
            for op in kops {
                // All specialized binary arithmetic goes through one
                // decomposition — the same one chain formation uses.
                if let Some((class, kind, dst, a, b, w)) = chain_parts(op) {
                    let n = w as usize;
                    match class {
                        ChainClass::F32 => {
                            let (d, x, y) = super::ptrs3(&mut regs.f, dst, a, b);
                            bin_f32(kind, d, x, y, n);
                        }
                        ChainClass::F64 => {
                            let (d, x, y) = super::ptrs3(&mut regs.f, dst, a, b);
                            bin_f64(kind, d, x, y, n);
                        }
                        ChainClass::I32 if kind != ChainKind::Mul || HAS_MULLO_I32 => {
                            let (d, x, y) = super::ptrs3(&mut regs.i, dst, a, b);
                            bin_i32(kind, d, x, y, n);
                        }
                        ChainClass::I64 | ChainClass::Bits => {
                            let (d, x, y) = super::ptrs3(&mut regs.i, dst, a, b);
                            bin_i64(kind, d, x, y, n);
                        }
                        // MulI32 without pmulld.
                        _ => exec_kop_portable(op, regs),
                    }
                    continue;
                }
                match *op {
                    KOp::Chain {
                        dom,
                        a,
                        w,
                        ref stages,
                    } => {
                        let has_mul = || stages.iter().any(|s| s.kind == ChainKind::Mul);
                        match dom {
                            ChainDom::F32 => chain_f32(a, w, stages, regs),
                            ChainDom::F64 => chain_f64(a, w, stages, regs),
                            ChainDom::I32 if HAS_MULLO_I32 || !has_mul() => {
                                chain_i32(a, w, stages, regs)
                            }
                            ChainDom::I64 => chain_i64(a, w, stages, regs),
                            _ => exec_kop_portable(op, regs),
                        }
                    }
                    KOp::PermF {
                        parity,
                        dst,
                        a,
                        b,
                        w,
                    } if w % 2 == 0 && disjoint(dst, a, w) && disjoint(dst, b, w) => {
                        perm_f(parity, dst, a, b, w, regs);
                    }
                    KOp::PermI {
                        parity,
                        dst,
                        a,
                        b,
                        w,
                    } if w % 2 == 0 && disjoint(dst, a, w) && disjoint(dst, b, w) => {
                        perm_i(parity, dst, a, b, w, regs);
                    }
                    KOp::CmpF {
                        op: cop,
                        dst,
                        a,
                        b,
                        w,
                    } if cop.is_comparison() => {
                        // Distinct files: dst is int, sources are float.
                        let d = regs.i.as_mut_ptr().add(dst as usize);
                        let x = regs.f.as_ptr().add(a as usize);
                        let y = regs.f.as_ptr().add(b as usize);
                        cmp_f_slice(cop, d, x, y, w as usize);
                    }
                    KOp::CmpI {
                        op: cop,
                        ty,
                        dst,
                        a,
                        b,
                        w,
                    } if ty == ScalarTy::I32 || HAS_CMP_I64 => {
                        let (d, x, y) = super::ptrs3(&mut regs.i, dst, a, b);
                        cmp_i_slice(cop, d, x, y, w as usize);
                    }
                    KOp::CastFF {
                        to: ScalarTy::F32,
                        dst,
                        a,
                        w,
                    } if disjoint(dst, a, w) => {
                        let (d, x) = super::ptrs2(&mut regs.f, dst, a);
                        cast_ff_f32(d, x, w as usize);
                    }
                    KOp::Call1F { i, ty, dst, a, w }
                        if disjoint(dst, a, w)
                            && (matches!(i, Intrinsic::Sqrt | Intrinsic::Abs)
                                || (HAS_FLOOR && i == Intrinsic::Floor)) =>
                    {
                        let (d, x) = super::ptrs2(&mut regs.f, dst, a);
                        call1_f_slice(i, ty, d, x, w as usize);
                    }
                    // Bookkeeping ops: same semantics as the portable
                    // arms, with the bounds checks the fusion pass
                    // already performed removed. `copy` (not
                    // `copy_nonoverlapping`) matches `copy_within`'s
                    // overlap tolerance.
                    KOp::MovNF { dst, src, w } => {
                        core::ptr::copy(
                            regs.f.as_ptr().add(src as usize),
                            regs.f.as_mut_ptr().add(dst as usize),
                            w as usize,
                        );
                    }
                    KOp::MovNI { dst, src, w } => {
                        core::ptr::copy(
                            regs.i.as_ptr().add(src as usize),
                            regs.i.as_mut_ptr().add(dst as usize),
                            w as usize,
                        );
                    }
                    KOp::ConstVecF { dst, ref vals } => {
                        core::ptr::copy_nonoverlapping(
                            vals.as_ptr(),
                            regs.f.as_mut_ptr().add(dst as usize),
                            vals.len(),
                        );
                    }
                    KOp::ConstVecI { dst, ref vals } => {
                        core::ptr::copy_nonoverlapping(
                            vals.as_ptr(),
                            regs.i.as_mut_ptr().add(dst as usize),
                            vals.len(),
                        );
                    }
                    KOp::SplatF { dst, a, w } => {
                        let v = *regs.f.as_ptr().add(a as usize);
                        let d = regs.f.as_mut_ptr().add(dst as usize);
                        for k in 0..w as usize {
                            *d.add(k) = v;
                        }
                    }
                    // Everything generic runs the exact portable loops.
                    ref other => exec_kop_portable(other, regs),
                }
            }
        }
    };
}

/// The 128-bit row: SSE2 only — the x86-64 baseline. No `pmulld`
/// (32-bit multiplies stay portable), no `roundpd` (floor stays
/// portable); sign-extension is the shift/unpack pair.
pub(crate) mod sse2 {
    use core::arch::x86_64::*;

    const LANES: usize = 2;
    const HAS_MULLO_I32: bool = false;
    const HAS_FLOOR: bool = false;
    const HAS_CMP_I64: bool = false;

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn load_pd(p: *const f64) -> __m128d {
        _mm_loadu_pd(p)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn store_pd(p: *mut f64, v: __m128d) {
        _mm_storeu_pd(p, v)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn add_pd(a: __m128d, b: __m128d) -> __m128d {
        _mm_add_pd(a, b)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn sub_pd(a: __m128d, b: __m128d) -> __m128d {
        _mm_sub_pd(a, b)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn mul_pd(a: __m128d, b: __m128d) -> __m128d {
        _mm_mul_pd(a, b)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn div_pd(a: __m128d, b: __m128d) -> __m128d {
        _mm_div_pd(a, b)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn sqrt_pd(a: __m128d) -> __m128d {
        _mm_sqrt_pd(a)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn abs_pd(v: __m128d) -> __m128d {
        _mm_and_pd(v, _mm_castsi128_pd(_mm_set1_epi64x(0x7fff_ffff_ffff_ffff)))
    }
    /// `roundpd` is SSE4.1; `HAS_FLOOR` keeps this unreachable.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn floor_pd(_v: __m128d) -> __m128d {
        unreachable!("floor has no SSE2 instruction")
    }
    /// Narrows the 2 `f64` lanes into `ps` lanes 0–1 (upper lanes zero).
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn cvt_pd_ps(v: __m128d) -> __m128 {
        _mm_cvtpd_ps(v)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn cvt_ps_pd(v: __m128) -> __m128d {
        _mm_cvtps_pd(v)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn load_si(p: *const i64) -> __m128i {
        _mm_loadu_si128(p as *const __m128i)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn store_si(p: *mut i64, v: __m128i) {
        _mm_storeu_si128(p as *mut __m128i, v)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn add_i64(a: __m128i, b: __m128i) -> __m128i {
        _mm_add_epi64(a, b)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn sub_i64(a: __m128i, b: __m128i) -> __m128i {
        _mm_sub_epi64(a, b)
    }
    /// Lane-wise wrapping 64-bit multiply from `pmuludq` 32x32 partial
    /// products: `lo*lo + ((lo*hi + hi*lo) << 32)`. The dropped `hi*hi`
    /// term is `2^64`-scaled, and the shift truncates the cross terms
    /// exactly as the scalar wrap does — bit-exact `i64::wrapping_mul`.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn mul_i64(a: __m128i, b: __m128i) -> __m128i {
        let lo = _mm_mul_epu32(a, b);
        let cross = _mm_add_epi64(
            _mm_mul_epu32(_mm_srli_epi64::<32>(a), b),
            _mm_mul_epu32(a, _mm_srli_epi64::<32>(b)),
        );
        _mm_add_epi64(lo, _mm_slli_epi64::<32>(cross))
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn and_si(a: __m128i, b: __m128i) -> __m128i {
        _mm_and_si128(a, b)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn or_si(a: __m128i, b: __m128i) -> __m128i {
        _mm_or_si128(a, b)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn xor_si(a: __m128i, b: __m128i) -> __m128i {
        _mm_xor_si128(a, b)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn ones_epi64() -> __m128i {
        _mm_set1_epi64x(1)
    }
    /// Low dwords of the 2 `i64` lanes into dword lanes 0–1.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn gather_lo32(v: __m128i) -> __m128i {
        _mm_shuffle_epi32::<0b00_00_10_00>(v)
    }
    /// Sign-extend dword lanes 0–1 to 2 `i64` lanes without SSE4.1's
    /// `pmovsxdq`: interleave with the arithmetic-shift sign words.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn sext_lo32(v: __m128i) -> __m128i {
        _mm_unpacklo_epi32(v, _mm_srai_epi32::<31>(v))
    }
    /// `pmulld` is SSE4.1; `HAS_MULLO_I32` keeps this unreachable.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn mul32(_a: __m128i, _b: __m128i) -> __m128i {
        unreachable!("32-bit multiply has no exact SSE2 instruction")
    }
    /// `[s0, s2]` from two consecutive pair loads `[s0,s1]`, `[s2,s3]`.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn stride2_pd(v0: __m128d, v1: __m128d) -> __m128d {
        _mm_unpacklo_pd(v0, v1)
    }
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn stride2_i64(v0: __m128i, v1: __m128i) -> __m128i {
        _mm_unpacklo_epi64(v0, v1)
    }
    /// `pcmpeqq`/`pcmpgtq` are SSE4.1/4.2; `HAS_CMP_I64` keeps this
    /// unreachable (the dispatcher only sends `i32` compares here).
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn cmp_mask_i64(_op: BinOp, _a: __m128i, _b: __m128i) -> __m128i {
        unreachable!("64-bit compare has no SSE2 instruction")
    }
    /// Quiet-predicate compare mask (matches Rust `PartialOrd` on NaN).
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn cmp_mask(op: BinOp, a: __m128d, b: __m128d) -> __m128i {
        let m = match op {
            BinOp::Eq => _mm_cmpeq_pd(a, b),
            BinOp::Ne => _mm_cmpneq_pd(a, b),
            BinOp::Lt => _mm_cmplt_pd(a, b),
            BinOp::Le => _mm_cmple_pd(a, b),
            BinOp::Gt => _mm_cmpgt_pd(a, b),
            BinOp::Ge => _mm_cmpge_pd(a, b),
            _ => unreachable!("not a comparison: {op:?}"),
        };
        _mm_castpd_si128(m)
    }

    tier_exec_body!("sse2");
}

/// The 256-bit row: AVX2, runtime-detected. Full capability set —
/// `pmulld` for 32-bit multiplies, `roundpd` for floor, `vpmovsxdq`
/// sign-extension, cross-lane permutes for the stride-2 gather.
pub(crate) mod avx2 {
    use core::arch::x86_64::*;

    const LANES: usize = 4;
    const HAS_MULLO_I32: bool = true;
    const HAS_FLOOR: bool = true;
    const HAS_CMP_I64: bool = true;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_pd(p: *const f64) -> __m256d {
        _mm256_loadu_pd(p)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_pd(p: *mut f64, v: __m256d) {
        _mm256_storeu_pd(p, v)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn add_pd(a: __m256d, b: __m256d) -> __m256d {
        _mm256_add_pd(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sub_pd(a: __m256d, b: __m256d) -> __m256d {
        _mm256_sub_pd(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_pd(a: __m256d, b: __m256d) -> __m256d {
        _mm256_mul_pd(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn div_pd(a: __m256d, b: __m256d) -> __m256d {
        _mm256_div_pd(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sqrt_pd(a: __m256d) -> __m256d {
        _mm256_sqrt_pd(a)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn abs_pd(v: __m256d) -> __m256d {
        _mm256_and_pd(
            v,
            _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff)),
        )
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn floor_pd(v: __m256d) -> __m256d {
        _mm256_floor_pd(v)
    }
    /// Narrows the 4 `f64` lanes into a full `__m128`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cvt_pd_ps(v: __m256d) -> __m128 {
        _mm256_cvtpd_ps(v)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cvt_ps_pd(v: __m128) -> __m256d {
        _mm256_cvtps_pd(v)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_si(p: *const i64) -> __m256i {
        _mm256_loadu_si256(p as *const __m256i)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_si(p: *mut i64, v: __m256i) {
        _mm256_storeu_si256(p as *mut __m256i, v)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn add_i64(a: __m256i, b: __m256i) -> __m256i {
        _mm256_add_epi64(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sub_i64(a: __m256i, b: __m256i) -> __m256i {
        _mm256_sub_epi64(a, b)
    }
    /// Lane-wise wrapping 64-bit multiply from `vpmuludq` 32x32 partial
    /// products: `lo*lo + ((lo*hi + hi*lo) << 32)` — see the SSE2 row
    /// for the exactness argument.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_i64(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), b),
            _mm256_mul_epu32(a, _mm256_srli_epi64::<32>(b)),
        );
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn and_si(a: __m256i, b: __m256i) -> __m256i {
        _mm256_and_si256(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn or_si(a: __m256i, b: __m256i) -> __m256i {
        _mm256_or_si256(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn xor_si(a: __m256i, b: __m256i) -> __m256i {
        _mm256_xor_si256(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn ones_epi64() -> __m256i {
        _mm256_set1_epi64x(1)
    }
    /// Low dwords of the 4 `i64` lanes into a `__m128i`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn gather_lo32(v: __m256i) -> __m128i {
        let even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(v, even))
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sext_lo32(v: __m128i) -> __m256i {
        _mm256_cvtepi32_epi64(v)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul32(a: __m128i, b: __m128i) -> __m128i {
        _mm_mullo_epi32(a, b)
    }
    /// `[s0, s2, s4, s6]` from two consecutive quad loads: in-lane
    /// unpack gives `[s0, s4, s2, s6]`, the cross-lane permute
    /// `(0,2,1,3)` restores element order.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn stride2_pd(v0: __m256d, v1: __m256d) -> __m256d {
        _mm256_permute4x64_pd::<0b11_01_10_00>(_mm256_unpacklo_pd(v0, v1))
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn stride2_i64(v0: __m256i, v1: __m256i) -> __m256i {
        _mm256_permute4x64_epi64::<0b11_01_10_00>(_mm256_unpacklo_epi64(v0, v1))
    }
    /// Signed qword compare mask: `vpcmpeqq`/`vpcmpgtq` for the base
    /// predicates, complements for the rest.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cmp_mask_i64(op: BinOp, a: __m256i, b: __m256i) -> __m256i {
        let ones = _mm256_set1_epi64x(-1);
        match op {
            BinOp::Eq => _mm256_cmpeq_epi64(a, b),
            BinOp::Ne => _mm256_xor_si256(_mm256_cmpeq_epi64(a, b), ones),
            BinOp::Lt => _mm256_cmpgt_epi64(b, a),
            BinOp::Gt => _mm256_cmpgt_epi64(a, b),
            BinOp::Le => _mm256_xor_si256(_mm256_cmpgt_epi64(a, b), ones),
            BinOp::Ge => _mm256_xor_si256(_mm256_cmpgt_epi64(b, a), ones),
            _ => unreachable!("not a comparison: {op:?}"),
        }
    }
    /// Quiet-predicate compare mask (matches Rust `PartialOrd` on NaN).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cmp_mask(op: BinOp, a: __m256d, b: __m256d) -> __m256i {
        let m = match op {
            BinOp::Eq => _mm256_cmp_pd::<_CMP_EQ_OQ>(a, b),
            BinOp::Ne => _mm256_cmp_pd::<_CMP_NEQ_UQ>(a, b),
            BinOp::Lt => _mm256_cmp_pd::<_CMP_LT_OQ>(a, b),
            BinOp::Le => _mm256_cmp_pd::<_CMP_LE_OQ>(a, b),
            BinOp::Gt => _mm256_cmp_pd::<_CMP_GT_OQ>(a, b),
            BinOp::Ge => _mm256_cmp_pd::<_CMP_GE_OQ>(a, b),
            _ => unreachable!("not a comparison: {op:?}"),
        };
        _mm256_castpd_si256(m)
    }

    tier_exec_body!("avx2");
}

#[cfg(test)]
mod tests {
    use super::super::{exec_kop_portable, ChainDom, ChainKind, ChainStage, KOp, KernelTier};
    use crate::bytecode::Regs;
    use macross_streamir::expr::{BinOp, Intrinsic};
    use macross_streamir::types::ScalarTy;

    fn mk_regs() -> Regs {
        let mut r = Regs::new(48, 48);
        for (k, x) in r.i.iter_mut().enumerate() {
            *x = ((k as i64 * 2654435761) % 97) - 48;
        }
        for (k, x) in r.f.iter_mut().enumerate() {
            *x = (((k as f64) * 0.37 - 3.0) as f32) as f64;
        }
        r
    }

    fn ops_under_test() -> Vec<KOp> {
        let w = 7u32; // odd width exercises every scalar remainder
        vec![
            KOp::AddF32 {
                dst: 16,
                a: 0,
                b: 8,
                w,
            },
            KOp::MulF32 {
                dst: 24,
                a: 16,
                b: 0,
                w,
            },
            KOp::DivF32 {
                dst: 16,
                a: 24,
                b: 8,
                w,
            },
            KOp::AddF64 {
                dst: 24,
                a: 0,
                b: 16,
                w,
            },
            KOp::MulI32 {
                dst: 16,
                a: 0,
                b: 8,
                w,
            },
            KOp::SubI32 {
                dst: 24,
                a: 16,
                b: 0,
                w,
            },
            KOp::AddI64 {
                dst: 16,
                a: 24,
                b: 8,
                w,
            },
            KOp::XorI {
                dst: 24,
                a: 16,
                b: 0,
                w,
            },
            KOp::MulI64 {
                dst: 16,
                a: 24,
                b: 8,
                w,
            },
            KOp::PermF {
                parity: 0,
                dst: 32,
                a: 0,
                b: 8,
                w: 8,
            },
            KOp::PermF {
                parity: 1,
                dst: 32,
                a: 0,
                b: 8,
                w: 7,
            },
            KOp::PermI {
                parity: 1,
                dst: 32,
                a: 0,
                b: 8,
                w: 8,
            },
            KOp::CmpF {
                op: BinOp::Le,
                dst: 40,
                a: 0,
                b: 8,
                w,
            },
            KOp::CmpF {
                op: BinOp::Ne,
                dst: 40,
                a: 8,
                b: 16,
                w,
            },
            KOp::MulI64 {
                dst: 32,
                a: 0,
                b: 8,
                w,
            },
            KOp::CmpI {
                op: BinOp::Lt,
                ty: ScalarTy::I32,
                dst: 40,
                a: 0,
                b: 8,
                w,
            },
            KOp::CmpI {
                op: BinOp::Ge,
                ty: ScalarTy::I64,
                dst: 40,
                a: 8,
                b: 16,
                w,
            },
            KOp::CmpI {
                op: BinOp::Ne,
                ty: ScalarTy::I64,
                dst: 40,
                a: 16,
                b: 24,
                w,
            },
            KOp::CastFF {
                to: ScalarTy::F32,
                dst: 32,
                a: 16,
                w,
            },
            KOp::Call1F {
                i: Intrinsic::Abs,
                ty: ScalarTy::F32,
                dst: 32,
                a: 0,
                w,
            },
            KOp::Call1F {
                i: Intrinsic::Sqrt,
                ty: ScalarTy::F64,
                dst: 32,
                a: 8,
                w,
            },
            KOp::Call1F {
                i: Intrinsic::Floor,
                ty: ScalarTy::F32,
                dst: 32,
                a: 16,
                w,
            },
            KOp::Chain {
                dom: ChainDom::F32,
                a: 0,
                w,
                stages: Box::new([
                    ChainStage {
                        kind: ChainKind::Mul,
                        other: 8,
                        store: None,
                    },
                    ChainStage {
                        kind: ChainKind::Add,
                        other: 16,
                        store: Some(32),
                    },
                    ChainStage {
                        kind: ChainKind::RSub,
                        other: 8,
                        store: Some(24),
                    },
                ]),
            },
            KOp::Chain {
                dom: ChainDom::I32,
                a: 0,
                w,
                stages: Box::new([
                    ChainStage {
                        kind: ChainKind::Mul,
                        other: 8,
                        store: None,
                    },
                    ChainStage {
                        kind: ChainKind::Add,
                        other: 16,
                        store: Some(32),
                    },
                ]),
            },
            KOp::Chain {
                dom: ChainDom::I64,
                a: 0,
                w,
                stages: Box::new([
                    ChainStage {
                        kind: ChainKind::Xor,
                        other: 8,
                        store: None,
                    },
                    ChainStage {
                        kind: ChainKind::Mul,
                        other: 16,
                        store: Some(24),
                    },
                    ChainStage {
                        kind: ChainKind::Sub,
                        other: 16,
                        store: Some(32),
                    },
                ]),
            },
        ]
    }

    #[test]
    fn intrinsic_tiers_match_portable_lane_for_lane() {
        for tier in [KernelTier::Sse2, KernelTier::Avx2] {
            if !tier.available() {
                continue;
            }
            let ops = ops_under_test();
            let (mut rt, mut rp) = (mk_regs(), mk_regs());
            match tier {
                KernelTier::Sse2 => unsafe { super::sse2::exec(&ops, &mut rt) },
                KernelTier::Avx2 => unsafe { super::avx2::exec(&ops, &mut rt) },
                KernelTier::Portable => unreachable!(),
            }
            for op in &ops {
                exec_kop_portable(op, &mut rp);
            }
            assert_eq!(rt.i, rp.i, "{} int file", tier.label());
            let bits = |r: &Regs| r.f.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&rt), bits(&rp), "{} float file", tier.label());
        }
    }
}
