//! CLI probe of the kernel backend matrix, for the CI `kernel-matrix`
//! job (and for humans wondering what a box can run).
//!
//! Modes:
//!
//! - no arguments: print the runtime-detected tier and the availability
//!   of every tier in the matrix. Exits nonzero if detection lands on a
//!   tier the matrix does not recognize as available — that would mean
//!   feature detection and the backend table disagree, and every forced-
//!   tier suite downstream would be testing a lie.
//! - `--check <tier>`: exit `0` if the named tier can execute on this
//!   machine, `2` if it is recognized but unavailable (CI skips the leg),
//!   and `1` if the label itself is unknown (CI fails the job).
//!
//! The probe deliberately ignores `MACROSS_KERNEL_TIER` for the
//! availability table — it reports hardware truth, not the override —
//! but prints the override when set so CI logs show both.

use macross_vm::{kernel, KernelTier};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => {
            let detected = kernel::select_tier();
            println!(
                "detected: {} ({}-bit lanes)",
                detected.label(),
                detected.width_bits()
            );
            if let Ok(forced) = std::env::var("MACROSS_KERNEL_TIER") {
                println!("forced via MACROSS_KERNEL_TIER: {forced}");
            }
            for t in KernelTier::ALL {
                println!(
                    "{:8} {}",
                    t.label(),
                    if t.available() {
                        "available"
                    } else {
                        "unavailable"
                    }
                );
            }
            if !detected.available() {
                eprintln!(
                    "error: detection selected tier {:?} but the matrix reports it unavailable",
                    detected.label()
                );
                std::process::exit(1);
            }
        }
        ["--check", label] => {
            let Some(t) = KernelTier::from_label(label) else {
                eprintln!(
                    "error: unknown tier {label:?} (matrix knows: {})",
                    KernelTier::ALL
                        .iter()
                        .map(|t| t.label())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(1);
            };
            if !t.available() {
                eprintln!("tier {label} is recognized but cannot execute on this machine");
                std::process::exit(2);
            }
            println!("tier {label} is available");
        }
        _ => {
            eprintln!("usage: kernel_tiers [--check <portable|sse2|avx2>]");
            std::process::exit(1);
        }
    }
}
