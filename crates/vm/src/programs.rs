//! Graph-level sets of compiled filter plans, shareable across executors.
//!
//! [`CompiledPrograms`] is the unit the service layer's compile-once cache
//! stores: every filter of a graph compiled exactly once (with superblock
//! kernels fused per the chosen [`ExecMode`]), behind `Arc`s so any number
//! of concurrent sessions can instantiate fresh [`FilterState`]s without
//! re-running the firing compiler. `Clone` is cheap — it clones the
//! `Arc`s, never the bytecode.

use crate::bytecode::CompiledFilter;
use crate::exec::ExecMode;
use crate::firing::FilterState;
use crate::machine::Machine;
use macross_streamir::graph::{Graph, Node, NodeId};
use std::sync::Arc;

/// Every filter of one graph compiled once for one engine mode.
///
/// Indexed by [`NodeId`]; non-filter nodes and tree-walk mode hold `None`
/// (those fire natively or through the interpreter and need no plan).
#[derive(Debug, Clone)]
pub struct CompiledPrograms {
    mode: ExecMode,
    plans: Vec<Option<Arc<CompiledFilter>>>,
}

impl CompiledPrograms {
    /// Run the firing compiler over every filter of `graph`.
    ///
    /// Element types for tape-typed opcodes come from each filter's
    /// single input/output edge, exactly as [`crate::Executor`] resolves
    /// them, so an executor built from these plans behaves identically to
    /// one built with [`crate::Executor::with_mode`].
    pub fn compile(graph: &Graph, machine: &Machine, mode: ExecMode) -> CompiledPrograms {
        let plans = graph
            .nodes()
            .map(|(id, node)| match node {
                Node::Filter(f) => {
                    let in_elem = graph.single_in_edge(id).map(|e| graph.edge(e).elem);
                    let out_elem = graph.single_out_edge(id).map(|e| graph.edge(e).elem);
                    FilterState::compile_plan(f, machine, in_elem, out_elem, mode)
                }
                _ => None,
            })
            .collect();
        CompiledPrograms { mode, plans }
    }

    /// The engine mode these plans were compiled for.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Number of graph nodes covered (filters and non-filters alike).
    pub fn node_count(&self) -> usize {
        self.plans.len()
    }

    /// The shared plan for `id`, if that node is a compiled filter.
    pub fn plan(&self, id: NodeId) -> Option<&Arc<CompiledFilter>> {
        self.plans[id.0 as usize].as_ref()
    }

    /// Fresh per-session firing state for `id` (empty for non-filters),
    /// sharing this set's compiled plan.
    pub fn state_for(&self, id: NodeId, node: &Node) -> FilterState {
        match node {
            Node::Filter(f) => FilterState::from_shared(f, self.plans[id.0 as usize].clone()),
            _ => FilterState::default(),
        }
    }

    /// Number of filters that actually compiled (the rest tree-walk).
    pub fn compiled_count(&self) -> usize {
        self.plans.iter().flatten().count()
    }

    /// Total fused superblock kernels across all plans.
    pub fn kernel_total(&self) -> usize {
        self.plans.iter().flatten().map(|p| p.kernels.len()).sum()
    }
}
