//! FIFO tapes with random-access pushes, pointer adjustment, and the
//! column-major reorder modes used by the SAGU tape optimization.
//!
//! Storage is a flat power-of-two ring indexed by monotonic absolute
//! counters (`read <= committed_end <= filled_end`), so steady-state
//! traffic is masked index arithmetic over one allocation instead of
//! `VecDeque` element churn, and vector transfers degrade to at most two
//! contiguous slice copies (see [`Tape::vpop_slices`] /
//! [`Tape::vpush_many`]).

use macross_sagu::column_major_index;
use macross_streamir::types::{ScalarTy, Value};

/// A tape (FIFO channel) between two actors.
///
/// Beyond plain push/pop the tape supports the paper's access repertoire:
///
/// - `peek(k)`: non-destructive read `k` elements past the read pointer;
/// - `rpush(v, off)`: write `off` elements past the write pointer without
///   advancing it;
/// - `advance_read`/`advance_write`: bulk pointer adjustment emitted by the
///   SIMDizer;
/// - vector push/pop of `w` contiguous elements;
/// - **reorder modes**: when one end is vectorized and uses whole-vector
///   accesses while the other end stays scalar, the scalar end accesses the
///   tape in column-major block order (resolved by a SAGU or the Figure-8
///   software sequence — the *cost* of which is charged by the executor;
///   this type implements the functional remapping).
#[derive(Debug, Clone)]
pub struct Tape {
    /// Ring storage; `buf.len()` is the capacity, zero or a power of two.
    buf: Vec<Value>,
    /// `buf.len() - 1` when allocated, 0 while empty.
    mask: usize,
    /// Absolute read pointer (monotonic).
    read: usize,
    /// Absolute write pointer: committed elements live in
    /// `[read, committed_end)`.
    committed_end: usize,
    /// Zero-filled high-water mark (`>= committed_end`; the gap holds
    /// rpush-staged elements not yet committed by `advance_write`).
    filled_end: usize,
    /// Element type (for zero-fill of rpush gaps).
    elem: ScalarTy,
    /// Column-major read remapping: (rate, simd width).
    read_reorder: Option<(usize, usize)>,
    /// Logical position within the current read block.
    read_block_pos: usize,
    /// Column-major write remapping: (rate, simd width).
    write_reorder: Option<(usize, usize)>,
    /// Staging buffer for one write block.
    write_stage: Vec<Value>,
    /// Logical position within the current write block.
    write_block_pos: usize,
    /// Lifetime statistics.
    total_pushed: u64,
    total_popped: u64,
    /// Set by fault injection or a failed firing: the contents can no
    /// longer be trusted. Checked once per firing at the firing boundary
    /// (not per access), so the steady-state hot path is unaffected.
    poisoned: bool,
}

impl Default for Tape {
    /// An empty `f32` tape (used when temporarily moving tapes out of the
    /// executor's storage).
    fn default() -> Tape {
        Tape::new(ScalarTy::F32)
    }
}

impl Tape {
    /// Create an empty tape carrying elements of type `elem`.
    pub fn new(elem: ScalarTy) -> Tape {
        Tape {
            buf: Vec::new(),
            mask: 0,
            read: 0,
            committed_end: 0,
            filled_end: 0,
            elem,
            read_reorder: None,
            read_block_pos: 0,
            write_reorder: None,
            write_stage: Vec::new(),
            write_block_pos: 0,
            total_pushed: 0,
            total_popped: 0,
            poisoned: false,
        }
    }

    /// Mark the tape's contents as untrustworthy. Firing primitives refuse
    /// to run a filter against a poisoned tape
    /// ([`crate::VmError::Poisoned`]); the data itself is left in place for
    /// post-mortem inspection.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// True when [`Tape::poison`] was called and not cleared since.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Clear the poison mark (replay tooling re-arms tapes between runs).
    pub fn clear_poison(&mut self) {
        self.poisoned = false;
    }

    /// Enable column-major *read* remapping (vectorized producer, scalar
    /// consumer): logical read `k` resolves to physical slot
    /// `column_major_index(k, rate, sw)` within the current block.
    ///
    /// # Panics
    /// Panics if a write reorder is already set (a tape reorders one end).
    pub fn set_read_reorder(&mut self, rate: usize, sw: usize) {
        assert!(
            self.write_reorder.is_none(),
            "tape cannot reorder both ends"
        );
        self.read_reorder = Some((rate, sw));
    }

    /// Enable column-major *write* remapping (scalar producer, vectorized
    /// consumer): logical writes are staged and committed one block at a
    /// time in the layout the consumer's vector pops expect.
    ///
    /// # Panics
    /// Panics if a read reorder is already set.
    pub fn set_write_reorder(&mut self, rate: usize, sw: usize) {
        assert!(self.read_reorder.is_none(), "tape cannot reorder both ends");
        self.write_reorder = Some((rate, sw));
        self.write_stage = vec![self.elem.zero(); rate * sw];
    }

    /// Element type carried by this tape.
    pub fn elem(&self) -> ScalarTy {
        self.elem
    }

    /// Export the committed resident tokens in FIFO order — the tape half
    /// of the configuration-swap carrier (parameterized dataflow).
    ///
    /// Returns `None` when the resident state cannot be expressed as a
    /// plain token sequence: a partially consumed/produced reorder block,
    /// rpush-staged elements not yet committed, or any resident tokens on
    /// a reordered tape (their physical layout encodes a permutation the
    /// importing configuration may not share). Template validation
    /// rejects dynamic programs whose quiescent points can reach those
    /// states, so a swap never observes `None` at runtime.
    pub fn export_resident(&self) -> Option<Vec<Value>> {
        if self.read_block_pos != 0
            || self.write_block_pos != 0
            || self.filled_end != self.committed_end
        {
            return None;
        }
        if !self.is_empty() && (self.read_reorder.is_some() || self.write_reorder.is_some()) {
            return None;
        }
        Some(
            (self.read..self.committed_end)
                .map(|i| self.at(i))
                .collect(),
        )
    }

    /// Preload tokens exported by [`Tape::export_resident`] into this
    /// (still pristine) tape, in FIFO order. Counterpart of the export:
    /// returns `false` — importing nothing — when this tape already holds
    /// data, has block state in flight, or would need a reorder-aware
    /// layout for a non-empty carrier. Lifetime push/pop statistics are
    /// not disturbed: carried tokens were already counted by the
    /// configuration that produced them.
    pub fn import_resident(&mut self, vals: &[Value]) -> bool {
        if !self.is_empty()
            || self.read_block_pos != 0
            || self.write_block_pos != 0
            || self.filled_end != self.committed_end
        {
            return false;
        }
        if !vals.is_empty() && (self.read_reorder.is_some() || self.write_reorder.is_some()) {
            return false;
        }
        for &v in vals {
            self.write_at(self.committed_end, v);
            self.committed_end += 1;
        }
        true
    }

    /// Committed (readable) element count.
    pub fn len(&self) -> usize {
        self.committed_end - self.read
    }

    /// True when no committed elements remain.
    pub fn is_empty(&self) -> bool {
        self.committed_end == self.read
    }

    /// Lifetime totals `(pushed, popped)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.total_pushed, self.total_popped)
    }

    /// Reallocate so at least `min_live` slots fit, re-ringing the live
    /// region `[read, filled_end)` under the new mask.
    fn grow(&mut self, min_live: usize) {
        let new_cap = min_live.next_power_of_two().max(8);
        let new_mask = new_cap - 1;
        let mut new_buf = vec![self.elem.zero(); new_cap];
        for i in self.read..self.filled_end {
            new_buf[i & new_mask] = self.buf[i & self.mask];
        }
        self.buf = new_buf;
        self.mask = new_mask;
    }

    /// Zero-fill up through absolute index `idx`, growing the ring when
    /// the live region would exceed capacity.
    fn ensure_filled(&mut self, idx: usize) {
        let need = idx + 1 - self.read;
        if need > self.buf.len() {
            self.grow(need);
        }
        while self.filled_end <= idx {
            let slot = self.filled_end & self.mask;
            self.buf[slot] = self.elem.zero();
            self.filled_end += 1;
        }
    }

    /// Write `v` at absolute index `idx` (filling any gap with zeros).
    fn write_at(&mut self, idx: usize, v: Value) {
        self.ensure_filled(idx);
        let slot = idx & self.mask;
        self.buf[slot] = v;
    }

    /// Read the element at absolute index `idx`.
    fn at(&self, idx: usize) -> Value {
        assert!(idx < self.filled_end, "tape read past filled region");
        self.buf[idx & self.mask]
    }

    /// Push one element, advancing the write pointer.
    pub fn push(&mut self, v: Value) {
        self.total_pushed += 1;
        if let Some((rate, sw)) = self.write_reorder {
            let block = rate * sw;
            let phys = column_major_index(self.write_block_pos, rate, sw);
            self.write_stage[phys] = v;
            self.write_block_pos += 1;
            if self.write_block_pos == block {
                self.write_block_pos = 0;
                let stage = std::mem::take(&mut self.write_stage);
                for &val in &stage {
                    self.write_at(self.committed_end, val);
                    self.committed_end += 1;
                }
                self.write_stage = stage;
            }
            return;
        }
        self.write_at(self.committed_end, v);
        self.committed_end += 1;
    }

    /// Random-access push `off` elements past the write pointer (does not
    /// advance it). Not available on write-reordered tapes.
    ///
    /// # Panics
    /// Panics on a write-reordered tape.
    pub fn rpush(&mut self, v: Value, off: usize) {
        assert!(
            self.write_reorder.is_none(),
            "rpush on a write-reordered tape"
        );
        self.total_pushed += 1;
        self.write_at(self.committed_end + off, v);
    }

    /// Advance the write pointer over `n` slots previously filled by
    /// `rpush`.
    pub fn advance_write(&mut self, n: usize) {
        self.ensure_filled(self.committed_end + n - 1);
        self.committed_end += n;
    }

    /// Push `w` contiguous elements (a vector push).
    pub fn vpush(&mut self, vals: &[Value]) {
        assert!(
            self.write_reorder.is_none(),
            "vpush on a write-reordered tape"
        );
        for &v in vals {
            self.total_pushed += 1;
            self.write_at(self.committed_end, v);
            self.committed_end += 1;
        }
    }

    /// Push `w` elements produced by `f(lane)` without materializing a
    /// `Vec<Value>` (the bytecode VM's unboxed vector-push fast path).
    ///
    /// # Panics
    /// Panics on a write-reordered tape.
    #[inline]
    pub fn vpush_many(&mut self, w: usize, mut f: impl FnMut(usize) -> Value) {
        assert!(
            self.write_reorder.is_none(),
            "vpush on a write-reordered tape"
        );
        if w == 0 {
            return;
        }
        self.ensure_filled(self.committed_end + w - 1);
        for lane in 0..w {
            let slot = (self.committed_end + lane) & self.mask;
            self.buf[slot] = f(lane);
        }
        self.total_pushed += w as u64;
        self.committed_end += w;
    }

    /// Pop one element.
    ///
    /// # Panics
    /// Panics if the tape is empty (the schedule guarantees availability).
    pub fn pop(&mut self) -> Value {
        self.total_popped += 1;
        if let Some((rate, sw)) = self.read_reorder {
            let block = rate * sw;
            let phys = column_major_index(self.read_block_pos, rate, sw);
            let v = self.at(self.read + phys);
            self.read_block_pos += 1;
            if self.read_block_pos == block {
                self.read_block_pos = 0;
                self.read += block;
            }
            return v;
        }
        assert!(self.committed_end > self.read, "pop from empty tape");
        let v = self.buf[self.read & self.mask];
        self.read += 1;
        v
    }

    /// Non-destructive read `off` elements past the read pointer.
    pub fn peek(&self, off: usize) -> Value {
        if let Some((rate, sw)) = self.read_reorder {
            let phys = column_major_index(self.read_block_pos + off, rate, sw);
            return self.at(self.read + phys);
        }
        assert!(
            off < self.len(),
            "peek({off}) beyond committed {}",
            self.len()
        );
        self.buf[(self.read + off) & self.mask]
    }

    /// Advance the read pointer by `n` (elements were consumed logically by
    /// strided peeks).
    pub fn advance_read(&mut self, n: usize) {
        self.total_popped += n as u64;
        if let Some((rate, sw)) = self.read_reorder {
            let block = rate * sw;
            self.read_block_pos += n;
            while self.read_block_pos >= block {
                self.read_block_pos -= block;
                self.read += block;
            }
            return;
        }
        assert!(
            n <= self.len(),
            "advance_read({n}) beyond committed {}",
            self.len()
        );
        self.read += n;
    }

    /// Pop `w` contiguous elements as a vector.
    pub fn vpop(&mut self, w: usize) -> Vec<Value> {
        let (a, b) = self.vpop_slices(w);
        let mut out = Vec::with_capacity(w);
        out.extend_from_slice(a);
        out.extend_from_slice(b);
        out
    }

    /// Pop `w` contiguous elements, returned as at most two contiguous
    /// slices of the ring (the bytecode VM's unboxed vector-pop fast
    /// path — counters and the read pointer are updated before the
    /// borrows are handed out).
    ///
    /// # Panics
    /// Panics like [`Tape::vpop`].
    #[inline]
    pub fn vpop_slices(&mut self, w: usize) -> (&[Value], &[Value]) {
        assert!(self.read_reorder.is_none(), "vpop on a read-reordered tape");
        assert!(w <= self.len(), "vpop({w}) beyond committed {}", self.len());
        self.total_popped += w as u64;
        let start = self.read;
        self.read += w;
        self.ring_slices(start, w)
    }

    /// Non-destructive read of `w` contiguous elements at scalar offset
    /// `off`.
    pub fn vpeek(&self, off: usize, w: usize) -> Vec<Value> {
        let (a, b) = self.vpeek_slices(off, w);
        let mut out = Vec::with_capacity(w);
        out.extend_from_slice(a);
        out.extend_from_slice(b);
        out
    }

    /// [`Tape::vpeek`] as at most two contiguous ring slices.
    ///
    /// # Panics
    /// Panics like [`Tape::vpeek`].
    #[inline]
    pub fn vpeek_slices(&self, off: usize, w: usize) -> (&[Value], &[Value]) {
        assert!(
            self.read_reorder.is_none(),
            "vpeek on a read-reordered tape"
        );
        assert!(
            self.read + off + w <= self.filled_end,
            "vpeek beyond buffer"
        );
        self.ring_slices(self.read + off, w)
    }

    /// The `w` elements starting at absolute index `start`, as one or two
    /// contiguous slices (two when the span wraps the ring boundary).
    #[inline]
    fn ring_slices(&self, start: usize, w: usize) -> (&[Value], &[Value]) {
        if w == 0 {
            return (&[], &[]);
        }
        let s = start & self.mask;
        let first = w.min(self.buf.len() - s);
        let (a, b) = (&self.buf[s..s + first], &self.buf[..w - first]);
        debug_assert_eq!(a.len() + b.len(), w, "ring slices must cover w");
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(x: i32) -> Value {
        Value::I32(x)
    }

    #[test]
    fn fifo_order() {
        let mut t = Tape::new(ScalarTy::I32);
        for i in 0..5 {
            t.push(iv(i));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.peek(3), iv(3));
        for i in 0..5 {
            assert_eq!(t.pop(), iv(i));
        }
        assert!(t.is_empty());
        assert_eq!(t.stats(), (5, 5));
    }

    #[test]
    fn rpush_then_advance() {
        // The SIMDized-actor pattern: 3 rpushes + 1 push per lane set,
        // then advance_write over the strided region.
        let mut t = Tape::new(ScalarTy::I32);
        // Writes of Figure 3b for q=2, SW=4: r0 lanes at offsets 6,4,2,push;
        // r1 lanes at offsets 6,4,2,push; then advance 6.
        t.rpush(iv(6), 6);
        t.rpush(iv(4), 4);
        t.rpush(iv(2), 2);
        t.push(iv(0));
        t.rpush(iv(7), 6);
        t.rpush(iv(5), 4);
        t.rpush(iv(3), 2);
        t.push(iv(1));
        t.advance_write(6);
        assert_eq!(t.len(), 8);
        let got: Vec<Value> = (0..8).map(|_| t.pop()).collect();
        assert_eq!(got, (0..8).map(iv).collect::<Vec<_>>());
    }

    #[test]
    fn vector_ops_roundtrip() {
        let mut t = Tape::new(ScalarTy::I32);
        t.vpush(&[iv(1), iv(2), iv(3), iv(4)]);
        assert_eq!(t.vpeek(1, 2), vec![iv(2), iv(3)]);
        assert_eq!(t.vpop(4), vec![iv(1), iv(2), iv(3), iv(4)]);
    }

    #[test]
    fn read_reorder_recovers_logical_order() {
        // Producer is vectorized with rate 3, SW 4: its 4 parallel firings
        // push rows [e0 e3 e6 e9][e1 e4 e7 e10][e2 e5 e8 e11] — i.e. vector
        // i holds lanes' i-th pushes. Consumer must read e0..e11.
        let mut t = Tape::new(ScalarTy::I32);
        t.set_read_reorder(3, 4);
        // Physical layout written by 3 vpushes: row i lane j = element j*3+i.
        for i in 0..3 {
            let row: Vec<Value> = (0..4).map(|j| iv(j * 3 + i)).collect();
            t.vpush(&row);
        }
        let got: Vec<Value> = (0..12).map(|_| t.pop()).collect();
        assert_eq!(got, (0..12).map(iv).collect::<Vec<_>>());
        assert!(t.is_empty());
    }

    #[test]
    fn read_reorder_peek() {
        let mut t = Tape::new(ScalarTy::I32);
        t.set_read_reorder(2, 4);
        for i in 0..2 {
            let row: Vec<Value> = (0..4).map(|j| iv(j * 2 + i)).collect();
            t.vpush(&row);
        }
        assert_eq!(t.peek(0), iv(0));
        assert_eq!(t.peek(5), iv(5));
        assert_eq!(t.pop(), iv(0));
        assert_eq!(t.peek(0), iv(1));
    }

    #[test]
    fn write_reorder_produces_vector_layout() {
        // Scalar producer pushes e0..e11; vectorized consumer with rate 3,
        // SW 4 vpops rows whose lane j is element j*3+i.
        let mut t = Tape::new(ScalarTy::I32);
        t.set_write_reorder(3, 4);
        for k in 0..12 {
            t.push(iv(k));
        }
        for i in 0..3 {
            let want: Vec<Value> = (0..4).map(|j| iv(j * 3 + i)).collect();
            assert_eq!(t.vpop(4), want, "row {i}");
        }
    }

    #[test]
    fn write_reorder_commits_only_full_blocks() {
        let mut t = Tape::new(ScalarTy::I32);
        t.set_write_reorder(2, 4);
        for k in 0..7 {
            t.push(iv(k));
        }
        assert_eq!(t.len(), 0, "partial block must not be visible");
        t.push(iv(7));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn advance_read_under_reorder() {
        let mut t = Tape::new(ScalarTy::I32);
        t.set_read_reorder(2, 4);
        for i in 0..2 {
            let row: Vec<Value> = (0..4).map(|j| iv(j * 2 + i)).collect();
            t.vpush(&row);
        }
        // Strided-peek consumption: peek ahead, then advance.
        assert_eq!(t.peek(2), iv(2));
        t.advance_read(8);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "pop from empty tape")]
    fn pop_empty_panics() {
        let mut t = Tape::new(ScalarTy::F32);
        let _ = t.pop();
    }

    #[test]
    #[should_panic(expected = "cannot reorder both ends")]
    fn double_reorder_rejected() {
        let mut t = Tape::new(ScalarTy::F32);
        t.set_read_reorder(2, 4);
        t.set_write_reorder(2, 4);
    }

    #[test]
    fn ring_wraps_without_growing() {
        // Interleaved push/pop far beyond the initial capacity must stay
        // FIFO-correct while the absolute pointers wrap the ring mask.
        let mut t = Tape::new(ScalarTy::I32);
        for i in 0..4 {
            t.push(iv(i));
        }
        for i in 4..1000 {
            t.push(iv(i));
            assert_eq!(t.pop(), iv(i - 4));
            assert_eq!(t.len(), 4);
        }
        for i in 996..1000 {
            assert_eq!(t.pop(), iv(i));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn slice_fast_paths_match_vec_paths() {
        let mut t = Tape::new(ScalarTy::I32);
        // Rotate the read pointer so the vector spans wrap.
        for i in 0..6 {
            t.push(iv(i));
        }
        for _ in 0..5 {
            t.pop();
        }
        for i in 6..12 {
            t.push(iv(i));
        }
        let (a, b) = t.vpeek_slices(1, 4);
        let flat: Vec<Value> = a.iter().chain(b).copied().collect();
        assert_eq!(flat, t.vpeek(1, 4));
        let want = t.vpeek(0, 7);
        let (a, b) = t.vpop_slices(7);
        let flat: Vec<Value> = a.iter().chain(b).copied().collect();
        assert_eq!(flat, want);
        assert!(t.is_empty());
    }

    #[test]
    fn vpush_many_matches_vpush() {
        let mut t = Tape::new(ScalarTy::I32);
        t.vpush_many(4, |lane| iv(lane as i32 * 10));
        assert_eq!(t.vpop(4), vec![iv(0), iv(10), iv(20), iv(30)]);
        assert_eq!(t.stats(), (4, 4));
    }
}
