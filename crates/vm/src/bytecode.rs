//! Flat, register-based bytecode for compiled work functions.
//!
//! The tree-walking interpreter ([`crate::interp`]) pays enum dispatch,
//! `RtVal::V(Vec<Value>)` heap allocation, and per-node temporaries on
//! every operation. The bytecode VM removes all of that: values live
//! unboxed in two register files (`Vec<i64>` / `Vec<f64>`), vectors are
//! `width` consecutive registers, variable slots are resolved to fixed
//! bases at compile time, and cycle charges are pre-aggregated per basic
//! block into [`ChargeEntry`] records applied by a single [`Op::Charge`].
//!
//! # Value representation
//!
//! * `i32` values are stored sign-extended in `i64` registers; arithmetic
//!   is performed in the `i32` domain and re-extended, so wrapping
//!   semantics match [`macross_streamir::expr::eval_binop`] exactly.
//! * `f32` values are stored exactly widened in `f64` registers (every
//!   `f32` is exactly representable as `f64`); arithmetic is performed in
//!   the `f32` domain and re-widened. Comparisons run on the widened
//!   values, which is what the tree-walker's `fcmp` does too.
//!
//! These invariants make every encode/decode at a tape or channel
//! boundary lossless, so a compiled filter is bit-identical to the
//! tree-walked one (the differential suite in `tests/differential.rs`
//! enforces this).
//!
//! # Cycle accounting
//!
//! The compiler sums the per-op charges of each basic block at compile
//! time. Address-generation overhead on reordered tapes depends on the
//! edge (`in_cost` / `out_cost`), so [`ChargeEntry`] records *counts* of
//! input/output accesses and the VM multiplies at run time. All charges
//! are plain `u64` additions, so aggregation order cannot change totals;
//! on a successful firing the counters are bit-identical to the
//! tree-walker's. Runs that abort with a [`VmError`] never surface their
//! counters, so mid-block divergence there is unobservable.

use crate::error::{TapeSide, VmError};
use crate::kernel::{self, Kernel, KernelTier};
use crate::machine::CycleCounters;
use crate::tape::Tape;
use macross_streamir::expr::{BinOp, Intrinsic};
use macross_streamir::types::{ScalarTy, Value};
use std::collections::VecDeque;

/// The two unboxed register files of a compiled filter.
#[derive(Debug, Clone, Default)]
pub struct Regs {
    /// Integer registers (`i32` values sign-extended).
    pub i: Vec<i64>,
    /// Float registers (`f32` values exactly widened).
    pub f: Vec<f64>,
}

impl Regs {
    /// Zeroed register files of the given sizes.
    pub fn new(int_regs: usize, float_regs: usize) -> Regs {
        Regs {
            i: vec![0; int_regs],
            f: vec![0.0; float_regs],
        }
    }
}

/// Pre-aggregated cycle charges of one basic block.
///
/// `in_addr` / `out_addr` count scalar accesses to the input/output tape
/// that pay the per-edge reorder address cost; the VM multiplies them by
/// the runtime `in_cost` / `out_cost` (exactly what the tree-walker adds
/// one access at a time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChargeEntry {
    /// Fixed charges of the block.
    pub counters: CycleCounters,
    /// Scalar input-tape accesses paying the input reorder address cost.
    pub in_addr: u64,
    /// Scalar output-tape accesses paying the output reorder address cost.
    pub out_addr: u64,
}

impl ChargeEntry {
    /// True if applying this entry would change nothing.
    pub fn is_zero(&self) -> bool {
        self.counters == CycleCounters::default() && self.in_addr == 0 && self.out_addr == 0
    }
}

/// A filter's compiled firing plan: bytecode for `init` and `work`, the
/// shared charge table, register-file sizes, and which register ranges
/// hold `Local` variables (zeroed before every firing, like
/// [`crate::interp::reset_locals`]).
#[derive(Debug, Clone)]
pub struct CompiledFilter {
    /// Filter name (for errors and panics).
    pub name: String,
    /// Integer register file size.
    pub int_regs: u32,
    /// Float register file size.
    pub float_regs: u32,
    /// `(base, len)` integer ranges of `Local` variables.
    pub zero_i: Vec<(u32, u32)>,
    /// `(base, len)` float ranges of `Local` variables.
    pub zero_f: Vec<(u32, u32)>,
    /// Compiled `init` body.
    pub init: Vec<Op>,
    /// Compiled `work` body.
    pub work: Vec<Op>,
    /// Charge table indexed by [`Op::Charge`].
    pub charges: Vec<ChargeEntry>,
    /// Fused superblock kernels indexed by [`Op::Kernel`] (shared by
    /// `init` and `work`; empty when fusion is disabled).
    pub kernels: Vec<Kernel>,
    /// Backend-matrix tier executing the fused kernels, selected at
    /// compile time.
    pub tier: KernelTier,
}

impl CompiledFilter {
    /// Zero the `Local` variable ranges (between firings).
    pub fn zero_locals(&self, regs: &mut Regs) {
        for &(base, len) in &self.zero_i {
            regs.i[base as usize..(base + len) as usize].fill(0);
        }
        for &(base, len) in &self.zero_f {
            regs.f[base as usize..(base + len) as usize].fill(0.0);
        }
    }
}

/// One bytecode instruction.
///
/// Register operands are indices into [`Regs`]; vector operands name the
/// first of `w` consecutive registers. Destination registers of value-
/// producing ops are always fresh temporaries (the compiler never aliases
/// a destination with a live source), so vector ops can write in-place
/// lane by lane.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Apply `charges[idx]` to the counters.
    Charge(u32),

    /// Execute fused superblock `kernels[idx]` and skip its span. The
    /// fused ops remain in place right after this marker (so jump
    /// targets stay valid); the interpreter advances `pc` past them.
    Kernel(u32),

    // --- Constants and moves -------------------------------------------
    /// `i[dst] = v`.
    ConstI {
        dst: u32,
        v: i64,
    },
    /// `f[dst] = v`.
    ConstF {
        dst: u32,
        v: f64,
    },
    /// `i[dst..dst+len] = vals`.
    ConstVecI {
        dst: u32,
        vals: Box<[i64]>,
    },
    /// `f[dst..dst+len] = vals`.
    ConstVecF {
        dst: u32,
        vals: Box<[f64]>,
    },
    /// `i[dst] = i[src]` (free: register move).
    MovI {
        dst: u32,
        src: u32,
    },
    /// `f[dst] = f[src]`.
    MovF {
        dst: u32,
        src: u32,
    },
    /// `i[dst..dst+w] = i[src..src+w]`.
    MovNI {
        dst: u32,
        src: u32,
        w: u32,
    },
    /// `f[dst..dst+w] = f[src..src+w]`.
    MovNF {
        dst: u32,
        src: u32,
        w: u32,
    },
    /// `i[dst] = f[a] as i64` (free conversion for indices/counts; the
    /// tree-walker's `Value::as_i64` is uncharged too).
    FToI {
        dst: u32,
        a: u32,
    },

    // --- Scalar arithmetic ---------------------------------------------
    /// Integer binary op in the `ty` domain; comparisons yield 0/1.
    BinI {
        op: BinOp,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Float arithmetic in the `ty` domain.
    BinF {
        op: BinOp,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Float comparison: `i[dst] = op(f[a], f[b]) as i64`.
    CmpF {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Wrapping negate in the `ty` domain.
    NegI {
        ty: ScalarTy,
        dst: u32,
        a: u32,
    },
    /// `f[dst] = -f[a]`.
    NegF {
        dst: u32,
        a: u32,
    },
    /// Bitwise complement in the `ty` domain.
    NotI {
        ty: ScalarTy,
        dst: u32,
        a: u32,
    },
    /// `i[dst] = (i[a] == 0) as i64`.
    LogNotI {
        dst: u32,
        a: u32,
    },
    /// `i[dst] = (f[a] == 0.0) as i64` (NaN is truthy, -0.0 falsy).
    LogNotF {
        dst: u32,
        a: u32,
    },

    // --- Vector arithmetic (lane-wise over w registers) ----------------
    VBinI {
        op: BinOp,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    VBinF {
        op: BinOp,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    VCmpF {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    VNegI {
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    VNegF {
        dst: u32,
        a: u32,
        w: u32,
    },
    VNotI {
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    VLogNotI {
        dst: u32,
        a: u32,
        w: u32,
    },
    VLogNotF {
        dst: u32,
        a: u32,
        w: u32,
    },

    // --- Casts ---------------------------------------------------------
    /// Int-to-int cast (only I64 -> I32 truncates).
    CastII {
        from: ScalarTy,
        to: ScalarTy,
        dst: u32,
        a: u32,
    },
    /// Int-to-float cast.
    CastIF {
        to: ScalarTy,
        dst: u32,
        a: u32,
    },
    /// Float-to-int cast (saturating, like Rust `as`).
    CastFI {
        to: ScalarTy,
        dst: u32,
        a: u32,
    },
    /// Float-to-float cast (F32 destination rounds through `f32`).
    CastFF {
        to: ScalarTy,
        dst: u32,
        a: u32,
    },
    VCastII {
        from: ScalarTy,
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    VCastIF {
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    VCastFI {
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    VCastFF {
        to: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },

    // --- Intrinsics ----------------------------------------------------
    /// Unary integer intrinsic (Abs).
    Call1I {
        i: Intrinsic,
        ty: ScalarTy,
        dst: u32,
        a: u32,
    },
    /// Binary integer intrinsic (Min/Max; order-preserving on the
    /// sign-extended representation).
    Call2I {
        i: Intrinsic,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Unary float intrinsic in the `ty` domain.
    Call1F {
        i: Intrinsic,
        ty: ScalarTy,
        dst: u32,
        a: u32,
    },
    /// Binary float intrinsic (Min/Max/Pow) in the `ty` domain.
    Call2F {
        i: Intrinsic,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
    },
    VCall1I {
        i: Intrinsic,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    VCall2I {
        i: Intrinsic,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    VCall1F {
        i: Intrinsic,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        w: u32,
    },
    VCall2F {
        i: Intrinsic,
        ty: ScalarTy,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },

    // --- Packing and permutation ---------------------------------------
    /// `i[dst..dst+w] = i[a]` broadcast.
    SplatI {
        dst: u32,
        a: u32,
        w: u32,
    },
    SplatF {
        dst: u32,
        a: u32,
        w: u32,
    },
    /// `extract_even` (parity 0) / `extract_odd` (parity 1) of the
    /// concatenation of two `w`-lane vectors. `dst` is always a fresh
    /// temporary, so it cannot alias `a` or `b`.
    PermI {
        parity: u32,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },
    PermF {
        parity: u32,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
    },

    // --- Array variables (register-file windows) -----------------------
    /// `i[dst] = i[base + i[idx]]`, bounds-checked against `len`.
    LoadIdxI {
        dst: u32,
        base: u32,
        len: u32,
        idx: u32,
    },
    LoadIdxF {
        dst: u32,
        base: u32,
        len: u32,
        idx: u32,
    },
    /// Vector-array element load: `i[dst..dst+w] = i[base + i[idx]*w ..]`.
    LoadVElemI {
        dst: u32,
        base: u32,
        len: u32,
        idx: u32,
        w: u32,
    },
    LoadVElemF {
        dst: u32,
        base: u32,
        len: u32,
        idx: u32,
        w: u32,
    },
    /// Unit-stride vector load from a scalar array (`VIndex`).
    LoadVSliceI {
        dst: u32,
        base: u32,
        len: u32,
        idx: u32,
        w: u32,
    },
    LoadVSliceF {
        dst: u32,
        base: u32,
        len: u32,
        idx: u32,
        w: u32,
    },
    StoreIdxI {
        base: u32,
        len: u32,
        idx: u32,
        src: u32,
    },
    StoreIdxF {
        base: u32,
        len: u32,
        idx: u32,
        src: u32,
    },
    StoreVElemI {
        base: u32,
        len: u32,
        idx: u32,
        src: u32,
        w: u32,
    },
    StoreVElemF {
        base: u32,
        len: u32,
        idx: u32,
        src: u32,
        w: u32,
    },
    StoreVSliceI {
        base: u32,
        len: u32,
        idx: u32,
        src: u32,
        w: u32,
    },
    StoreVSliceF {
        base: u32,
        len: u32,
        idx: u32,
        src: u32,
        w: u32,
    },
    /// `i[base + i[idx]*w + lane] = i[src]` (lane store into a
    /// vector-array element).
    LaneStoreI {
        base: u32,
        len: u32,
        idx: u32,
        lane: u32,
        w: u32,
        src: u32,
    },
    LaneStoreF {
        base: u32,
        len: u32,
        idx: u32,
        lane: u32,
        w: u32,
        src: u32,
    },

    // --- Input tape ----------------------------------------------------
    PopI {
        ty: ScalarTy,
        dst: u32,
    },
    PopF {
        ty: ScalarTy,
        dst: u32,
    },
    /// `off` is an integer register holding the peek offset.
    PeekI {
        ty: ScalarTy,
        dst: u32,
        off: u32,
    },
    PeekF {
        ty: ScalarTy,
        dst: u32,
        off: u32,
    },
    VPopI {
        ty: ScalarTy,
        dst: u32,
        w: u32,
    },
    VPopF {
        ty: ScalarTy,
        dst: u32,
        w: u32,
    },
    VPeekI {
        ty: ScalarTy,
        dst: u32,
        off: u32,
        w: u32,
    },
    VPeekF {
        ty: ScalarTy,
        dst: u32,
        off: u32,
        w: u32,
    },
    AdvRead {
        n: u32,
    },

    // --- Output tape ---------------------------------------------------
    PushI {
        ty: ScalarTy,
        src: u32,
    },
    PushF {
        ty: ScalarTy,
        src: u32,
    },
    RPushI {
        ty: ScalarTy,
        src: u32,
        off: u32,
    },
    RPushF {
        ty: ScalarTy,
        src: u32,
        off: u32,
    },
    VPushI {
        ty: ScalarTy,
        src: u32,
        w: u32,
    },
    VPushF {
        ty: ScalarTy,
        src: u32,
        w: u32,
    },
    AdvWrite {
        n: u32,
    },

    // --- Internal channels ---------------------------------------------
    LPopI {
        ty: ScalarTy,
        chan: u32,
        dst: u32,
    },
    LPopF {
        ty: ScalarTy,
        chan: u32,
        dst: u32,
    },
    LVPopI {
        ty: ScalarTy,
        chan: u32,
        dst: u32,
        w: u32,
    },
    LVPopF {
        ty: ScalarTy,
        chan: u32,
        dst: u32,
        w: u32,
    },
    LPushI {
        ty: ScalarTy,
        chan: u32,
        src: u32,
    },
    LPushF {
        ty: ScalarTy,
        chan: u32,
        src: u32,
    },
    LVPushI {
        ty: ScalarTy,
        chan: u32,
        src: u32,
        w: u32,
    },
    LVPushF {
        ty: ScalarTy,
        chan: u32,
        src: u32,
        w: u32,
    },

    // --- Control flow ---------------------------------------------------
    Jump {
        target: u32,
    },
    /// Jump if `i[cond] == 0`.
    JumpIfZI {
        cond: u32,
        target: u32,
    },
    /// Jump if `f[cond] == 0.0`.
    JumpIfZF {
        cond: u32,
        target: u32,
    },
    /// Jump to `exit` if `i[counter] >= i[limit]` (handles `count <= 0`).
    LoopHead {
        counter: u32,
        limit: u32,
        exit: u32,
    },
    /// `i[counter] += 1; goto head`.
    LoopBack {
        counter: u32,
        head: u32,
    },
    /// `i[var] = (i[counter] as i32) as i64` — the loop variable is
    /// declared `i32`, mirroring the tree-walker's `Value::I32(i as i32)`.
    SetLoopVar {
        var: u32,
        counter: u32,
    },
}

// ---------------------------------------------------------------------
// Exact-semantics scalar helpers. Every function here mirrors one code
// path of `eval_binop` / `eval_unop` / `eval_intrinsic` / `Value::cast`
// on the register representation; any change must keep the differential
// suite green.
// ---------------------------------------------------------------------

fn cmp_ord(op: BinOp, lt: bool, eq: bool) -> bool {
    match op {
        BinOp::Eq => eq,
        BinOp::Ne => !eq,
        BinOp::Lt => lt,
        BinOp::Le => lt || eq,
        BinOp::Gt => !lt && !eq,
        BinOp::Ge => !lt,
        _ => unreachable!("not a comparison: {op:?}"),
    }
}

pub(crate) fn bin_i(op: BinOp, ty: ScalarTy, a: i64, b: i64) -> i64 {
    use BinOp::*;
    if op.is_comparison() {
        // Sign extension preserves order, so i64 comparison is exact for
        // both widths.
        return cmp_ord(op, a < b, a == b) as i64;
    }
    if ty == ScalarTy::I32 {
        let x = a as i32;
        let y = b as i32;
        let r = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_div(y)
                }
            }
            Rem => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_rem(y)
                }
            }
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            _ => unreachable!(),
        };
        r as i64
    } else {
        match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            And => a & b,
            Or => a | b,
            Xor => a ^ b,
            Shl => a.wrapping_shl(b as u32),
            Shr => a.wrapping_shr(b as u32),
            _ => unreachable!(),
        }
    }
}

pub(crate) fn bin_f(op: BinOp, ty: ScalarTy, a: f64, b: f64) -> f64 {
    use BinOp::*;
    if ty == ScalarTy::F32 {
        let x = a as f32;
        let y = b as f32;
        (match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Rem => x % y,
            _ => unreachable!("integer-only operator {op:?} on f32"),
        }) as f64
    } else {
        match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => a / b,
            Rem => a % b,
            _ => unreachable!("integer-only operator {op:?} on f64"),
        }
    }
}

/// Integer compare producing the portable 0/1 lane. Registers hold
/// sign-extended values and sign extension preserves order, so the i64
/// predicate is exact for both integer widths.
pub(crate) fn cmp_i(op: BinOp, a: i64, b: i64) -> i64 {
    cmp_ord(op, a < b, a == b) as i64
}

pub(crate) fn cmp_f(op: BinOp, a: f64, b: f64) -> i64 {
    // The tree-walker compares f32 operands after widening to f64; the
    // registers already hold the widened values.
    let r = match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!("not a comparison: {op:?}"),
    };
    r as i64
}

pub(crate) fn neg_i(ty: ScalarTy, x: i64) -> i64 {
    if ty == ScalarTy::I32 {
        ((x as i32).wrapping_neg()) as i64
    } else {
        x.wrapping_neg()
    }
}

pub(crate) fn not_i(ty: ScalarTy, x: i64) -> i64 {
    if ty == ScalarTy::I32 {
        (!(x as i32)) as i64
    } else {
        !x
    }
}

pub(crate) fn cast_ii(from: ScalarTy, to: ScalarTy, x: i64) -> i64 {
    if from == ScalarTy::I64 && to == ScalarTy::I32 {
        (x as i32) as i64
    } else {
        x
    }
}

pub(crate) fn cast_if(to: ScalarTy, x: i64) -> f64 {
    if to == ScalarTy::F32 {
        (x as f32) as f64
    } else {
        x as f64
    }
}

pub(crate) fn cast_fi(to: ScalarTy, x: f64) -> i64 {
    if to == ScalarTy::I32 {
        (x as i32) as i64
    } else {
        x as i64
    }
}

pub(crate) fn cast_ff(to: ScalarTy, x: f64) -> f64 {
    if to == ScalarTy::F32 {
        (x as f32) as f64
    } else {
        x
    }
}

pub(crate) fn call1_i(ty: ScalarTy, x: i64) -> i64 {
    // Abs is the only unary integer intrinsic the compiler accepts.
    if ty == ScalarTy::I32 {
        ((x as i32).wrapping_abs()) as i64
    } else {
        x.wrapping_abs()
    }
}

pub(crate) fn call2_i(i: Intrinsic, a: i64, b: i64) -> i64 {
    // Min/Max: order-preserving on the sign-extended representation.
    match i {
        Intrinsic::Min => a.min(b),
        Intrinsic::Max => a.max(b),
        _ => unreachable!("integer intrinsic {i:?}"),
    }
}

pub(crate) fn call1_f(i: Intrinsic, ty: ScalarTy, x: f64) -> f64 {
    if i == Intrinsic::Abs {
        return if ty == ScalarTy::F32 {
            ((x as f32).abs()) as f64
        } else {
            x.abs()
        };
    }
    let r = match i {
        Intrinsic::Sin => x.sin(),
        Intrinsic::Cos => x.cos(),
        Intrinsic::Atan => x.atan(),
        Intrinsic::Sqrt => x.sqrt(),
        Intrinsic::Exp => x.exp(),
        Intrinsic::Log => x.ln(),
        Intrinsic::Floor => x.floor(),
        _ => unreachable!("unary float intrinsic {i:?}"),
    };
    // eval_intrinsic computes transcendentals in f64 and rounds once to
    // f32 for F32 operands.
    if ty == ScalarTy::F32 {
        (r as f32) as f64
    } else {
        r
    }
}

pub(crate) fn call2_f(i: Intrinsic, ty: ScalarTy, a: f64, b: f64) -> f64 {
    // Min/Max/Pow are evaluated in the operand's own domain: f64::min on
    // widened f32 values could pick the other operand of a +/-0.0 pair.
    if ty == ScalarTy::F32 {
        let x = a as f32;
        let y = b as f32;
        (match i {
            Intrinsic::Min => x.min(y),
            Intrinsic::Max => x.max(y),
            Intrinsic::Pow => x.powf(y),
            _ => unreachable!("binary float intrinsic {i:?}"),
        }) as f64
    } else {
        match i {
            Intrinsic::Min => a.min(b),
            Intrinsic::Max => a.max(b),
            Intrinsic::Pow => a.powf(b),
            _ => unreachable!("binary float intrinsic {i:?}"),
        }
    }
}

/// Decode a tape/channel [`Value`] into an integer register.
///
/// # Panics
/// Panics if the value's type does not match the compiled element type.
/// The compiler only emits typed tape ops when the edge element type is
/// known, so this fires only for ill-typed programs (a producer pushing a
/// mismatched value onto a typed edge), which the tree-walker does not
/// diagnose either — it would silently propagate the wrong type.
fn decode_i(v: Value, ty: ScalarTy, filter: &str) -> i64 {
    match (ty, v) {
        (ScalarTy::I32, Value::I32(x)) => x as i64,
        (ScalarTy::I64, Value::I64(x)) => x,
        _ => panic!(
            "tape/channel value {v:?} does not match compiled element type {ty} in filter {filter}"
        ),
    }
}

/// Decode a tape/channel [`Value`] into a float register.
///
/// # Panics
/// Same contract as [`decode_i`].
fn decode_f(v: Value, ty: ScalarTy, filter: &str) -> f64 {
    match (ty, v) {
        (ScalarTy::F32, Value::F32(x)) => x as f64,
        (ScalarTy::F64, Value::F64(x)) => x,
        _ => panic!(
            "tape/channel value {v:?} does not match compiled element type {ty} in filter {filter}"
        ),
    }
}

fn encode_i(ty: ScalarTy, x: i64) -> Value {
    if ty == ScalarTy::I32 {
        Value::I32(x as i32)
    } else {
        Value::I64(x)
    }
}

fn encode_f(ty: ScalarTy, x: f64) -> Value {
    if ty == ScalarTy::F32 {
        Value::F32(x as f32)
    } else {
        Value::F64(x)
    }
}

fn array_index(idx: i64, len: u32, filter: &str) -> usize {
    let k = idx as usize;
    assert!(
        k < len as usize,
        "array index {idx} out of bounds (len {len}) in filter {filter}"
    );
    k
}

fn slice_index(idx: i64, w: u32, len: u32, filter: &str) -> usize {
    let k = idx as usize;
    assert!(
        k <= len as usize && len as usize - k >= w as usize,
        "vector slice {idx}..+{w} out of bounds (len {len}) in filter {filter}"
    );
    k
}

/// Execute one compiled body (`plan.init` or `plan.work`).
///
/// `in_cost` / `out_cost` are the per-access reorder address costs of the
/// input/output edge (see [`crate::firing::edge_addr_cost`]).
///
/// # Errors
/// Returns [`VmError::MissingTape`] when a tape op runs without the
/// corresponding tape (e.g. tape ops inside `init`, which always runs
/// tape-less) and [`VmError::ChannelUnderflow`] on internal-channel
/// underflow — the same failures, with the same payloads, as the
/// tree-walker.
///
/// # Panics
/// Panics where the tree-walker panics: empty-tape pops, out-of-bounds
/// array accesses, reorder-mode violations.
#[allow(clippy::too_many_arguments)]
pub fn run_code(
    plan: &CompiledFilter,
    code: &[Op],
    regs: &mut Regs,
    chans: &mut [VecDeque<Value>],
    mut input: Option<&mut Tape>,
    mut output: Option<&mut Tape>,
    in_cost: u64,
    out_cost: u64,
    counters: &mut CycleCounters,
) -> Result<(), VmError> {
    macro_rules! tape {
        ($side:ident, $v:expr) => {
            match $v.as_deref_mut() {
                Some(t) => t,
                None => {
                    return Err(VmError::MissingTape {
                        filter: plan.name.clone(),
                        side: TapeSide::$side,
                    })
                }
            }
        };
    }
    macro_rules! underflow {
        ($chan:expr) => {
            return Err(VmError::ChannelUnderflow {
                filter: plan.name.clone(),
                chan: $chan,
            })
        };
    }

    let mut pc = 0usize;
    while pc < code.len() {
        match &code[pc] {
            Op::Charge(idx) => {
                let e = &plan.charges[*idx as usize];
                counters.absorb(&e.counters);
                counters.addr_overhead += e.in_addr * in_cost + e.out_addr * out_cost;
            }

            Op::Kernel(idx) => {
                let k = &plan.kernels[*idx as usize];
                kernel::exec(k, plan.tier, regs);
                pc += k.span as usize;
                continue;
            }

            Op::ConstI { dst, v } => regs.i[*dst as usize] = *v,
            Op::ConstF { dst, v } => regs.f[*dst as usize] = *v,
            Op::ConstVecI { dst, vals } => {
                regs.i[*dst as usize..*dst as usize + vals.len()].copy_from_slice(vals);
            }
            Op::ConstVecF { dst, vals } => {
                regs.f[*dst as usize..*dst as usize + vals.len()].copy_from_slice(vals);
            }
            Op::MovI { dst, src } => regs.i[*dst as usize] = regs.i[*src as usize],
            Op::MovF { dst, src } => regs.f[*dst as usize] = regs.f[*src as usize],
            Op::MovNI { dst, src, w } => {
                regs.i
                    .copy_within(*src as usize..(*src + *w) as usize, *dst as usize);
            }
            Op::MovNF { dst, src, w } => {
                regs.f
                    .copy_within(*src as usize..(*src + *w) as usize, *dst as usize);
            }
            Op::FToI { dst, a } => regs.i[*dst as usize] = regs.f[*a as usize] as i64,

            Op::BinI { op, ty, dst, a, b } => {
                regs.i[*dst as usize] = bin_i(*op, *ty, regs.i[*a as usize], regs.i[*b as usize]);
            }
            Op::BinF { op, ty, dst, a, b } => {
                regs.f[*dst as usize] = bin_f(*op, *ty, regs.f[*a as usize], regs.f[*b as usize]);
            }
            Op::CmpF { op, dst, a, b } => {
                regs.i[*dst as usize] = cmp_f(*op, regs.f[*a as usize], regs.f[*b as usize]);
            }
            Op::NegI { ty, dst, a } => regs.i[*dst as usize] = neg_i(*ty, regs.i[*a as usize]),
            Op::NegF { dst, a } => regs.f[*dst as usize] = -regs.f[*a as usize],
            Op::NotI { ty, dst, a } => regs.i[*dst as usize] = not_i(*ty, regs.i[*a as usize]),
            Op::LogNotI { dst, a } => {
                regs.i[*dst as usize] = (regs.i[*a as usize] == 0) as i64;
            }
            Op::LogNotF { dst, a } => {
                regs.i[*dst as usize] = (regs.f[*a as usize] == 0.0) as i64;
            }

            Op::VBinI {
                op,
                ty,
                dst,
                a,
                b,
                w,
            } => {
                for k in 0..*w as usize {
                    regs.i[*dst as usize + k] =
                        bin_i(*op, *ty, regs.i[*a as usize + k], regs.i[*b as usize + k]);
                }
            }
            Op::VBinF {
                op,
                ty,
                dst,
                a,
                b,
                w,
            } => {
                for k in 0..*w as usize {
                    regs.f[*dst as usize + k] =
                        bin_f(*op, *ty, regs.f[*a as usize + k], regs.f[*b as usize + k]);
                }
            }
            Op::VCmpF { op, dst, a, b, w } => {
                for k in 0..*w as usize {
                    regs.i[*dst as usize + k] =
                        cmp_f(*op, regs.f[*a as usize + k], regs.f[*b as usize + k]);
                }
            }
            Op::VNegI { ty, dst, a, w } => {
                for k in 0..*w as usize {
                    regs.i[*dst as usize + k] = neg_i(*ty, regs.i[*a as usize + k]);
                }
            }
            Op::VNegF { dst, a, w } => {
                for k in 0..*w as usize {
                    regs.f[*dst as usize + k] = -regs.f[*a as usize + k];
                }
            }
            Op::VNotI { ty, dst, a, w } => {
                for k in 0..*w as usize {
                    regs.i[*dst as usize + k] = not_i(*ty, regs.i[*a as usize + k]);
                }
            }
            Op::VLogNotI { dst, a, w } => {
                for k in 0..*w as usize {
                    regs.i[*dst as usize + k] = (regs.i[*a as usize + k] == 0) as i64;
                }
            }
            Op::VLogNotF { dst, a, w } => {
                for k in 0..*w as usize {
                    regs.i[*dst as usize + k] = (regs.f[*a as usize + k] == 0.0) as i64;
                }
            }

            Op::CastII { from, to, dst, a } => {
                regs.i[*dst as usize] = cast_ii(*from, *to, regs.i[*a as usize]);
            }
            Op::CastIF { to, dst, a } => {
                regs.f[*dst as usize] = cast_if(*to, regs.i[*a as usize]);
            }
            Op::CastFI { to, dst, a } => {
                regs.i[*dst as usize] = cast_fi(*to, regs.f[*a as usize]);
            }
            Op::CastFF { to, dst, a } => {
                regs.f[*dst as usize] = cast_ff(*to, regs.f[*a as usize]);
            }
            Op::VCastII {
                from,
                to,
                dst,
                a,
                w,
            } => {
                for k in 0..*w as usize {
                    regs.i[*dst as usize + k] = cast_ii(*from, *to, regs.i[*a as usize + k]);
                }
            }
            Op::VCastIF { to, dst, a, w } => {
                for k in 0..*w as usize {
                    regs.f[*dst as usize + k] = cast_if(*to, regs.i[*a as usize + k]);
                }
            }
            Op::VCastFI { to, dst, a, w } => {
                for k in 0..*w as usize {
                    regs.i[*dst as usize + k] = cast_fi(*to, regs.f[*a as usize + k]);
                }
            }
            Op::VCastFF { to, dst, a, w } => {
                for k in 0..*w as usize {
                    regs.f[*dst as usize + k] = cast_ff(*to, regs.f[*a as usize + k]);
                }
            }

            Op::Call1I { i, ty, dst, a } => {
                debug_assert_eq!(*i, Intrinsic::Abs);
                regs.i[*dst as usize] = call1_i(*ty, regs.i[*a as usize]);
            }
            Op::Call2I { i, dst, a, b } => {
                regs.i[*dst as usize] = call2_i(*i, regs.i[*a as usize], regs.i[*b as usize]);
            }
            Op::Call1F { i, ty, dst, a } => {
                regs.f[*dst as usize] = call1_f(*i, *ty, regs.f[*a as usize]);
            }
            Op::Call2F { i, ty, dst, a, b } => {
                regs.f[*dst as usize] = call2_f(*i, *ty, regs.f[*a as usize], regs.f[*b as usize]);
            }
            Op::VCall1I { i, ty, dst, a, w } => {
                debug_assert_eq!(*i, Intrinsic::Abs);
                for k in 0..*w as usize {
                    regs.i[*dst as usize + k] = call1_i(*ty, regs.i[*a as usize + k]);
                }
            }
            Op::VCall2I { i, dst, a, b, w } => {
                for k in 0..*w as usize {
                    regs.i[*dst as usize + k] =
                        call2_i(*i, regs.i[*a as usize + k], regs.i[*b as usize + k]);
                }
            }
            Op::VCall1F { i, ty, dst, a, w } => {
                for k in 0..*w as usize {
                    regs.f[*dst as usize + k] = call1_f(*i, *ty, regs.f[*a as usize + k]);
                }
            }
            Op::VCall2F {
                i,
                ty,
                dst,
                a,
                b,
                w,
            } => {
                for k in 0..*w as usize {
                    regs.f[*dst as usize + k] =
                        call2_f(*i, *ty, regs.f[*a as usize + k], regs.f[*b as usize + k]);
                }
            }

            Op::SplatI { dst, a, w } => {
                let v = regs.i[*a as usize];
                regs.i[*dst as usize..(*dst + *w) as usize].fill(v);
            }
            Op::SplatF { dst, a, w } => {
                let v = regs.f[*a as usize];
                regs.f[*dst as usize..(*dst + *w) as usize].fill(v);
            }
            Op::PermI {
                parity,
                dst,
                a,
                b,
                w,
            } => {
                let w = *w as usize;
                for k in 0..w {
                    let pos = *parity as usize + 2 * k;
                    let v = if pos < w {
                        regs.i[*a as usize + pos]
                    } else {
                        regs.i[*b as usize + pos - w]
                    };
                    regs.i[*dst as usize + k] = v;
                }
            }
            Op::PermF {
                parity,
                dst,
                a,
                b,
                w,
            } => {
                let w = *w as usize;
                for k in 0..w {
                    let pos = *parity as usize + 2 * k;
                    let v = if pos < w {
                        regs.f[*a as usize + pos]
                    } else {
                        regs.f[*b as usize + pos - w]
                    };
                    regs.f[*dst as usize + k] = v;
                }
            }

            Op::LoadIdxI {
                dst,
                base,
                len,
                idx,
            } => {
                let k = array_index(regs.i[*idx as usize], *len, &plan.name);
                regs.i[*dst as usize] = regs.i[*base as usize + k];
            }
            Op::LoadIdxF {
                dst,
                base,
                len,
                idx,
            } => {
                let k = array_index(regs.i[*idx as usize], *len, &plan.name);
                regs.f[*dst as usize] = regs.f[*base as usize + k];
            }
            Op::LoadVElemI {
                dst,
                base,
                len,
                idx,
                w,
            } => {
                let k = array_index(regs.i[*idx as usize], *len, &plan.name);
                let s = *base as usize + k * *w as usize;
                regs.i.copy_within(s..s + *w as usize, *dst as usize);
            }
            Op::LoadVElemF {
                dst,
                base,
                len,
                idx,
                w,
            } => {
                let k = array_index(regs.i[*idx as usize], *len, &plan.name);
                let s = *base as usize + k * *w as usize;
                regs.f.copy_within(s..s + *w as usize, *dst as usize);
            }
            Op::LoadVSliceI {
                dst,
                base,
                len,
                idx,
                w,
            } => {
                let k = slice_index(regs.i[*idx as usize], *w, *len, &plan.name);
                let s = *base as usize + k;
                regs.i.copy_within(s..s + *w as usize, *dst as usize);
            }
            Op::LoadVSliceF {
                dst,
                base,
                len,
                idx,
                w,
            } => {
                let k = slice_index(regs.i[*idx as usize], *w, *len, &plan.name);
                let s = *base as usize + k;
                regs.f.copy_within(s..s + *w as usize, *dst as usize);
            }
            Op::StoreIdxI {
                base,
                len,
                idx,
                src,
            } => {
                let k = array_index(regs.i[*idx as usize], *len, &plan.name);
                regs.i[*base as usize + k] = regs.i[*src as usize];
            }
            Op::StoreIdxF {
                base,
                len,
                idx,
                src,
            } => {
                let k = array_index(regs.i[*idx as usize], *len, &plan.name);
                regs.f[*base as usize + k] = regs.f[*src as usize];
            }
            Op::StoreVElemI {
                base,
                len,
                idx,
                src,
                w,
            } => {
                let k = array_index(regs.i[*idx as usize], *len, &plan.name);
                let d = *base as usize + k * *w as usize;
                regs.i.copy_within(*src as usize..(*src + *w) as usize, d);
            }
            Op::StoreVElemF {
                base,
                len,
                idx,
                src,
                w,
            } => {
                let k = array_index(regs.i[*idx as usize], *len, &plan.name);
                let d = *base as usize + k * *w as usize;
                regs.f.copy_within(*src as usize..(*src + *w) as usize, d);
            }
            Op::StoreVSliceI {
                base,
                len,
                idx,
                src,
                w,
            } => {
                let k = slice_index(regs.i[*idx as usize], *w, *len, &plan.name);
                let d = *base as usize + k;
                regs.i.copy_within(*src as usize..(*src + *w) as usize, d);
            }
            Op::StoreVSliceF {
                base,
                len,
                idx,
                src,
                w,
            } => {
                let k = slice_index(regs.i[*idx as usize], *w, *len, &plan.name);
                let d = *base as usize + k;
                regs.f.copy_within(*src as usize..(*src + *w) as usize, d);
            }
            Op::LaneStoreI {
                base,
                len,
                idx,
                lane,
                w,
                src,
            } => {
                let k = array_index(regs.i[*idx as usize], *len, &plan.name);
                regs.i[*base as usize + k * *w as usize + *lane as usize] = regs.i[*src as usize];
            }
            Op::LaneStoreF {
                base,
                len,
                idx,
                lane,
                w,
                src,
            } => {
                let k = array_index(regs.i[*idx as usize], *len, &plan.name);
                regs.f[*base as usize + k * *w as usize + *lane as usize] = regs.f[*src as usize];
            }

            Op::PopI { ty, dst } => {
                let v = tape!(Input, input).pop();
                regs.i[*dst as usize] = decode_i(v, *ty, &plan.name);
            }
            Op::PopF { ty, dst } => {
                let v = tape!(Input, input).pop();
                regs.f[*dst as usize] = decode_f(v, *ty, &plan.name);
            }
            Op::PeekI { ty, dst, off } => {
                let o = regs.i[*off as usize] as usize;
                let v = tape!(Input, input).peek(o);
                regs.i[*dst as usize] = decode_i(v, *ty, &plan.name);
            }
            Op::PeekF { ty, dst, off } => {
                let o = regs.i[*off as usize] as usize;
                let v = tape!(Input, input).peek(o);
                regs.f[*dst as usize] = decode_f(v, *ty, &plan.name);
            }
            Op::VPopI { ty, dst, w } => {
                let t = tape!(Input, input);
                let (a, b) = t.vpop_slices(*w as usize);
                let d = *dst as usize;
                for (k, v) in a.iter().chain(b.iter()).enumerate() {
                    regs.i[d + k] = decode_i(*v, *ty, &plan.name);
                }
            }
            Op::VPopF { ty, dst, w } => {
                let t = tape!(Input, input);
                let (a, b) = t.vpop_slices(*w as usize);
                let d = *dst as usize;
                for (k, v) in a.iter().chain(b.iter()).enumerate() {
                    regs.f[d + k] = decode_f(*v, *ty, &plan.name);
                }
            }
            Op::VPeekI { ty, dst, off, w } => {
                let o = regs.i[*off as usize] as usize;
                let t = tape!(Input, input);
                let (a, b) = t.vpeek_slices(o, *w as usize);
                let d = *dst as usize;
                for (k, v) in a.iter().chain(b.iter()).enumerate() {
                    regs.i[d + k] = decode_i(*v, *ty, &plan.name);
                }
            }
            Op::VPeekF { ty, dst, off, w } => {
                let o = regs.i[*off as usize] as usize;
                let t = tape!(Input, input);
                let (a, b) = t.vpeek_slices(o, *w as usize);
                let d = *dst as usize;
                for (k, v) in a.iter().chain(b.iter()).enumerate() {
                    regs.f[d + k] = decode_f(*v, *ty, &plan.name);
                }
            }
            Op::AdvRead { n } => tape!(Input, input).advance_read(*n as usize),

            Op::PushI { ty, src } => {
                let v = encode_i(*ty, regs.i[*src as usize]);
                tape!(Output, output).push(v);
            }
            Op::PushF { ty, src } => {
                let v = encode_f(*ty, regs.f[*src as usize]);
                tape!(Output, output).push(v);
            }
            Op::RPushI { ty, src, off } => {
                let v = encode_i(*ty, regs.i[*src as usize]);
                let o = regs.i[*off as usize] as usize;
                tape!(Output, output).rpush(v, o);
            }
            Op::RPushF { ty, src, off } => {
                let v = encode_f(*ty, regs.f[*src as usize]);
                let o = regs.i[*off as usize] as usize;
                tape!(Output, output).rpush(v, o);
            }
            Op::VPushI { ty, src, w } => {
                let ty = *ty;
                let s = *src as usize;
                let i = &regs.i;
                tape!(Output, output).vpush_many(*w as usize, |k| encode_i(ty, i[s + k]));
            }
            Op::VPushF { ty, src, w } => {
                let ty = *ty;
                let s = *src as usize;
                let f = &regs.f;
                tape!(Output, output).vpush_many(*w as usize, |k| encode_f(ty, f[s + k]));
            }
            Op::AdvWrite { n } => tape!(Output, output).advance_write(*n as usize),

            Op::LPopI { ty, chan, dst } => match chans[*chan as usize].pop_front() {
                Some(v) => regs.i[*dst as usize] = decode_i(v, *ty, &plan.name),
                None => underflow!(format!("ch{chan}")),
            },
            Op::LPopF { ty, chan, dst } => match chans[*chan as usize].pop_front() {
                Some(v) => regs.f[*dst as usize] = decode_f(v, *ty, &plan.name),
                None => underflow!(format!("ch{chan}")),
            },
            Op::LVPopI { ty, chan, dst, w } => {
                let ch = &mut chans[*chan as usize];
                if ch.len() < *w as usize {
                    underflow!(format!("ch{chan} (vector)"));
                }
                for k in 0..*w as usize {
                    let v = ch.pop_front().expect("length checked");
                    regs.i[*dst as usize + k] = decode_i(v, *ty, &plan.name);
                }
            }
            Op::LVPopF { ty, chan, dst, w } => {
                let ch = &mut chans[*chan as usize];
                if ch.len() < *w as usize {
                    underflow!(format!("ch{chan} (vector)"));
                }
                for k in 0..*w as usize {
                    let v = ch.pop_front().expect("length checked");
                    regs.f[*dst as usize + k] = decode_f(v, *ty, &plan.name);
                }
            }
            Op::LPushI { ty, chan, src } => {
                let v = encode_i(*ty, regs.i[*src as usize]);
                chans[*chan as usize].push_back(v);
            }
            Op::LPushF { ty, chan, src } => {
                let v = encode_f(*ty, regs.f[*src as usize]);
                chans[*chan as usize].push_back(v);
            }
            Op::LVPushI { ty, chan, src, w } => {
                for k in 0..*w as usize {
                    let v = encode_i(*ty, regs.i[*src as usize + k]);
                    chans[*chan as usize].push_back(v);
                }
            }
            Op::LVPushF { ty, chan, src, w } => {
                for k in 0..*w as usize {
                    let v = encode_f(*ty, regs.f[*src as usize + k]);
                    chans[*chan as usize].push_back(v);
                }
            }

            Op::Jump { target } => {
                pc = *target as usize;
                continue;
            }
            Op::JumpIfZI { cond, target } => {
                if regs.i[*cond as usize] == 0 {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::JumpIfZF { cond, target } => {
                if regs.f[*cond as usize] == 0.0 {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::LoopHead {
                counter,
                limit,
                exit,
            } => {
                if regs.i[*counter as usize] >= regs.i[*limit as usize] {
                    pc = *exit as usize;
                    continue;
                }
            }
            Op::LoopBack { counter, head } => {
                regs.i[*counter as usize] += 1;
                pc = *head as usize;
                continue;
            }
            Op::SetLoopVar { var, counter } => {
                regs.i[*var as usize] = (regs.i[*counter as usize] as i32) as i64;
            }
        }
        pc += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i32_arithmetic_wraps_in_narrow_domain() {
        let a = (i32::MAX as i64) + 5; // out-of-invariant input would differ; use in-range
        let x = i32::MAX as i64;
        assert_eq!(bin_i(BinOp::Add, ScalarTy::I32, x, 1), i32::MIN as i64);
        assert_eq!(bin_i(BinOp::Add, ScalarTy::I64, x, 1), x + 1);
        let _ = a;
    }

    #[test]
    fn division_by_zero_yields_zero() {
        assert_eq!(bin_i(BinOp::Div, ScalarTy::I32, 7, 0), 0);
        assert_eq!(bin_i(BinOp::Rem, ScalarTy::I64, 7, 0), 0);
    }

    #[test]
    fn comparisons_yield_zero_one() {
        assert_eq!(bin_i(BinOp::Lt, ScalarTy::I32, -1, 1), 1);
        assert_eq!(bin_i(BinOp::Ge, ScalarTy::I64, -1, 1), 0);
        assert_eq!(cmp_f(BinOp::Le, 1.5, 1.5), 1);
        assert_eq!(cmp_f(BinOp::Ne, f64::NAN, f64::NAN), 1);
    }

    #[test]
    fn f32_arithmetic_rounds_per_op() {
        // 1e8 + 1 is not representable in f32; the f32 domain must round.
        let a = 1.0e8f32 as f64;
        let r = bin_f(BinOp::Add, ScalarTy::F32, a, 1.0);
        assert_eq!(r, (1.0e8f32 + 1.0f32) as f64);
        let r64 = bin_f(BinOp::Add, ScalarTy::F64, a, 1.0);
        assert_eq!(r64, a + 1.0);
    }

    #[test]
    fn casts_match_value_cast() {
        use macross_streamir::types::Value;
        // F64 -> I32 saturation.
        assert_eq!(
            cast_fi(ScalarTy::I32, 1e12),
            Value::F64(1e12).cast(ScalarTy::I32).as_i64()
        );
        // I64 -> I32 truncation, re-extended.
        assert_eq!(cast_ii(ScalarTy::I64, ScalarTy::I32, 1 << 40), 0);
        // F64 -> F32 rounding.
        assert_eq!(cast_ff(ScalarTy::F32, 1.0e-300), 0.0);
    }

    #[test]
    fn charge_entry_zero_detection() {
        assert!(ChargeEntry::default().is_zero());
        let e = ChargeEntry {
            in_addr: 1,
            ..Default::default()
        };
        assert!(!e.is_zero());
    }

    #[test]
    fn straight_line_code_runs() {
        let plan = CompiledFilter {
            name: "t".into(),
            int_regs: 3,
            float_regs: 0,
            zero_i: vec![],
            zero_f: vec![],
            init: vec![],
            work: vec![
                Op::ConstI { dst: 0, v: 20 },
                Op::ConstI { dst: 1, v: 22 },
                Op::BinI {
                    op: BinOp::Add,
                    ty: ScalarTy::I32,
                    dst: 2,
                    a: 0,
                    b: 1,
                },
            ],
            charges: vec![],
            kernels: vec![],
            tier: KernelTier::Portable,
        };
        let mut regs = Regs::new(3, 0);
        let mut counters = CycleCounters::default();
        run_code(
            &plan,
            &plan.work,
            &mut regs,
            &mut [],
            None,
            None,
            0,
            0,
            &mut counters,
        )
        .unwrap();
        assert_eq!(regs.i[2], 42);
    }

    #[test]
    fn missing_tape_is_reported() {
        let plan = CompiledFilter {
            name: "no_tape".into(),
            int_regs: 1,
            float_regs: 0,
            zero_i: vec![],
            zero_f: vec![],
            init: vec![],
            work: vec![Op::PopI {
                ty: ScalarTy::I32,
                dst: 0,
            }],
            charges: vec![],
            kernels: vec![],
            tier: KernelTier::Portable,
        };
        let mut regs = Regs::new(1, 0);
        let mut counters = CycleCounters::default();
        let err = run_code(
            &plan,
            &plan.work,
            &mut regs,
            &mut [],
            None,
            None,
            0,
            0,
            &mut counters,
        )
        .unwrap_err();
        assert_eq!(
            err,
            VmError::MissingTape {
                filter: "no_tape".into(),
                side: TapeSide::Input
            }
        );
    }
}
