//! Target machine descriptions: SIMD width, feature flags, and the
//! per-operation cycle cost table that drives all performance modelling.
//!
//! Absolute cycle numbers are calibrated to be Core-i7/SSE4-plausible; the
//! experiments only rely on their *relative* magnitudes (scalar vs. vector
//! ops, pack/unpack vs. permute vs. plain loads), which is also all the
//! paper's speedup shapes depend on.

use macross_streamir::expr::Intrinsic;
use std::collections::BTreeSet;

/// Per-operation cycle costs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CostTable {
    /// Scalar add/sub/bitwise/compare/cast.
    pub alu: u64,
    /// Scalar multiply.
    pub mul: u64,
    /// Scalar divide/remainder.
    pub div: u64,
    /// Vector add/sub/bitwise/compare/cast (whole vector).
    pub valu: u64,
    /// Vector multiply.
    pub vmul: u64,
    /// Vector divide.
    pub vdiv: u64,
    /// Scalar load (L1 hit).
    pub load: u64,
    /// Scalar store.
    pub store: u64,
    /// Vector load.
    pub vload: u64,
    /// Vector store.
    pub vstore: u64,
    /// Extract one lane to a scalar register (unpacking).
    pub lane_extract: u64,
    /// Insert a scalar into one lane (packing).
    pub lane_insert: u64,
    /// Broadcast a scalar to all lanes.
    pub splat: u64,
    /// One `extract_even`/`extract_odd` permutation.
    pub permute: u64,
    /// Per-iteration loop overhead (compare + branch).
    pub loop_iter: u64,
    /// Per-firing actor overhead (dispatch, pointer bookkeeping).
    pub firing: u64,
    /// Extra address-generation cycles per reordered scalar access without
    /// a SAGU (the Figure-8 sequence).
    pub addr_software_reorder: u64,
    /// Extra cycles per reordered scalar access with the SAGU.
    pub sagu_access: u64,
}

impl CostTable {
    /// Core-i7-like defaults.
    pub fn core_i7() -> CostTable {
        CostTable {
            alu: 1,
            mul: 3,
            div: 18,
            valu: 1,
            vmul: 3,
            vdiv: 24,
            load: 2,
            store: 2,
            vload: 2,
            vstore: 2,
            lane_extract: 1,
            lane_insert: 1,
            splat: 1,
            permute: 1,
            loop_iter: 1,
            firing: 3,
            addr_software_reorder: macross_sagu::SoftwareAddrGen::CYCLES_PER_ACCESS,
            sagu_access: macross_sagu::Sagu::CYCLES_PER_ACCESS,
        }
    }
}

/// A target machine: SIMD configuration plus the cost table.
///
/// `Eq`/`Hash` cover the *full* description (width, features, costs),
/// so two machines sharing a `name` but differing in any parameter
/// compare unequal — the compile cache relies on this to never hand one
/// target an artifact compiled for another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Machine {
    /// Human-readable name for reports.
    pub name: String,
    /// SIMD lane count for 32-bit elements.
    pub simd_width: usize,
    /// Whether the streaming address generation unit is present.
    pub has_sagu: bool,
    /// Whether `extract_even`/`extract_odd` permutations are available
    /// ("supported by almost all SIMD standards").
    pub has_permute: bool,
    /// Intrinsics executable on the SIMD engine. Actors calling intrinsics
    /// outside this set cannot be SIMDized on this machine.
    pub vector_intrinsics: BTreeSet<Intrinsic>,
    /// Cycle costs.
    pub cost: CostTable,
}

impl Machine {
    /// A Core-i7 / SSE4.2-like target with a vector math library (SVML-like)
    /// covering every intrinsic, 4 lanes, no SAGU.
    pub fn core_i7() -> Machine {
        use Intrinsic::*;
        Machine {
            name: "core_i7_sse4".into(),
            simd_width: 4,
            has_sagu: false,
            has_permute: true,
            vector_intrinsics: [Sin, Cos, Atan, Sqrt, Exp, Log, Floor, Abs, Min, Max, Pow]
                .into_iter()
                .collect(),
            cost: CostTable::core_i7(),
        }
    }

    /// The Core-i7-like target extended with the paper's SAGU.
    pub fn core_i7_with_sagu() -> Machine {
        Machine {
            name: "core_i7_sse4_sagu".into(),
            has_sagu: true,
            ..Machine::core_i7()
        }
    }

    /// A hypothetical wider-SIMD target (e.g. Larrabee-like 16-wide),
    /// keeping the Core-i7 cost table.
    ///
    /// # Panics
    /// Panics if `width` is not a power of two greater than 1.
    pub fn wide(width: usize) -> Machine {
        assert!(
            width.is_power_of_two() && width > 1,
            "SIMD width must be a power of two > 1"
        );
        Machine {
            name: format!("wide_simd_{width}"),
            simd_width: width,
            ..Machine::core_i7()
        }
    }

    /// A Neon-like embedded target: 4 lanes, no vector transcendentals and
    /// no hardware divide, cheaper packing.
    pub fn neon_like() -> Machine {
        use Intrinsic::*;
        let mut m = Machine::core_i7();
        m.name = "neon_like".into();
        m.vector_intrinsics = [Sqrt, Abs, Min, Max, Floor].into_iter().collect();
        m.cost.lane_extract = 2;
        m.cost.lane_insert = 2;
        m.cost.vdiv = 40;
        m
    }

    /// Cycles for one *scalar* call of an intrinsic.
    pub fn scalar_intrinsic_cost(&self, i: Intrinsic) -> u64 {
        match i {
            Intrinsic::Sin | Intrinsic::Cos | Intrinsic::Atan => 56,
            Intrinsic::Sqrt => 18,
            Intrinsic::Exp | Intrinsic::Log => 48,
            Intrinsic::Floor => 3,
            Intrinsic::Abs | Intrinsic::Min | Intrinsic::Max => 1,
            Intrinsic::Pow => 80,
        }
    }

    /// Cycles for one *vector* call of an intrinsic (whole vector).
    ///
    /// Transcendentals go through an SVML-like vector math library: cheaper
    /// than `width` scalar calls but far from `width`-times cheaper.
    pub fn vector_intrinsic_cost(&self, i: Intrinsic) -> u64 {
        match i {
            Intrinsic::Sin | Intrinsic::Cos | Intrinsic::Atan => 80,
            Intrinsic::Sqrt => 22,
            Intrinsic::Exp | Intrinsic::Log => 64,
            Intrinsic::Floor => 3,
            Intrinsic::Abs | Intrinsic::Min | Intrinsic::Max => 1,
            Intrinsic::Pow => 120,
        }
    }

    /// Whether every intrinsic in `set` is SIMD-executable here.
    pub fn supports_all(&self, set: &BTreeSet<Intrinsic>) -> bool {
        set.iter().all(|i| self.vector_intrinsics.contains(i))
    }
}

/// Cycle counters, broken down by category for the experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleCounters {
    /// Scalar arithmetic.
    pub compute_scalar: u64,
    /// Vector arithmetic.
    pub compute_vector: u64,
    /// Scalar loads/stores.
    pub mem_scalar: u64,
    /// Vector loads/stores.
    pub mem_vector: u64,
    /// Lane inserts/extracts/splats (packing and unpacking).
    pub pack_unpack: u64,
    /// `extract_even`/`extract_odd` permutations.
    pub permute: u64,
    /// Address-generation overhead on reordered tapes.
    pub addr_overhead: u64,
    /// Loop compare/branch overhead.
    pub loop_overhead: u64,
    /// Per-firing actor overhead.
    pub firing_overhead: u64,
}

impl CycleCounters {
    /// Total cycles across all categories.
    pub fn total(&self) -> u64 {
        self.compute_scalar
            + self.compute_vector
            + self.mem_scalar
            + self.mem_vector
            + self.pack_unpack
            + self.permute
            + self.addr_overhead
            + self.loop_overhead
            + self.firing_overhead
    }

    /// Add another counter set into this one.
    pub fn absorb(&mut self, other: &CycleCounters) {
        self.compute_scalar += other.compute_scalar;
        self.compute_vector += other.compute_vector;
        self.mem_scalar += other.mem_scalar;
        self.mem_vector += other.mem_vector;
        self.pack_unpack += other.pack_unpack;
        self.permute += other.permute;
        self.addr_overhead += other.addr_overhead;
        self.loop_overhead += other.loop_overhead;
        self.firing_overhead += other.firing_overhead;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_sensibly() {
        let base = Machine::core_i7();
        let sagu = Machine::core_i7_with_sagu();
        assert!(!base.has_sagu);
        assert!(sagu.has_sagu);
        assert_eq!(base.simd_width, 4);
        assert_eq!(Machine::wide(16).simd_width, 16);
        assert!(Machine::neon_like().vector_intrinsics.len() < base.vector_intrinsics.len());
    }

    #[test]
    fn vector_trig_beats_width_scalar_calls() {
        let m = Machine::core_i7();
        let scalar4 = 4 * m.scalar_intrinsic_cost(Intrinsic::Sin);
        let vec = m.vector_intrinsic_cost(Intrinsic::Sin);
        assert!(vec < scalar4);
        assert!(vec > m.scalar_intrinsic_cost(Intrinsic::Sin));
    }

    #[test]
    fn supports_all_checks_subset() {
        let m = Machine::neon_like();
        let ok: BTreeSet<_> = [Intrinsic::Sqrt, Intrinsic::Min].into_iter().collect();
        let bad: BTreeSet<_> = [Intrinsic::Sin].into_iter().collect();
        assert!(m.supports_all(&ok));
        assert!(!m.supports_all(&bad));
    }

    #[test]
    fn counters_total_and_absorb() {
        let mut a = CycleCounters {
            compute_scalar: 5,
            mem_scalar: 3,
            ..Default::default()
        };
        let b = CycleCounters {
            compute_vector: 2,
            permute: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.total(), 11);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn wide_rejects_non_power_of_two() {
        let _ = Machine::wide(6);
    }
}
