//! The work-function interpreter: executes scalar *and* vectorized actor
//! bodies with per-operation cycle accounting.
//!
//! Malformed programs (shape mismatches, missing tapes, channel
//! underflows) surface as [`VmError`] values rather than panics, so an
//! embedding runtime — in particular a worker thread of
//! `macross-runtime` — can fail one run without poisoning the process.

use crate::error::{TapeSide, VmError};
use crate::machine::{CycleCounters, Machine};
use crate::tape::Tape;
use macross_streamir::expr::{eval_binop, eval_intrinsic, eval_unop, BinOp, Expr, LValue};
use macross_streamir::filter::{Filter, VarKind};
use macross_streamir::stmt::Stmt;
use macross_streamir::types::{Ty, Value};
use std::collections::VecDeque;

/// A runtime value: scalar or vector.
#[derive(Debug, Clone, PartialEq)]
pub enum RtVal {
    /// Scalar.
    S(Value),
    /// Vector of lane values.
    V(Vec<Value>),
}

impl RtVal {
    /// Unwrap a scalar.
    ///
    /// # Errors
    /// Returns [`VmError::Shape`] if the value is a vector.
    pub fn scalar(self) -> Result<Value, VmError> {
        match self {
            RtVal::S(v) => Ok(v),
            RtVal::V(_) => Err(VmError::Shape {
                expected: "scalar",
                got: "vector",
            }),
        }
    }

    /// Unwrap a vector.
    ///
    /// # Errors
    /// Returns [`VmError::Shape`] if the value is a scalar.
    pub fn vector(self) -> Result<Vec<Value>, VmError> {
        match self {
            RtVal::V(v) => Ok(v),
            RtVal::S(_) => Err(VmError::Shape {
                expected: "vector",
                got: "scalar",
            }),
        }
    }
}

/// Storage for one declared variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// Scalar variable.
    S(Value),
    /// Vector variable.
    V(Vec<Value>),
    /// Scalar array.
    A(Vec<Value>),
    /// Vector array.
    VA(Vec<Vec<Value>>),
}

impl Slot {
    /// Zero-initialized storage for a type.
    pub fn zero_of(ty: Ty) -> Slot {
        match ty {
            Ty::Scalar(t) => Slot::S(t.zero()),
            Ty::Vector(t, w) => Slot::V(vec![t.zero(); w]),
            Ty::Array(t, n) => Slot::A(vec![t.zero(); n]),
            Ty::VectorArray(t, w, n) => Slot::VA(vec![vec![t.zero(); w]; n]),
        }
    }
}

/// Everything one firing of a filter needs.
pub struct FiringCtx<'a> {
    /// The filter being fired.
    pub filter: &'a Filter,
    /// Variable storage (indexed by `VarId`), state slots pre-loaded.
    pub slots: &'a mut Vec<Slot>,
    /// Internal channel storage (indexed by `ChanId`), flattened to scalars.
    pub chans: &'a mut Vec<VecDeque<Value>>,
    /// Input tape, if the filter has one.
    pub input: Option<&'a mut Tape>,
    /// Output tape, if the filter has one.
    pub output: Option<&'a mut Tape>,
    /// Target machine (cost table).
    pub machine: &'a Machine,
    /// Cycle accumulator.
    pub counters: &'a mut CycleCounters,
    /// Extra address-generation cycles per scalar access on the input tape
    /// (nonzero when the input is read-reordered; SAGU vs. Figure-8 cost).
    pub input_addr_cost: u64,
    /// Same for the output tape.
    pub output_addr_cost: u64,
}

impl<'a> FiringCtx<'a> {
    /// Execute a statement block (a `work` or `init` body).
    ///
    /// # Errors
    /// Returns a [`VmError`] on shape mismatches, missing tapes, or
    /// internal-channel underflow.
    pub fn exec_block(&mut self, stmts: &[Stmt]) -> Result<(), VmError> {
        for s in stmts {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn type_err(&self, context: impl Into<String>) -> VmError {
        VmError::TypeMismatch {
            filter: self.filter.name.clone(),
            context: context.into(),
        }
    }

    fn want_scalar(&self, v: RtVal, context: &str) -> Result<Value, VmError> {
        match v {
            RtVal::S(x) => Ok(x),
            RtVal::V(_) => Err(self.type_err(format!("expected scalar in {context}, got vector"))),
        }
    }

    fn want_vector(&self, v: RtVal, context: &str) -> Result<Vec<Value>, VmError> {
        match v {
            RtVal::V(x) => Ok(x),
            RtVal::S(_) => Err(self.type_err(format!("expected vector in {context}, got scalar"))),
        }
    }

    fn input(&mut self) -> Result<&mut Tape, VmError> {
        let name = &self.filter.name;
        match self.input.as_deref_mut() {
            Some(t) => Ok(t),
            None => Err(VmError::MissingTape {
                filter: name.clone(),
                side: TapeSide::Input,
            }),
        }
    }

    fn output(&mut self) -> Result<&mut Tape, VmError> {
        let name = &self.filter.name;
        match self.output.as_deref_mut() {
            Some(t) => Ok(t),
            None => Err(VmError::MissingTape {
                filter: name.clone(),
                side: TapeSide::Output,
            }),
        }
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<(), VmError> {
        match s {
            Stmt::Assign(lv, e) => {
                let val = self.eval(e)?;
                self.write_lvalue(lv, val)?;
            }
            Stmt::Push(e) => {
                let v = self.eval(e)?;
                let v = self.want_scalar(v, "push")?;
                self.counters.mem_scalar += self.machine.cost.store;
                self.counters.addr_overhead += self.output_addr_cost;
                self.output()?.push(v);
            }
            Stmt::RPush { value, offset } => {
                let v = self.eval(value)?;
                let v = self.want_scalar(v, "rpush value")?;
                let off = self.eval(offset)?;
                let off = self.want_scalar(off, "rpush offset")?.as_i64() as usize;
                self.counters.mem_scalar += self.machine.cost.store;
                self.counters.addr_overhead += self.machine.cost.alu;
                self.output()?.rpush(v, off);
            }
            Stmt::VPush { value, width } => {
                let v = self.eval(value)?;
                let v = self.want_vector(v, "vpush")?;
                debug_assert_eq!(v.len(), *width, "vpush width mismatch");
                self.counters.mem_vector += self.machine.cost.vstore;
                self.output()?.vpush(&v);
            }
            Stmt::LPush(c, e) => {
                let v = self.eval(e)?;
                let v = self.want_scalar(v, "lpush")?;
                self.counters.mem_scalar += self.machine.cost.store;
                self.chans[c.0 as usize].push_back(v);
            }
            Stmt::LVPush(c, e, width) => {
                let v = self.eval(e)?;
                let v = self.want_vector(v, "lvpush")?;
                debug_assert_eq!(v.len(), *width, "lvpush width mismatch");
                self.counters.mem_vector += self.machine.cost.vstore;
                self.chans[c.0 as usize].extend(v);
            }
            Stmt::For { var, count, body } => {
                let n = self.eval(count)?;
                let n = self.want_scalar(n, "loop count")?.as_i64();
                self.counters.compute_scalar += self.machine.cost.alu; // loop setup
                for i in 0..n.max(0) {
                    self.counters.loop_overhead += self.machine.cost.loop_iter;
                    self.slots[var.0 as usize] = Slot::S(Value::I32(i as i32));
                    self.exec_block(body)?;
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(cond)?;
                let c = self.want_scalar(c, "branch condition")?;
                self.counters.compute_scalar += self.machine.cost.alu; // branch
                if c.is_truthy() {
                    self.exec_block(then_branch)?;
                } else {
                    self.exec_block(else_branch)?;
                }
            }
            Stmt::AdvanceRead(n) => {
                self.counters.addr_overhead += self.machine.cost.alu;
                self.input()?.advance_read(*n);
            }
            Stmt::AdvanceWrite(n) => {
                self.counters.addr_overhead += self.machine.cost.alu;
                self.output()?.advance_write(*n);
            }
        }
        Ok(())
    }

    fn write_lvalue(&mut self, lv: &LValue, val: RtVal) -> Result<(), VmError> {
        match lv {
            LValue::Var(v) => {
                // Register move: free in the cost model.
                match (&mut self.slots[v.0 as usize], val) {
                    (Slot::S(s), RtVal::S(x)) => *s = x,
                    (slot @ Slot::V(_), RtVal::V(x)) => *slot = Slot::V(x),
                    (slot, val) => {
                        let msg = format!("assigning {val:?} to {slot:?}");
                        return Err(self.type_err(msg));
                    }
                }
            }
            LValue::Index(v, i) => {
                let idx = self.eval(i)?;
                let idx = self.want_scalar(idx, "array index")?.as_i64() as usize;
                match (&mut self.slots[v.0 as usize], val) {
                    (Slot::A(arr), RtVal::S(x)) => {
                        self.counters.mem_scalar += self.machine.cost.store;
                        arr[idx] = x;
                    }
                    (Slot::VA(arr), RtVal::V(x)) => {
                        self.counters.mem_vector += self.machine.cost.vstore;
                        arr[idx] = x;
                    }
                    (slot, val) => {
                        let msg = format!("assigning {val:?} to element of {slot:?}");
                        return Err(self.type_err(msg));
                    }
                }
            }
            LValue::VIndex(v, i, _) => {
                let idx = self.eval(i)?;
                let idx = self.want_scalar(idx, "vector-store index")?.as_i64() as usize;
                let vals = self.want_vector(val, "vector store")?;
                self.counters.mem_vector += self.machine.cost.vstore;
                match &mut self.slots[v.0 as usize] {
                    Slot::A(arr) => arr[idx..idx + vals.len()].copy_from_slice(&vals),
                    slot => {
                        let msg = format!("vector store to non-scalar-array {slot:?}");
                        return Err(self.type_err(msg));
                    }
                }
            }
            LValue::LaneVar(v, lane) => {
                let x = self.want_scalar(val, "lane assignment")?;
                self.counters.pack_unpack += self.machine.cost.lane_insert;
                match &mut self.slots[v.0 as usize] {
                    Slot::V(lanes) => lanes[*lane] = x,
                    slot => {
                        let msg = format!("lane assignment to non-vector {slot:?}");
                        return Err(self.type_err(msg));
                    }
                }
            }
            LValue::LaneIndex(v, i, lane) => {
                let idx = self.eval(i)?;
                let idx = self.want_scalar(idx, "lane-store index")?.as_i64() as usize;
                let x = self.want_scalar(val, "lane assignment")?;
                self.counters.pack_unpack += self.machine.cost.lane_insert;
                match &mut self.slots[v.0 as usize] {
                    Slot::VA(arr) => arr[idx][*lane] = x,
                    slot => {
                        let msg = format!("lane assignment to non-vector-array {slot:?}");
                        return Err(self.type_err(msg));
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluate an expression.
    ///
    /// # Errors
    /// Returns a [`VmError`] on shape mismatches, missing tapes, or
    /// internal-channel underflow.
    pub fn eval(&mut self, e: &Expr) -> Result<RtVal, VmError> {
        match e {
            Expr::Const(v) => Ok(RtVal::S(*v)),
            Expr::ConstVec(vs) => {
                // Constant-pool vector load.
                self.counters.mem_vector += self.machine.cost.vload;
                Ok(RtVal::V(vs.clone()))
            }
            Expr::Var(v) => match &self.slots[v.0 as usize] {
                Slot::S(x) => Ok(RtVal::S(*x)),
                Slot::V(x) => Ok(RtVal::V(x.clone())),
                slot => {
                    let msg = format!("reading aggregate {slot:?} as a value");
                    Err(self.type_err(msg))
                }
            },
            Expr::Index(v, i) => {
                let idx = self.eval(i)?;
                let idx = self.want_scalar(idx, "array index")?.as_i64() as usize;
                match &self.slots[v.0 as usize] {
                    Slot::A(arr) => {
                        self.counters.mem_scalar += self.machine.cost.load;
                        Ok(RtVal::S(arr[idx]))
                    }
                    Slot::VA(arr) => {
                        self.counters.mem_vector += self.machine.cost.vload;
                        Ok(RtVal::V(arr[idx].clone()))
                    }
                    slot => {
                        let msg = format!("indexing non-array {slot:?}");
                        Err(self.type_err(msg))
                    }
                }
            }
            Expr::VIndex(v, i, w) => {
                let idx = self.eval(i)?;
                let idx = self.want_scalar(idx, "vector-load index")?.as_i64() as usize;
                self.counters.mem_vector += self.machine.cost.vload;
                match &self.slots[v.0 as usize] {
                    Slot::A(arr) => Ok(RtVal::V(arr[idx..idx + w].to_vec())),
                    slot => {
                        let msg = format!("vector-indexing non-scalar-array {slot:?}");
                        Err(self.type_err(msg))
                    }
                }
            }
            Expr::Unary(op, a) => {
                let a = self.eval(a)?;
                match a {
                    RtVal::S(x) => {
                        self.counters.compute_scalar += self.machine.cost.alu;
                        Ok(RtVal::S(eval_unop(*op, x)))
                    }
                    RtVal::V(xs) => {
                        self.counters.compute_vector += self.machine.cost.valu;
                        Ok(RtVal::V(
                            xs.into_iter().map(|x| eval_unop(*op, x)).collect(),
                        ))
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                let a = self.eval(a)?;
                let b = self.eval(b)?;
                match (a, b) {
                    (RtVal::S(x), RtVal::S(y)) => {
                        self.counters.compute_scalar += self.scalar_binop_cost(*op);
                        Ok(RtVal::S(eval_binop(*op, x, y)))
                    }
                    (RtVal::V(xs), RtVal::V(ys)) => {
                        if xs.len() != ys.len() {
                            let msg = format!("vector width mismatch in {op:?}");
                            return Err(self.type_err(msg));
                        }
                        self.counters.compute_vector += self.vector_binop_cost(*op);
                        Ok(RtVal::V(
                            xs.into_iter()
                                .zip(ys)
                                .map(|(x, y)| eval_binop(*op, x, y))
                                .collect(),
                        ))
                    }
                    _ => {
                        let msg =
                            format!("mixed scalar/vector operands in {op:?} (SIMDizer must splat)");
                        Err(self.type_err(msg))
                    }
                }
            }
            Expr::Call(i, args) => {
                let mut vals: Vec<RtVal> = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                if vals.iter().any(|v| matches!(v, RtVal::V(_))) {
                    let mut vecs: Vec<Vec<Value>> = Vec::with_capacity(vals.len());
                    for v in vals {
                        vecs.push(self.want_vector(v, i.name())?);
                    }
                    let w = vecs[0].len();
                    if !vecs.iter().all(|v| v.len() == w) {
                        let msg = format!("vector width mismatch in {}", i.name());
                        return Err(self.type_err(msg));
                    }
                    self.counters.compute_vector += self.machine.vector_intrinsic_cost(*i);
                    let lanes = (0..w)
                        .map(|l| {
                            let lane_args: Vec<Value> = vecs.iter().map(|v| v[l]).collect();
                            eval_intrinsic(*i, &lane_args)
                        })
                        .collect();
                    Ok(RtVal::V(lanes))
                } else {
                    let mut scalars: Vec<Value> = Vec::with_capacity(vals.len());
                    for v in vals {
                        scalars.push(self.want_scalar(v, i.name())?);
                    }
                    self.counters.compute_scalar += self.machine.scalar_intrinsic_cost(*i);
                    Ok(RtVal::S(eval_intrinsic(*i, &scalars)))
                }
            }
            Expr::Cast(t, a) => match self.eval(a)? {
                RtVal::S(x) => {
                    self.counters.compute_scalar += self.machine.cost.alu;
                    Ok(RtVal::S(x.cast(*t)))
                }
                RtVal::V(xs) => {
                    self.counters.compute_vector += self.machine.cost.valu;
                    Ok(RtVal::V(xs.into_iter().map(|x| x.cast(*t)).collect()))
                }
            },
            Expr::Pop => {
                self.counters.mem_scalar += self.machine.cost.load;
                self.counters.addr_overhead += self.input_addr_cost;
                Ok(RtVal::S(self.input()?.pop()))
            }
            Expr::Peek(off) => {
                let o = self.eval(off)?;
                let o = self.want_scalar(o, "peek offset")?.as_i64() as usize;
                self.counters.mem_scalar += self.machine.cost.load;
                self.counters.addr_overhead += self.input_addr_cost;
                Ok(RtVal::S(self.input()?.peek(o)))
            }
            Expr::VPop { width } => {
                self.counters.mem_vector += self.machine.cost.vload;
                let w = *width;
                Ok(RtVal::V(self.input()?.vpop(w)))
            }
            Expr::VPeek { offset, width } => {
                let o = self.eval(offset)?;
                let o = self.want_scalar(o, "vpeek offset")?.as_i64() as usize;
                self.counters.mem_vector += self.machine.cost.vload;
                let w = *width;
                Ok(RtVal::V(self.input()?.vpeek(o, w)))
            }
            Expr::LPop(c) => {
                self.counters.mem_scalar += self.machine.cost.load;
                match self.chans[c.0 as usize].pop_front() {
                    Some(v) => Ok(RtVal::S(v)),
                    None => Err(VmError::ChannelUnderflow {
                        filter: self.filter.name.clone(),
                        chan: c.to_string(),
                    }),
                }
            }
            Expr::LVPop(c, w) => {
                self.counters.mem_vector += self.machine.cost.vload;
                let ch = &mut self.chans[c.0 as usize];
                if ch.len() < *w {
                    return Err(VmError::ChannelUnderflow {
                        filter: self.filter.name.clone(),
                        chan: format!("{c} (vector)"),
                    });
                }
                Ok(RtVal::V(ch.drain(..*w).collect()))
            }
            Expr::Lane(e, lane) => {
                let v = self.eval(e)?;
                let v = self.want_vector(v, "lane extract")?;
                self.counters.pack_unpack += self.machine.cost.lane_extract;
                Ok(RtVal::S(v[*lane]))
            }
            Expr::Splat(e, w) => {
                let x = self.eval(e)?;
                let x = self.want_scalar(x, "splat")?;
                self.counters.pack_unpack += self.machine.cost.splat;
                Ok(RtVal::V(vec![x; *w]))
            }
            Expr::PermuteEven(a, b) => {
                let a = self.eval(a)?;
                let a = self.want_vector(a, "permute")?;
                let b = self.eval(b)?;
                let b = self.want_vector(b, "permute")?;
                self.counters.permute += self.machine.cost.permute;
                self.extract_positions(&a, &b, 0)
            }
            Expr::PermuteOdd(a, b) => {
                let a = self.eval(a)?;
                let a = self.want_vector(a, "permute")?;
                let b = self.eval(b)?;
                let b = self.want_vector(b, "permute")?;
                self.counters.permute += self.machine.cost.permute;
                self.extract_positions(&a, &b, 1)
            }
        }
    }

    /// `extract_even` (parity 0) / `extract_odd` (parity 1) of the
    /// concatenation of two equal-width vectors.
    fn extract_positions(&self, a: &[Value], b: &[Value], parity: usize) -> Result<RtVal, VmError> {
        if a.len() != b.len() {
            return Err(self.type_err("permute operands must have equal width"));
        }
        let concat = a.iter().chain(b.iter()).copied().collect::<Vec<_>>();
        Ok(RtVal::V(
            concat.into_iter().skip(parity).step_by(2).collect(),
        ))
    }

    fn scalar_binop_cost(&self, op: BinOp) -> u64 {
        match op {
            BinOp::Mul => self.machine.cost.mul,
            BinOp::Div | BinOp::Rem => self.machine.cost.div,
            _ => self.machine.cost.alu,
        }
    }

    fn vector_binop_cost(&self, op: BinOp) -> u64 {
        match op {
            BinOp::Mul => self.machine.cost.vmul,
            BinOp::Div | BinOp::Rem => self.machine.cost.vdiv,
            _ => self.machine.cost.valu,
        }
    }
}

/// Build the initial slot vector for a filter (all zeros).
pub fn zero_slots(filter: &Filter) -> Vec<Slot> {
    filter.vars.iter().map(|v| Slot::zero_of(v.ty)).collect()
}

/// Reset all `Local` slots of a filter to zero (between firings), leaving
/// `State` slots untouched.
pub fn reset_locals(filter: &Filter, slots: &mut [Slot]) {
    for (i, decl) in filter.vars.iter().enumerate() {
        if decl.kind == VarKind::Local {
            slots[i] = Slot::zero_of(decl.ty);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};

    fn fire_once(
        filter: &Filter,
        input: Option<&mut Tape>,
        output: Option<&mut Tape>,
    ) -> Result<CycleCounters, VmError> {
        let machine = Machine::core_i7();
        let mut counters = CycleCounters::default();
        let mut slots = zero_slots(filter);
        let mut chans = vec![VecDeque::new(); filter.chans.len()];
        let mut ctx = FiringCtx {
            filter,
            slots: &mut slots,
            chans: &mut chans,
            input,
            output,
            machine: &machine,
            counters: &mut counters,
            input_addr_cost: 0,
            output_addr_cost: 0,
        };
        ctx.exec_block(&filter.work)?;
        Ok(counters)
    }

    #[test]
    fn scalar_pipeline_step() {
        let mut fb = FilterBuilder::new("scale", 1, 1, 1, ScalarTy::F32);
        fb.work(|b| {
            b.push(pop() * 2.0f32);
        });
        let f = fb.build();
        let mut inp = Tape::new(ScalarTy::F32);
        inp.push(Value::F32(3.0));
        let mut out = Tape::new(ScalarTy::F32);
        let counters = fire_once(&f, Some(&mut inp), Some(&mut out)).unwrap();
        assert_eq!(out.pop(), Value::F32(6.0));
        // load(2) + mul(3) + store(2)
        assert_eq!(counters.mem_scalar, 4);
        assert_eq!(counters.compute_scalar, 3);
    }

    #[test]
    fn vector_ops_execute_lanewise() {
        use macross_streamir::expr::Expr;
        use macross_streamir::stmt::Stmt;
        let mut fb = FilterBuilder::new("v", 4, 4, 4, ScalarTy::I32);
        let tv = fb.local("t_v", Ty::Vector(ScalarTy::I32, 4));
        fb.work(|b| {
            b.set(tv, E(Expr::VPop { width: 4 }));
            b.stmt(Stmt::VPush {
                value: Expr::bin(
                    macross_streamir::expr::BinOp::Add,
                    Expr::Var(tv),
                    Expr::ConstVec(vec![
                        Value::I32(10),
                        Value::I32(20),
                        Value::I32(30),
                        Value::I32(40),
                    ]),
                ),
                width: 4,
            });
        });
        let f = fb.build();
        let mut inp = Tape::new(ScalarTy::I32);
        inp.vpush(&[Value::I32(1), Value::I32(2), Value::I32(3), Value::I32(4)]);
        let mut out = Tape::new(ScalarTy::I32);
        let counters = fire_once(&f, Some(&mut inp), Some(&mut out)).unwrap();
        assert_eq!(
            out.vpop(4),
            vec![
                Value::I32(11),
                Value::I32(22),
                Value::I32(33),
                Value::I32(44)
            ]
        );
        assert!(counters.compute_vector > 0);
        assert_eq!(counters.compute_scalar, 0);
    }

    #[test]
    fn lane_pack_unpack_costs_tracked() {
        use macross_streamir::expr::Expr;
        let mut fb = FilterBuilder::new("pk", 2, 2, 2, ScalarTy::I32);
        let tv = fb.local("t_v", Ty::Vector(ScalarTy::I32, 2));
        fb.work(|b| {
            b.assign(macross_streamir::expr::LValue::LaneVar(tv, 1), peek(1i32));
            b.assign(macross_streamir::expr::LValue::LaneVar(tv, 0), pop());
            b.push(E(Expr::Lane(Box::new(Expr::Var(tv)), 0)));
            b.push(E(Expr::Lane(Box::new(Expr::Var(tv)), 1)));
            b.stmt(macross_streamir::stmt::Stmt::AdvanceRead(1));
        });
        let f = fb.build();
        let mut inp = Tape::new(ScalarTy::I32);
        inp.push(Value::I32(7));
        inp.push(Value::I32(8));
        let mut out = Tape::new(ScalarTy::I32);
        let counters = fire_once(&f, Some(&mut inp), Some(&mut out)).unwrap();
        assert_eq!(out.pop(), Value::I32(7));
        assert_eq!(out.pop(), Value::I32(8));
        // 2 inserts + 2 extracts at cost 1 each.
        assert_eq!(counters.pack_unpack, 4);
        assert!(inp.is_empty());
    }

    #[test]
    fn permutes_deinterleave() {
        use macross_streamir::expr::Expr;
        let a = Expr::ConstVec((0..4).map(Value::I32).collect());
        let b = Expr::ConstVec((4..8).map(Value::I32).collect());
        let mut fb = FilterBuilder::new("perm", 0, 0, 8, ScalarTy::I32);
        fb.work(|bld| {
            bld.stmt(Stmt::VPush {
                value: Expr::PermuteEven(Box::new(a.clone()), Box::new(b.clone())),
                width: 4,
            });
            bld.stmt(Stmt::VPush {
                value: Expr::PermuteOdd(Box::new(a), Box::new(b)),
                width: 4,
            });
        });
        let f = fb.build();
        let mut out = Tape::new(ScalarTy::I32);
        let counters = fire_once(&f, None, Some(&mut out)).unwrap();
        let even = out.vpop(4);
        let odd = out.vpop(4);
        assert_eq!(
            even,
            vec![Value::I32(0), Value::I32(2), Value::I32(4), Value::I32(6)]
        );
        assert_eq!(
            odd,
            vec![Value::I32(1), Value::I32(3), Value::I32(5), Value::I32(7)]
        );
        assert_eq!(counters.permute, 2);
    }

    #[test]
    fn loop_overhead_charged_per_iteration() {
        let mut fb = FilterBuilder::new("l", 0, 0, 4, ScalarTy::I32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.for_(i, 4i32, |b| {
                b.push(v(i));
            });
        });
        let f = fb.build();
        let mut out = Tape::new(ScalarTy::I32);
        let counters = fire_once(&f, None, Some(&mut out)).unwrap();
        assert_eq!(counters.loop_overhead, 4);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn local_channels_roundtrip() {
        use macross_streamir::expr::Expr;
        let fb = FilterBuilder::new("fused", 1, 1, 1, ScalarTy::I32);
        let f = {
            let mut f = fb.build();
            let c = f.add_chan("buf", Ty::Scalar(ScalarTy::I32));
            f.work = {
                let mut b = B::new();
                b.lpush(c, pop() + 1i32);
                b.push(E(Expr::LPop(c)) + 10i32);
                b.build()
            };
            f
        };
        let mut inp = Tape::new(ScalarTy::I32);
        inp.push(Value::I32(5));
        let mut out = Tape::new(ScalarTy::I32);
        let _ = fire_once(&f, Some(&mut inp), Some(&mut out)).unwrap();
        assert_eq!(out.pop(), Value::I32(16));
    }

    #[test]
    fn mixed_operands_rejected() {
        use macross_streamir::expr::Expr;
        let mut fb = FilterBuilder::new("bad", 0, 0, 0, ScalarTy::I32);
        let tv = fb.local("t", Ty::Vector(ScalarTy::I32, 4));
        fb.work(|b| {
            b.set(tv, E(Expr::Var(tv)) + 1i32);
        });
        let f = fb.build();
        let err = fire_once(&f, None, None).unwrap_err();
        match err {
            VmError::TypeMismatch {
                ref filter,
                ref context,
            } => {
                assert_eq!(filter, "bad");
                assert!(context.contains("mixed scalar/vector"), "{context}");
            }
            other => panic!("expected TypeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_tape_reported() {
        let mut fb = FilterBuilder::new("no_tape", 0, 0, 1, ScalarTy::I32);
        fb.work(|b| {
            b.push(pop());
        });
        let f = fb.build();
        let err = fire_once(&f, None, None).unwrap_err();
        assert_eq!(
            err,
            VmError::MissingTape {
                filter: "no_tape".into(),
                side: TapeSide::Input
            }
        );
    }

    #[test]
    fn channel_underflow_reported() {
        use macross_streamir::expr::Expr;
        let fb = FilterBuilder::new("under", 0, 0, 1, ScalarTy::I32);
        let f = {
            let mut f = fb.build();
            let c = f.add_chan("buf", Ty::Scalar(ScalarTy::I32));
            f.work = {
                let mut b = B::new();
                b.push(E(Expr::LPop(c)));
                b.build()
            };
            f
        };
        let mut out = Tape::new(ScalarTy::I32);
        let err = fire_once(&f, None, Some(&mut out)).unwrap_err();
        assert!(matches!(err, VmError::ChannelUnderflow { .. }), "{err:?}");
    }
}
