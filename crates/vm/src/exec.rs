//! Whole-program execution: fires nodes per the SDF schedule, manages
//! tapes and persistent actor state, runs splitters/joiners/sinks natively,
//! and accounts cycles per node.
//!
//! The per-node firing logic itself lives in [`crate::firing`] so the
//! threaded runtime can reuse it against thread-local tapes.

use crate::error::VmError;
use crate::firing::{self, FilterState};
use crate::machine::{CycleCounters, Machine};
use crate::programs::CompiledPrograms;
use crate::tape::Tape;
use macross_sdf::Schedule;
use macross_streamir::graph::{Graph, Node, NodeId, ReorderSide};
use macross_streamir::types::Value;
use macross_telemetry::{EventKind, TraceSession, WorkerTrace};

/// Which engine executes filter work functions.
///
/// The default is [`ExecMode::Bytecode`] unless the crate is built with
/// the `vm-treewalk` feature, which flips the default to the tree-walking
/// oracle — one binary can then run both paths differentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Compiled register bytecode, with per-filter fallback to the
    /// tree-walker for bodies the compiler cannot lower exactly.
    /// Straight-line runs of register ops are fused into superblock
    /// kernels ([`crate::kernel`]).
    Bytecode,
    /// Bytecode without kernel fusion: the plain per-op dispatch loop.
    /// The kernels-off baseline for `interp_hotpath`'s
    /// kernel-vs-dispatch column.
    BytecodeNoFuse,
    /// The original tree-walking interpreter (the differential oracle).
    TreeWalk,
}

impl Default for ExecMode {
    fn default() -> Self {
        if cfg!(feature = "vm-treewalk") {
            ExecMode::TreeWalk
        } else {
            ExecMode::Bytecode
        }
    }
}

/// Per-node firing facts that never change once the graph is built:
/// adjacent edges and their reorder address costs. [`Executor::fire`] is
/// on the hot path of every benchmark; recomputing these from the graph
/// (an edge-table scan plus a `Vec` allocation per lookup) on every
/// firing dominates short firings, so they are resolved once at
/// construction.
struct FirePlan {
    in_edge: Option<macross_streamir::graph::EdgeId>,
    out_edge: Option<macross_streamir::graph::EdgeId>,
    /// Consumer-side reorder address cost of `in_edge` (0 without one).
    in_cost: u64,
    /// Producer-side reorder address cost of `out_edge` (0 without one).
    out_cost: u64,
    /// All input edges as tape indices, sorted by port (joiners).
    in_idx: Vec<usize>,
    /// All output edges as tape indices, sorted by port (splitters).
    out_idx: Vec<usize>,
    /// Consumer-side address cost per entry of `in_idx`.
    in_costs: Vec<u64>,
    /// Producer-side address cost per entry of `out_idx`.
    out_costs: Vec<u64>,
}

impl FirePlan {
    fn compute(graph: &Graph, id: NodeId, machine: &Machine) -> FirePlan {
        let in_edge = graph.single_in_edge(id);
        let out_edge = graph.single_out_edge(id);
        let ins = graph.in_edges(id);
        let outs = graph.out_edges(id);
        FirePlan {
            in_edge,
            out_edge,
            in_cost: in_edge
                .map(|e| firing::edge_addr_cost(graph, e, true, machine))
                .unwrap_or(0),
            out_cost: out_edge
                .map(|e| firing::edge_addr_cost(graph, e, false, machine))
                .unwrap_or(0),
            in_costs: ins
                .iter()
                .map(|&e| firing::edge_addr_cost(graph, e, true, machine))
                .collect(),
            out_costs: outs
                .iter()
                .map(|&e| firing::edge_addr_cost(graph, e, false, machine))
                .collect(),
            in_idx: ins.iter().map(|e| e.0 as usize).collect(),
            out_idx: outs.iter().map(|e| e.0 as usize).collect(),
        }
    }
}

/// Executes a scheduled stream graph on a modelled machine.
pub struct Executor<'a> {
    graph: &'a Graph,
    schedule: &'a Schedule,
    machine: &'a Machine,
    tapes: Vec<Tape>,
    /// Cached adjacency and address costs per node (see [`FirePlan`]).
    plans: Vec<FirePlan>,
    /// Persistent state per node (non-empty for filters only).
    states: Vec<FilterState>,
    counters: CycleCounters,
    node_cycles: Vec<u64>,
    outputs: Vec<Vec<Value>>,
    inits_done: bool,
    /// Firing-span recorder (zero-sized no-op unless the `telemetry`
    /// feature is on and a live handle was installed via
    /// [`Executor::set_trace`]).
    trace: WorkerTrace,
}

impl<'a> Executor<'a> {
    /// Set up tapes and state with the default [`ExecMode`]. Filter `init`
    /// functions run lazily before the first [`Executor::run_init`] /
    /// [`Executor::run_steady`] call.
    pub fn new(graph: &'a Graph, schedule: &'a Schedule, machine: &'a Machine) -> Executor<'a> {
        Executor::with_mode(graph, schedule, machine, ExecMode::default())
    }

    /// [`Executor::new`] with an explicit engine choice.
    pub fn with_mode(
        graph: &'a Graph,
        schedule: &'a Schedule,
        machine: &'a Machine,
        mode: ExecMode,
    ) -> Executor<'a> {
        let programs = CompiledPrograms::compile(graph, machine, mode);
        Executor::with_programs(graph, schedule, machine, &programs)
    }

    /// Build an executor from pre-compiled shared plans instead of
    /// compiling per construction — the multi-session path: one
    /// [`CompiledPrograms`] feeds any number of executors, each with its
    /// own tapes and mutable state but zero compile work.
    ///
    /// # Panics
    /// Panics if `programs` does not cover every node of `graph` (it was
    /// compiled for a different graph).
    pub fn with_programs(
        graph: &'a Graph,
        schedule: &'a Schedule,
        machine: &'a Machine,
        programs: &CompiledPrograms,
    ) -> Executor<'a> {
        assert_eq!(
            programs.node_count(),
            graph.node_count(),
            "compiled programs were built for a different graph"
        );
        let mut tapes: Vec<Tape> = graph.edges().map(|(_, e)| Tape::new(e.elem)).collect();
        for (i, (_, e)) in graph.edges().enumerate() {
            if let Some(r) = e.reorder {
                match r.side {
                    ReorderSide::Consumer => tapes[i].set_read_reorder(r.rate, r.sw),
                    ReorderSide::Producer => tapes[i].set_write_reorder(r.rate, r.sw),
                }
            }
        }
        let states = graph
            .nodes()
            .map(|(id, node)| programs.state_for(id, node))
            .collect();
        let outputs = vec![Vec::new(); graph.node_count()];
        let node_cycles = vec![0; graph.node_count()];
        let plans = graph
            .nodes()
            .map(|(id, _)| FirePlan::compute(graph, id, machine))
            .collect();
        Executor {
            graph,
            schedule,
            machine,
            tapes,
            plans,
            states,
            counters: CycleCounters::default(),
            node_cycles,
            outputs,
            inits_done: false,
            trace: WorkerTrace::disabled(),
        }
    }

    /// Install a recording handle; every subsequent [`Executor::fire`]
    /// emits a `FiringStart`/`FiringEnd` span for the fired node, with the
    /// modelled cycle cost of the firing as the end event's aux payload.
    pub fn set_trace(&mut self, trace: WorkerTrace) {
        self.trace = trace;
    }

    fn run_init_functions(&mut self) -> Result<(), VmError> {
        if self.inits_done {
            return Ok(());
        }
        self.inits_done = true;
        for (id, node) in self.graph.nodes() {
            if let Node::Filter(f) = node {
                let state = &mut self.states[id.0 as usize];
                let kernels = state.kernel_count();
                if kernels > 0 {
                    self.trace
                        .record(EventKind::KernelFusion, id.0, kernels as u64);
                }
                state.run_init_fn(f, self.machine)?;
            }
        }
        Ok(())
    }

    /// Run the initialization schedule (primes peeking filters).
    ///
    /// # Errors
    /// Propagates interpreter failures.
    pub fn run_init(&mut self) -> Result<(), VmError> {
        self.run_init_functions()?;
        let order = self.schedule.order.clone();
        for id in order {
            for _ in 0..self.schedule.init_reps[id.0 as usize] {
                self.fire(id)?;
            }
        }
        Ok(())
    }

    /// Run `iters` steady-state iterations.
    ///
    /// # Errors
    /// Propagates interpreter failures.
    pub fn run_steady(&mut self, iters: u64) -> Result<(), VmError> {
        self.run_init_functions()?;
        let order = self.schedule.order.clone();
        for _ in 0..iters {
            for &id in &order {
                for _ in 0..self.schedule.reps[id.0 as usize] {
                    self.fire(id)?;
                }
            }
        }
        Ok(())
    }

    /// Convenience: init schedule followed by `iters` steady iterations.
    ///
    /// # Errors
    /// Propagates interpreter failures.
    pub fn run(&mut self, iters: u64) -> Result<(), VmError> {
        self.run_init()?;
        self.run_steady(iters)
    }

    /// Zero the cycle counters (e.g. after warm-up or the init schedule).
    pub fn reset_counters(&mut self) {
        self.counters = CycleCounters::default();
        self.node_cycles.iter_mut().for_each(|c| *c = 0);
    }

    /// Aggregate counters.
    pub fn counters(&self) -> &CycleCounters {
        &self.counters
    }

    /// Total modelled cycles.
    pub fn total_cycles(&self) -> u64 {
        self.counters.total()
    }

    /// Cycles attributed to each node.
    pub fn node_cycles(&self) -> &[u64] {
        &self.node_cycles
    }

    /// Values captured by each sink node (indexed by node id).
    pub fn outputs(&self) -> &[Vec<Value>] {
        &self.outputs
    }

    /// All sink outputs concatenated in node order (for differential
    /// comparisons).
    pub fn output_flat(&self) -> Vec<Value> {
        self.outputs.iter().flatten().copied().collect()
    }

    /// Fire one node once.
    ///
    /// # Errors
    /// Propagates interpreter failures (filters only; the native nodes
    /// cannot fail).
    pub fn fire(&mut self, id: NodeId) -> Result<(), VmError> {
        let before = self.counters.total();
        self.trace.record(EventKind::FiringStart, id.0, 0);
        self.counters.firing_overhead += self.machine.cost.firing;
        let i = id.0 as usize;
        // Reorder address costs apply to the *scalar* side of a reordered
        // tape: the consumer side when the edge reorders reads, the
        // producer side when it reorders writes. All of this adjacency is
        // immutable, so it comes from the per-node plan, not the graph.
        match self.graph.node(id) {
            Node::Filter(f) => {
                let plan = &self.plans[i];
                firing::fire_filter(
                    f,
                    &mut self.states[i],
                    &mut self.tapes,
                    plan.in_edge.map(|e| e.0 as usize),
                    plan.out_edge.map(|e| e.0 as usize),
                    plan.in_cost,
                    plan.out_cost,
                    self.machine,
                    &mut self.counters,
                )?;
            }
            Node::Splitter(kind) => {
                let plan = &self.plans[i];
                let in_edge = plan.in_edge.expect("splitter needs an input");
                firing::fire_splitter(
                    kind,
                    &mut self.tapes,
                    in_edge.0 as usize,
                    &plan.out_idx,
                    plan.in_cost,
                    &plan.out_costs,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::Joiner(weights) => {
                let plan = &self.plans[i];
                let out = plan.out_edge.expect("joiner needs an output");
                firing::fire_joiner(
                    weights,
                    &mut self.tapes,
                    &plan.in_idx,
                    out.0 as usize,
                    &plan.in_costs,
                    plan.out_cost,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::HSplitter { kind, width } => {
                let plan = &self.plans[i];
                let in_edge = plan.in_edge.expect("hsplitter needs an input");
                firing::fire_hsplitter(
                    kind,
                    *width,
                    &mut self.tapes,
                    in_edge.0 as usize,
                    &plan.out_idx,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::HJoiner { weights, width } => {
                let plan = &self.plans[i];
                let out = plan.out_edge.expect("hjoiner needs an output");
                firing::fire_hjoiner(
                    weights,
                    *width,
                    &mut self.tapes,
                    &plan.in_idx,
                    out.0 as usize,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::Sink => {
                let plan = &self.plans[i];
                let in_edge = plan.in_edge.expect("sink needs an input");
                let v = firing::fire_sink(
                    &mut self.tapes,
                    in_edge.0 as usize,
                    plan.in_cost,
                    self.machine,
                    &mut self.counters,
                );
                self.outputs[i].push(v);
            }
        }
        let cost = self.counters.total() - before;
        self.trace.record(EventKind::FiringEnd, id.0, cost);
        self.node_cycles[i] += cost;
        Ok(())
    }
}

/// Result of a convenience whole-program run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Concatenated sink outputs.
    pub output: Vec<Value>,
    /// Aggregate cycle counters for the measured steady iterations.
    pub counters: CycleCounters,
    /// Per-node cycles.
    pub node_cycles: Vec<u64>,
}

impl RunResult {
    /// Total modelled cycles.
    pub fn total_cycles(&self) -> u64 {
        self.counters.total()
    }
}

/// Schedule and execute a graph for `iters` steady-state iterations on
/// `machine`, excluding initialization from the cycle counts.
///
/// # Errors
/// Propagates scheduling failures and interpreter failures.
pub fn run_program(graph: &Graph, machine: &Machine, iters: u64) -> Result<RunResult, VmError> {
    let schedule = Schedule::compute(graph)?;
    run_scheduled(graph, &schedule, machine, iters)
}

/// Execute a graph with a pre-computed (possibly SIMD-adjusted) schedule.
///
/// # Errors
/// Propagates interpreter failures.
pub fn run_scheduled(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    iters: u64,
) -> Result<RunResult, VmError> {
    run_scheduled_traced(graph, schedule, machine, iters, &TraceSession::disabled())
}

/// [`run_scheduled`] with an explicit engine choice (differential runs
/// pit [`ExecMode::Bytecode`] against [`ExecMode::TreeWalk`]).
///
/// # Errors
/// Propagates interpreter failures.
pub fn run_scheduled_mode(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    iters: u64,
    mode: ExecMode,
) -> Result<RunResult, VmError> {
    run_scheduled_traced_mode(
        graph,
        schedule,
        machine,
        iters,
        &TraceSession::disabled(),
        mode,
    )
}

/// [`run_scheduled`] recording firing spans into worker 0 of `session`
/// (the single-threaded executor is one timeline). Init firings are
/// recorded too — they appear before the steady phase on the timeline but
/// are still excluded from the returned cycle counts.
///
/// # Errors
/// Propagates interpreter failures.
pub fn run_scheduled_traced(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    iters: u64,
    session: &TraceSession,
) -> Result<RunResult, VmError> {
    run_scheduled_traced_mode(
        graph,
        schedule,
        machine,
        iters,
        session,
        ExecMode::default(),
    )
}

/// [`run_scheduled_traced`] with an explicit engine choice.
///
/// # Errors
/// Propagates interpreter failures.
pub fn run_scheduled_traced_mode(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    iters: u64,
    session: &TraceSession,
    mode: ExecMode,
) -> Result<RunResult, VmError> {
    let mut ex = Executor::with_mode(graph, schedule, machine, mode);
    ex.set_trace(session.worker(0));
    ex.run_init()?;
    ex.reset_counters();
    ex.run_steady(iters)?;
    Ok(RunResult {
        output: ex.output_flat(),
        counters: *ex.counters(),
        node_cycles: ex.node_cycles().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};

    fn counting_source(name: &str, push: usize) -> StreamSpec {
        let mut fb = FilterBuilder::new(name, 0, 0, push, ScalarTy::I32);
        let n = fb.state("n", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            for _ in 0..push {
                b.push(v(n));
                b.set(n, v(n) + 1i32);
            }
        });
        fb.build_spec()
    }

    #[test]
    fn end_to_end_identity_pipeline() {
        let mut scale = FilterBuilder::new("scale", 1, 1, 1, ScalarTy::I32);
        scale.work(|b| {
            b.push(pop() * 3i32);
        });
        let g = StreamSpec::pipeline(vec![
            counting_source("src", 2),
            scale.build_spec(),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let res = run_program(&g, &machine, 3).unwrap();
        // 3 iterations x src rep 1 x push 2 = 6 outputs.
        assert_eq!(
            res.output,
            (0..6).map(|x| Value::I32(x * 3)).collect::<Vec<_>>()
        );
        assert!(res.total_cycles() > 0);
    }

    #[test]
    fn split_join_round_robin_order_preserved() {
        let mk_add = |name: &str, add: i32| {
            let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::I32);
            fb.work(move |b| {
                b.push(pop() + add);
            });
            fb.build_spec()
        };
        let g = StreamSpec::pipeline(vec![
            counting_source("src", 4),
            StreamSpec::split_join_uniform(
                1,
                1,
                vec![
                    mk_add("a", 1000),
                    mk_add("b", 2000),
                    mk_add("c", 3000),
                    mk_add("d", 4000),
                ],
            ),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 1).unwrap();
        assert_eq!(
            res.output,
            vec![
                Value::I32(1000),
                Value::I32(2001),
                Value::I32(3002),
                Value::I32(4003)
            ]
        );
    }

    #[test]
    fn duplicate_splitter_copies() {
        let id_f = |name: &str| {
            let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::I32);
            fb.work(|b| {
                b.push(pop());
            });
            fb.build_spec()
        };
        let g = StreamSpec::pipeline(vec![
            counting_source("src", 1),
            StreamSpec::split_join_duplicate(1, vec![id_f("l"), id_f("r")]),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 2).unwrap();
        assert_eq!(
            res.output,
            vec![Value::I32(0), Value::I32(0), Value::I32(1), Value::I32(1)]
        );
    }

    #[test]
    fn peeking_filter_sliding_window() {
        // Moving sum of a 3-window over the counting stream.
        let mut fir = FilterBuilder::new("fir", 3, 1, 1, ScalarTy::I32);
        fir.work(|b| {
            b.push(peek(0i32) + peek(1i32) + peek(2i32));
            b.stmt(macross_streamir::stmt::Stmt::AdvanceRead(1));
        });
        let g = StreamSpec::pipeline(vec![
            counting_source("src", 1),
            fir.build_spec(),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 4).unwrap();
        // Windows start at 0: 0+1+2, 1+2+3, ...
        assert_eq!(
            res.output,
            vec![Value::I32(3), Value::I32(6), Value::I32(9), Value::I32(12)]
        );
    }

    #[test]
    fn stateful_accumulator_persists() {
        let mut acc = FilterBuilder::new("acc", 1, 1, 1, ScalarTy::I32);
        let s = acc.state("sum", Ty::Scalar(ScalarTy::I32));
        acc.work(|b| {
            b.set(s, v(s) + pop());
            b.push(v(s));
        });
        let g = StreamSpec::pipeline(vec![
            counting_source("src", 1),
            acc.build_spec(),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 4).unwrap();
        assert_eq!(
            res.output,
            vec![Value::I32(0), Value::I32(1), Value::I32(3), Value::I32(6)]
        );
    }

    #[test]
    fn init_function_fills_state() {
        let mut lut = FilterBuilder::new("lut", 1, 1, 1, ScalarTy::I32);
        let table = lut.state("table", Ty::Array(ScalarTy::I32, 4));
        let i = lut.local("i", Ty::Scalar(ScalarTy::I32));
        let x = lut.local("x", Ty::Scalar(ScalarTy::I32));
        lut.init(|b| {
            b.for_(i, 4i32, |b| {
                b.set_idx(table, v(i), v(i) * 100i32);
            });
        });
        lut.work(|b| {
            b.set(x, pop() & 3i32);
            // Builds an EDSL AST; the `* 0` term exists to exercise the
            // interpreter, not host arithmetic.
            #[allow(clippy::erasing_op)]
            b.push(idx(table, v(x)) * 0i32 + idx(table, 2i32));
        });
        let g = StreamSpec::pipeline(vec![
            counting_source("src", 1),
            lut.build_spec(),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 1).unwrap();
        assert_eq!(res.output, vec![Value::I32(200)]);
    }

    #[test]
    fn traced_run_matches_untraced() {
        let mut f = FilterBuilder::new("f", 1, 1, 1, ScalarTy::I32);
        f.work(|b| {
            b.push(pop() + 1i32);
        });
        let g = StreamSpec::pipeline(vec![
            counting_source("src", 1),
            f.build_spec(),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let m = Machine::core_i7();
        let sched = Schedule::compute(&g).unwrap();
        let plain = run_scheduled(&g, &sched, &m, 5).unwrap();
        let session = TraceSession::new(1, 1 << 12);
        let traced = run_scheduled_traced(&g, &sched, &m, 5, &session).unwrap();
        assert_eq!(traced.output, plain.output);
        assert_eq!(traced.counters, plain.counters);
        if cfg!(feature = "telemetry") {
            // 3 nodes x 5 iterations x (start + end), plus init (none here).
            assert_eq!(session.drain().len(), 3 * 5 * 2);
        } else {
            assert!(session.drain().is_empty());
        }
    }

    #[test]
    fn node_cycles_sum_to_total() {
        let mut f = FilterBuilder::new("f", 1, 1, 1, ScalarTy::I32);
        f.work(|b| {
            b.push(pop() + 1i32);
        });
        let g = StreamSpec::pipeline(vec![
            counting_source("src", 1),
            f.build_spec(),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 5).unwrap();
        assert_eq!(res.node_cycles.iter().sum::<u64>(), res.total_cycles());
    }
}

#[cfg(test)]
mod reorder_cost_tests {
    use super::*;
    use macross_sdf::Schedule;
    use macross_streamir::edsl::*;
    use macross_streamir::expr::Expr;
    use macross_streamir::graph::{AddrGen, Reorder};
    use macross_streamir::stmt::Stmt;
    use macross_streamir::types::{ScalarTy, Ty};

    /// A joiner writing into a write-reordered tape (vectorized consumer)
    /// must pay the address-generation overhead — SAGU free, software 6
    /// cycles per access.
    #[test]
    fn joiner_pays_reorder_addr_cost() {
        let build = |addr_gen: AddrGen| {
            let mut g = Graph::new();
            let mut s1 = macross_streamir::Filter::new("s1", 0, 0, 2);
            s1.work = {
                let mut b = B::new();
                b.push(1i32).push(2i32);
                b.build()
            };
            let mut s2 = s1.clone();
            s2.name = "s2".into();
            let a = g.add_node(Node::Filter(s1));
            let c = g.add_node(Node::Filter(s2));
            let j = g.add_node(Node::Joiner(vec![2, 2]));
            // Vectorized consumer doing vector pops of width 4, rate 1.
            let mut vf = macross_streamir::Filter::new("v", 4, 4, 4);
            let tv = vf.add_var(
                "t",
                Ty::Vector(ScalarTy::I32, 4),
                macross_streamir::VarKind::Local,
            );
            vf.work = vec![
                Stmt::Assign(macross_streamir::LValue::Var(tv), Expr::VPop { width: 4 }),
                Stmt::VPush {
                    value: Expr::Var(tv),
                    width: 4,
                },
            ];
            let vnode = g.add_node(Node::Filter(vf));
            let k = g.add_node(Node::Sink);
            g.connect(a, 0, j, 0, ScalarTy::I32);
            g.connect(c, 0, j, 1, ScalarTy::I32);
            let e = g.connect(j, 0, vnode, 0, ScalarTy::I32);
            g.edge_mut(e).reorder = Some(Reorder {
                rate: 1,
                sw: 4,
                side: ReorderSide::Producer,
                addr_gen,
            });
            g.connect(vnode, 0, k, 0, ScalarTy::I32);
            g
        };
        let machine = Machine::core_i7_with_sagu();
        let g_sagu = build(AddrGen::Sagu);
        let g_soft = build(AddrGen::Software);
        let sched = Schedule::compute(&g_sagu).unwrap();
        let r_sagu = crate::exec::run_scheduled(&g_sagu, &sched, &machine, 2).unwrap();
        let r_soft = crate::exec::run_scheduled(&g_soft, &sched, &machine, 2).unwrap();
        assert_eq!(r_sagu.output, r_soft.output, "functionally identical");
        // 4 joiner pushes per iteration x 2 iterations x 6 cycles.
        assert_eq!(
            r_soft.counters.addr_overhead - r_sagu.counters.addr_overhead,
            4 * 2 * machine.cost.addr_software_reorder
        );
    }
}
