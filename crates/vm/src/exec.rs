//! Whole-program execution: fires nodes per the SDF schedule, manages
//! tapes and persistent actor state, runs splitters/joiners/sinks natively,
//! and accounts cycles per node.

use crate::interp::{reset_locals, zero_slots, FiringCtx, Slot};
use crate::machine::{CycleCounters, Machine};
use crate::tape::Tape;
use macross_sdf::Schedule;
use macross_streamir::graph::{EdgeId, Graph, Node, NodeId, ReorderSide, SplitKind};
use macross_streamir::types::Value;
use macross_streamir::AddrGen;
use std::collections::VecDeque;

/// Executes a scheduled stream graph on a modelled machine.
pub struct Executor<'a> {
    graph: &'a Graph,
    schedule: &'a Schedule,
    machine: &'a Machine,
    tapes: Vec<Tape>,
    /// Persistent variable slots per node (filters only).
    slots: Vec<Vec<Slot>>,
    /// Persistent channel storage per node (drained every firing).
    chans: Vec<Vec<VecDeque<Value>>>,
    counters: CycleCounters,
    node_cycles: Vec<u64>,
    outputs: Vec<Vec<Value>>,
}

impl<'a> Executor<'a> {
    /// Set up tapes and state, and run every filter's `init` function.
    ///
    /// Cycles spent in `init` functions are *not* counted: the paper's
    /// measurements are steady-state.
    pub fn new(graph: &'a Graph, schedule: &'a Schedule, machine: &'a Machine) -> Executor<'a> {
        let mut tapes: Vec<Tape> = graph.edges().map(|(_, e)| Tape::new(e.elem)).collect();
        for (i, (_, e)) in graph.edges().enumerate() {
            if let Some(r) = e.reorder {
                match r.side {
                    ReorderSide::Consumer => tapes[i].set_read_reorder(r.rate, r.sw),
                    ReorderSide::Producer => tapes[i].set_write_reorder(r.rate, r.sw),
                }
            }
        }
        let mut slots = Vec::with_capacity(graph.node_count());
        let mut chans = Vec::with_capacity(graph.node_count());
        for (_, node) in graph.nodes() {
            match node {
                Node::Filter(f) => {
                    slots.push(zero_slots(f));
                    chans.push(vec![VecDeque::new(); f.chans.len()]);
                }
                _ => {
                    slots.push(Vec::new());
                    chans.push(Vec::new());
                }
            }
        }
        let outputs = vec![Vec::new(); graph.node_count()];
        let node_cycles = vec![0; graph.node_count()];
        let mut ex = Executor {
            graph,
            schedule,
            machine,
            tapes,
            slots,
            chans,
            counters: CycleCounters::default(),
            node_cycles,
            outputs,
        };
        ex.run_init_functions();
        ex
    }

    fn run_init_functions(&mut self) {
        let mut scratch = CycleCounters::default();
        for (id, node) in self.graph.nodes() {
            if let Node::Filter(f) = node {
                if f.init.is_empty() {
                    continue;
                }
                let mut slots = std::mem::take(&mut self.slots[id.0 as usize]);
                let mut chans = std::mem::take(&mut self.chans[id.0 as usize]);
                {
                    let mut ctx = FiringCtx {
                        filter: f,
                        slots: &mut slots,
                        chans: &mut chans,
                        input: None,
                        output: None,
                        machine: self.machine,
                        counters: &mut scratch,
                        input_addr_cost: 0,
                        output_addr_cost: 0,
                    };
                    ctx.exec_block(&f.init);
                }
                self.slots[id.0 as usize] = slots;
                self.chans[id.0 as usize] = chans;
            }
        }
    }

    /// Run the initialization schedule (primes peeking filters).
    pub fn run_init(&mut self) {
        let order = self.schedule.order.clone();
        for id in order {
            for _ in 0..self.schedule.init_reps[id.0 as usize] {
                self.fire(id);
            }
        }
    }

    /// Run `iters` steady-state iterations.
    pub fn run_steady(&mut self, iters: u64) {
        let order = self.schedule.order.clone();
        for _ in 0..iters {
            for &id in &order {
                for _ in 0..self.schedule.reps[id.0 as usize] {
                    self.fire(id);
                }
            }
        }
    }

    /// Convenience: init schedule followed by `iters` steady iterations.
    pub fn run(&mut self, iters: u64) {
        self.run_init();
        self.run_steady(iters);
    }

    /// Zero the cycle counters (e.g. after warm-up or the init schedule).
    pub fn reset_counters(&mut self) {
        self.counters = CycleCounters::default();
        self.node_cycles.iter_mut().for_each(|c| *c = 0);
    }

    /// Aggregate counters.
    pub fn counters(&self) -> &CycleCounters {
        &self.counters
    }

    /// Total modelled cycles.
    pub fn total_cycles(&self) -> u64 {
        self.counters.total()
    }

    /// Cycles attributed to each node.
    pub fn node_cycles(&self) -> &[u64] {
        &self.node_cycles
    }

    /// Values captured by each sink node (indexed by node id).
    pub fn outputs(&self) -> &[Vec<Value>] {
        &self.outputs
    }

    /// All sink outputs concatenated in node order (for differential
    /// comparisons).
    pub fn output_flat(&self) -> Vec<Value> {
        self.outputs.iter().flatten().copied().collect()
    }

    fn addr_cost(&self, gen: AddrGen) -> u64 {
        match gen {
            AddrGen::Sagu => self.machine.cost.sagu_access,
            AddrGen::Software => self.machine.cost.addr_software_reorder,
        }
    }

    /// Fire one node once.
    pub fn fire(&mut self, id: NodeId) {
        let before = self.counters.total();
        self.counters.firing_overhead += self.machine.cost.firing;
        match self.graph.node(id) {
            Node::Filter(_) => self.fire_filter(id),
            Node::Splitter(kind) => {
                let kind = kind.clone();
                self.fire_splitter(id, &kind);
            }
            Node::Joiner(w) => {
                let w = w.clone();
                self.fire_joiner(id, &w);
            }
            Node::HSplitter { kind, width } => {
                let (kind, width) = (kind.clone(), *width);
                self.fire_hsplitter(id, &kind, width);
            }
            Node::HJoiner { weights, width } => {
                let (w, width) = (weights.clone(), *width);
                self.fire_hjoiner(id, &w, width);
            }
            Node::Sink => self.fire_sink(id),
        }
        self.node_cycles[id.0 as usize] += self.counters.total() - before;
    }

    fn fire_filter(&mut self, id: NodeId) {
        let node = self.graph.node(id);
        let f = node.as_filter().expect("fire_filter on non-filter");
        let in_edge = self.graph.single_in_edge(id);
        let out_edge = self.graph.single_out_edge(id);

        // Reorder address costs apply to the *scalar* side of a reordered
        // tape: the consumer side when the edge reorders reads, the
        // producer side when it reorders writes.
        let input_addr_cost = in_edge
            .and_then(|e| self.graph.edge(e).reorder)
            .filter(|r| r.side == ReorderSide::Consumer)
            .map(|r| self.addr_cost(r.addr_gen))
            .unwrap_or(0);
        let output_addr_cost = out_edge
            .and_then(|e| self.graph.edge(e).reorder)
            .filter(|r| r.side == ReorderSide::Producer)
            .map(|r| self.addr_cost(r.addr_gen))
            .unwrap_or(0);

        let mut slots = std::mem::take(&mut self.slots[id.0 as usize]);
        let mut chans = std::mem::take(&mut self.chans[id.0 as usize]);
        reset_locals(f, &mut slots);

        let mut in_tape = in_edge.map(|e| std::mem::take(&mut self.tapes[e.0 as usize]));
        let mut out_tape = out_edge.map(|e| std::mem::take(&mut self.tapes[e.0 as usize]));
        {
            let mut ctx = FiringCtx {
                filter: f,
                slots: &mut slots,
                chans: &mut chans,
                input: in_tape.as_mut(),
                output: out_tape.as_mut(),
                machine: self.machine,
                counters: &mut self.counters,
                input_addr_cost,
                output_addr_cost,
            };
            ctx.exec_block(&f.work);
        }
        if let (Some(e), Some(t)) = (in_edge, in_tape) {
            self.tapes[e.0 as usize] = t;
        }
        if let (Some(e), Some(t)) = (out_edge, out_tape) {
            self.tapes[e.0 as usize] = t;
        }
        debug_assert!(
            chans.iter().all(|c| c.is_empty()),
            "filter {} left data in an internal channel after firing",
            f.name
        );
        self.slots[id.0 as usize] = slots;
        self.chans[id.0 as usize] = chans;
    }

    /// Reorder address-generation cost a scalar access on `edge` pays at
    /// this node (SAGU or Figure-8 software), if the edge is reordered on
    /// this node's side.
    fn edge_addr_cost(&self, edge: EdgeId, consuming: bool) -> u64 {
        self.graph
            .edge(edge)
            .reorder
            .filter(|r| {
                (consuming && r.side == ReorderSide::Consumer)
                    || (!consuming && r.side == ReorderSide::Producer)
            })
            .map(|r| self.addr_cost(r.addr_gen))
            .unwrap_or(0)
    }

    fn fire_splitter(&mut self, id: NodeId, kind: &SplitKind) {
        let in_edge = self.graph.single_in_edge(id).expect("splitter needs an input");
        let outs = self.graph.out_edges(id);
        let in_cost = self.edge_addr_cost(in_edge, true);
        match kind {
            SplitKind::Duplicate => {
                self.counters.mem_scalar += self.machine.cost.load;
                self.counters.addr_overhead += in_cost;
                let v = self.tapes[in_edge.0 as usize].pop();
                for e in outs {
                    self.counters.mem_scalar += self.machine.cost.store;
                    self.counters.addr_overhead += self.edge_addr_cost(e, false);
                    self.tapes[e.0 as usize].push(v);
                }
            }
            SplitKind::RoundRobin(weights) => {
                for (i, e) in outs.iter().enumerate() {
                    let out_cost = self.edge_addr_cost(*e, false);
                    for _ in 0..weights[i] {
                        self.counters.mem_scalar += self.machine.cost.load + self.machine.cost.store;
                        self.counters.addr_overhead += in_cost + out_cost;
                        let v = self.tapes[in_edge.0 as usize].pop();
                        self.tapes[e.0 as usize].push(v);
                    }
                }
            }
        }
    }

    fn fire_joiner(&mut self, id: NodeId, weights: &[usize]) {
        let ins = self.graph.in_edges(id);
        let out = self.graph.single_out_edge(id).expect("joiner needs an output");
        let out_cost = self.edge_addr_cost(out, false);
        for (i, e) in ins.iter().enumerate() {
            let in_cost = self.edge_addr_cost(*e, true);
            for _ in 0..weights[i] {
                self.counters.mem_scalar += self.machine.cost.load + self.machine.cost.store;
                self.counters.addr_overhead += in_cost + out_cost;
                let v = self.tapes[e.0 as usize].pop();
                self.tapes[out.0 as usize].push(v);
            }
        }
    }

    /// Horizontal splitter: pops the original splitter's worth of scalars,
    /// packs them into vectors (one lane per fused branch), and vector-
    /// pushes to each group's vector tape.
    fn fire_hsplitter(&mut self, id: NodeId, kind: &SplitKind, width: usize) {
        let in_edge = self.graph.single_in_edge(id).expect("hsplitter needs an input");
        let outs = self.graph.out_edges(id);
        let groups = outs.len();
        match kind {
            SplitKind::Duplicate => {
                self.counters.mem_scalar += self.machine.cost.load;
                let v = self.tapes[in_edge.0 as usize].pop();
                for e in outs {
                    self.counters.pack_unpack += self.machine.cost.splat;
                    self.counters.mem_vector += self.machine.cost.vstore;
                    self.tapes[e.0 as usize].vpush(&vec![v; width]);
                }
            }
            SplitKind::RoundRobin(weights) => {
                let w = weights[0];
                debug_assert!(weights.iter().all(|&x| x == w), "hsplitter weights must be uniform");
                let n = groups * width;
                let mut vals = Vec::with_capacity(n * w);
                for _ in 0..n * w {
                    self.counters.mem_scalar += self.machine.cost.load;
                    vals.push(self.tapes[in_edge.0 as usize].pop());
                }
                for (g, e) in outs.iter().enumerate() {
                    for k in 0..w {
                        let mut vec = Vec::with_capacity(width);
                        for j in 0..width {
                            self.counters.pack_unpack += self.machine.cost.lane_insert;
                            vec.push(vals[w * (g * width + j) + k]);
                        }
                        self.counters.mem_vector += self.machine.cost.vstore;
                        self.tapes[e.0 as usize].vpush(&vec);
                    }
                }
            }
        }
    }

    /// Horizontal joiner: vector-pops from each group, unpacks lanes, and
    /// pushes scalars in the original joiner's round-robin order.
    fn fire_hjoiner(&mut self, id: NodeId, weights: &[usize], width: usize) {
        let ins = self.graph.in_edges(id);
        let out = self.graph.single_out_edge(id).expect("hjoiner needs an output");
        let w = weights[0];
        debug_assert!(weights.iter().all(|&x| x == w), "hjoiner weights must be uniform");
        let groups = ins.len();
        // rows[g][k] = k-th vector popped from group g this firing.
        let mut rows: Vec<Vec<Vec<Value>>> = Vec::with_capacity(groups);
        for e in &ins {
            let mut group_rows = Vec::with_capacity(w);
            for _ in 0..w {
                self.counters.mem_vector += self.machine.cost.vload;
                group_rows.push(self.tapes[e.0 as usize].vpop(width));
            }
            rows.push(group_rows);
        }
        let n = groups * width;
        for b in 0..n {
            for k in 0..w {
                self.counters.pack_unpack += self.machine.cost.lane_extract;
                self.counters.mem_scalar += self.machine.cost.store;
                let v = rows[b / width][k][b % width];
                self.tapes[out.0 as usize].push(v);
            }
        }
    }

    fn fire_sink(&mut self, id: NodeId) {
        let in_edge = self.graph.single_in_edge(id).expect("sink needs an input");
        let in_reorder_cost = self
            .graph
            .edge(in_edge)
            .reorder
            .filter(|r| r.side == ReorderSide::Consumer)
            .map(|r| self.addr_cost(r.addr_gen))
            .unwrap_or(0);
        self.counters.mem_scalar += self.machine.cost.load;
        self.counters.addr_overhead += in_reorder_cost;
        let v = self.tapes[in_edge.0 as usize].pop();
        self.outputs[id.0 as usize].push(v);
    }
}

/// Result of a convenience whole-program run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Concatenated sink outputs.
    pub output: Vec<Value>,
    /// Aggregate cycle counters for the measured steady iterations.
    pub counters: CycleCounters,
    /// Per-node cycles.
    pub node_cycles: Vec<u64>,
}

impl RunResult {
    /// Total modelled cycles.
    pub fn total_cycles(&self) -> u64 {
        self.counters.total()
    }
}

/// Schedule and execute a graph for `iters` steady-state iterations on
/// `machine`, excluding initialization from the cycle counts.
///
/// # Errors
/// Propagates scheduling failures.
pub fn run_program(graph: &Graph, machine: &Machine, iters: u64) -> Result<RunResult, macross_sdf::ScheduleError> {
    let schedule = Schedule::compute(graph)?;
    Ok(run_scheduled(graph, &schedule, machine, iters))
}

/// Execute a graph with a pre-computed (possibly SIMD-adjusted) schedule.
pub fn run_scheduled(graph: &Graph, schedule: &Schedule, machine: &Machine, iters: u64) -> RunResult {
    let mut ex = Executor::new(graph, schedule, machine);
    ex.run_init();
    ex.reset_counters();
    ex.run_steady(iters);
    RunResult {
        output: ex.output_flat(),
        counters: *ex.counters(),
        node_cycles: ex.node_cycles().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};

    fn counting_source(name: &str, push: usize) -> StreamSpec {
        let mut fb = FilterBuilder::new(name, 0, 0, push, ScalarTy::I32);
        let n = fb.state("n", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            for _ in 0..push {
                b.push(v(n));
                b.set(n, v(n) + 1i32);
            }
        });
        fb.build_spec()
    }

    #[test]
    fn end_to_end_identity_pipeline() {
        let mut scale = FilterBuilder::new("scale", 1, 1, 1, ScalarTy::I32);
        scale.work(|b| {
            b.push(pop() * 3i32);
        });
        let g = StreamSpec::pipeline(vec![counting_source("src", 2), scale.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let machine = Machine::core_i7();
        let res = run_program(&g, &machine, 3).unwrap();
        // 3 iterations x src rep 1 x push 2 = 6 outputs.
        assert_eq!(res.output, (0..6).map(|x| Value::I32(x * 3)).collect::<Vec<_>>());
        assert!(res.total_cycles() > 0);
    }

    #[test]
    fn split_join_round_robin_order_preserved() {
        let mk_add = |name: &str, add: i32| {
            let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::I32);
            fb.work(move |b| {
                b.push(pop() + add);
            });
            fb.build_spec()
        };
        let g = StreamSpec::pipeline(vec![
            counting_source("src", 4),
            StreamSpec::split_join_uniform(1, 1, vec![mk_add("a", 1000), mk_add("b", 2000), mk_add("c", 3000), mk_add("d", 4000)]),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 1).unwrap();
        assert_eq!(
            res.output,
            vec![Value::I32(1000), Value::I32(2001), Value::I32(3002), Value::I32(4003)]
        );
    }

    #[test]
    fn duplicate_splitter_copies() {
        let id_f = |name: &str| {
            let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::I32);
            fb.work(|b| {
                b.push(pop());
            });
            fb.build_spec()
        };
        let g = StreamSpec::pipeline(vec![
            counting_source("src", 1),
            StreamSpec::split_join_duplicate(1, vec![id_f("l"), id_f("r")]),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 2).unwrap();
        assert_eq!(res.output, vec![Value::I32(0), Value::I32(0), Value::I32(1), Value::I32(1)]);
    }

    #[test]
    fn peeking_filter_sliding_window() {
        // Moving sum of a 3-window over the counting stream.
        let mut fir = FilterBuilder::new("fir", 3, 1, 1, ScalarTy::I32);
        fir.work(|b| {
            b.push(peek(0i32) + peek(1i32) + peek(2i32));
            b.stmt(macross_streamir::stmt::Stmt::AdvanceRead(1));
        });
        let g = StreamSpec::pipeline(vec![counting_source("src", 1), fir.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 4).unwrap();
        // Windows start at 0: 0+1+2, 1+2+3, ...
        assert_eq!(
            res.output,
            vec![Value::I32(3), Value::I32(6), Value::I32(9), Value::I32(12)]
        );
    }

    #[test]
    fn stateful_accumulator_persists() {
        let mut acc = FilterBuilder::new("acc", 1, 1, 1, ScalarTy::I32);
        let s = acc.state("sum", Ty::Scalar(ScalarTy::I32));
        acc.work(|b| {
            b.set(s, v(s) + pop());
            b.push(v(s));
        });
        let g = StreamSpec::pipeline(vec![counting_source("src", 1), acc.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 4).unwrap();
        assert_eq!(res.output, vec![Value::I32(0), Value::I32(1), Value::I32(3), Value::I32(6)]);
    }

    #[test]
    fn init_function_fills_state() {
        let mut lut = FilterBuilder::new("lut", 1, 1, 1, ScalarTy::I32);
        let table = lut.state("table", Ty::Array(ScalarTy::I32, 4));
        let i = lut.local("i", Ty::Scalar(ScalarTy::I32));
        let x = lut.local("x", Ty::Scalar(ScalarTy::I32));
        lut.init(|b| {
            b.for_(i, 4i32, |b| {
                b.set_idx(table, v(i), v(i) * 100i32);
            });
        });
        lut.work(|b| {
            b.set(x, pop() & 3i32);
            b.push(idx(table, v(x)) * 0i32 + idx(table, 2i32));
        });
        let g = StreamSpec::pipeline(vec![counting_source("src", 1), lut.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 1).unwrap();
        assert_eq!(res.output, vec![Value::I32(200)]);
    }

    #[test]
    fn node_cycles_sum_to_total() {
        let mut f = FilterBuilder::new("f", 1, 1, 1, ScalarTy::I32);
        f.work(|b| {
            b.push(pop() + 1i32);
        });
        let g = StreamSpec::pipeline(vec![counting_source("src", 1), f.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let res = run_program(&g, &Machine::core_i7(), 5).unwrap();
        assert_eq!(res.node_cycles.iter().sum::<u64>(), res.total_cycles());
    }
}

#[cfg(test)]
mod reorder_cost_tests {
    use super::*;
    use macross_sdf::Schedule;
    use macross_streamir::edsl::*;
    use macross_streamir::expr::Expr;
    use macross_streamir::graph::{AddrGen, Reorder};
    use macross_streamir::stmt::Stmt;
    use macross_streamir::types::{ScalarTy, Ty};

    /// A joiner writing into a write-reordered tape (vectorized consumer)
    /// must pay the address-generation overhead — SAGU free, software 6
    /// cycles per access.
    #[test]
    fn joiner_pays_reorder_addr_cost() {
        let build = |addr_gen: AddrGen| {
            let mut g = Graph::new();
            let mut s1 = macross_streamir::Filter::new("s1", 0, 0, 2);
            s1.work = {
                let mut b = B::new();
                b.push(1i32).push(2i32);
                b.build()
            };
            let mut s2 = s1.clone();
            s2.name = "s2".into();
            let a = g.add_node(Node::Filter(s1));
            let c = g.add_node(Node::Filter(s2));
            let j = g.add_node(Node::Joiner(vec![2, 2]));
            // Vectorized consumer doing vector pops of width 4, rate 1.
            let mut vf = macross_streamir::Filter::new("v", 4, 4, 4);
            let tv = vf.add_var("t", Ty::Vector(ScalarTy::I32, 4), macross_streamir::VarKind::Local);
            vf.work = vec![
                Stmt::Assign(macross_streamir::LValue::Var(tv), Expr::VPop { width: 4 }),
                Stmt::VPush { value: Expr::Var(tv), width: 4 },
            ];
            let vnode = g.add_node(Node::Filter(vf));
            let k = g.add_node(Node::Sink);
            g.connect(a, 0, j, 0, ScalarTy::I32);
            g.connect(c, 0, j, 1, ScalarTy::I32);
            let e = g.connect(j, 0, vnode, 0, ScalarTy::I32);
            g.edge_mut(e).reorder =
                Some(Reorder { rate: 1, sw: 4, side: ReorderSide::Producer, addr_gen });
            g.connect(vnode, 0, k, 0, ScalarTy::I32);
            g
        };
        let machine = Machine::core_i7_with_sagu();
        let g_sagu = build(AddrGen::Sagu);
        let g_soft = build(AddrGen::Software);
        let sched = Schedule::compute(&g_sagu).unwrap();
        let r_sagu = crate::exec::run_scheduled(&g_sagu, &sched, &machine, 2);
        let r_soft = crate::exec::run_scheduled(&g_soft, &sched, &machine, 2);
        assert_eq!(r_sagu.output, r_soft.output, "functionally identical");
        // 4 joiner pushes per iteration x 2 iterations x 6 cycles.
        assert_eq!(
            r_soft.counters.addr_overhead - r_sagu.counters.addr_overhead,
            4 * 2 * machine.cost.addr_software_reorder
        );
    }
}
