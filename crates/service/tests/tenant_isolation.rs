//! Tenant isolation: a faulting session is quarantined and drained to
//! its bit-exact clean prefix while co-resident sessions — pinned to the
//! *same* shard and sharing the *same* compiled artifact — produce
//! outputs bit-identical to running alone.
//!
//! The injected-fault half needs the `fault-inject` feature (the service
//! CI job runs it); without the feature it self-skips, and the
//! no-fault co-residency differential still runs.

use macross_runtime::{FaultKind, FaultPlan, FAULTS_COMPILED};
use macross_service::{CloseReport, ServiceConfig, StreamService};
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::graph::Graph;
use macross_streamir::types::{ScalarTy, Ty, Value};
use macross_vm::Machine;

/// `src -> f(*5) -> sink`, one value per steady iteration: firing `k` of
/// stage 1 (the filter) pushes `5k`, which makes the clean prefix after
/// a fault at firing `F` exactly `[0, 5, ..., 5(F-1)]`.
fn victim_pipeline() -> Graph {
    let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
    let n = src.state("n", Ty::Scalar(ScalarTy::I32));
    src.work(move |b| {
        b.push(v(n));
        b.set(n, v(n) + 1i32);
    });
    let mut f = FilterBuilder::new("f", 1, 1, 1, ScalarTy::I32);
    f.work(|b| {
        b.push(pop() * 5i32);
    });
    StreamSpec::pipeline(vec![src.build_spec(), f.build_spec(), StreamSpec::Sink])
        .build()
        .unwrap()
}

fn flat(report: CloseReport) -> Vec<Value> {
    report.outputs.into_iter().flatten().collect()
}

fn assert_bits_eq(ctx: &str, expect: &[Value], got: &[Value]) {
    assert_eq!(expect.len(), got.len(), "{ctx}: length mismatch");
    for (i, (a, b)) in expect.iter().zip(got).enumerate() {
        assert!(a.bits_eq(*b), "{ctx}: element {i} differs: {a:?} vs {b:?}");
    }
}

/// Run one session alone (optionally with a fault plan) and return its
/// outputs and counters.
fn solo_run(iters: u64, plan: FaultPlan) -> (Vec<Value>, u64, u64) {
    let service = StreamService::new(
        Machine::core_i7(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let id = service.submit("solo", &victim_pipeline(), plan).unwrap();
    service.feed(id, iters).unwrap();
    let report = service.close(id).unwrap();
    let (iters_done, firings) = (report.iters_done, report.firings);
    let out = flat(report);
    service.shutdown("solo");
    (out, iters_done, firings)
}

/// No faults: two co-resident tenants of the same shape are each
/// bit-identical to the solo run (the shared artifact is never a shared
/// mutable anything).
#[test]
fn co_resident_tenants_match_solo_runs() {
    const ITERS: u64 = 12;
    let (solo_out, solo_iters, solo_firings) = solo_run(ITERS, FaultPlan::none());
    let service = StreamService::new(
        Machine::core_i7(),
        ServiceConfig {
            workers: 1,
            batch_iters: 3,
            ..ServiceConfig::default()
        },
    );
    let g = victim_pipeline();
    let a = service.submit("tenant_a", &g, FaultPlan::none()).unwrap();
    let b = service.submit("tenant_b", &g, FaultPlan::none()).unwrap();
    // Interleave feeds so the shard alternates slices between tenants.
    for _ in 0..4 {
        service.feed(a, ITERS / 4).unwrap();
        service.feed(b, ITERS / 4).unwrap();
    }
    for id in [a, b] {
        let report = service.close(id).unwrap();
        assert!(!report.faulted);
        assert_eq!(report.iters_done, solo_iters);
        assert_eq!(report.firings, solo_firings);
        assert_bits_eq(&format!("tenant {id}"), &solo_out, &flat(report));
    }
    let sr = service.shutdown("isolation_clean");
    assert_eq!(sr.cache.compilations, 1, "both tenants share one artifact");
}

/// The acceptance criterion: inject a panic into one of two concurrent
/// sessions on the same shard. The faulted tenant drains to the
/// bit-exact clean prefix; the unfaulted tenant is bit-identical (outputs
/// *and* counters) to its solo run.
#[test]
fn injected_panic_quarantines_only_the_faulty_tenant() {
    if !FAULTS_COMPILED {
        eprintln!("fault injection not compiled in; skipping (run with --features fault-inject)");
        return;
    }
    const ITERS: u64 = 12;
    const FAULT_FIRING: u64 = 6;
    let (solo_out, solo_iters, solo_firings) = solo_run(ITERS, FaultPlan::none());
    // Fault the seventh firing of stage 1 of the SIMDized graph. The
    // expected quarantine outcome is established by a *solo* faulted run:
    // the drained output must be a strict clean prefix of the healthy
    // stream, cut short of the full run.
    let plan = FaultPlan::single(1, FAULT_FIRING, FaultKind::Panic);
    let (victim_solo_out, victim_solo_iters, _) = solo_run(ITERS, plan.clone());
    assert!(
        victim_solo_out.len() < solo_out.len(),
        "fault must truncate"
    );
    assert!(victim_solo_iters < solo_iters);
    assert_bits_eq(
        "solo faulted run is a clean prefix",
        &solo_out[..victim_solo_out.len()],
        &victim_solo_out,
    );
    let service = StreamService::new(
        Machine::core_i7(),
        ServiceConfig {
            workers: 1,
            batch_iters: 3,
            ..ServiceConfig::default()
        },
    );
    let g = victim_pipeline();
    let victim = service.submit("victim", &g, plan).unwrap();
    let healthy = service.submit("healthy", &g, FaultPlan::none()).unwrap();
    for _ in 0..4 {
        service.feed(victim, ITERS / 4).unwrap();
        service.feed(healthy, ITERS / 4).unwrap();
    }
    let victim_report = service.close(victim).unwrap();
    assert!(victim_report.faulted, "the injected panic must quarantine");
    assert!(
        victim_report.failures.iter().any(|f| f.contains("panic")),
        "failure should carry the panic cause: {:?}",
        victim_report.failures
    );
    // Co-resident quarantine is bit-identical to the solo quarantine.
    assert_bits_eq(
        "victim clean prefix",
        &victim_solo_out,
        &flat(victim_report),
    );
    // The co-resident tenant never noticed.
    let healthy_report = service.close(healthy).unwrap();
    assert!(!healthy_report.faulted);
    assert_eq!(healthy_report.iters_done, solo_iters);
    assert_eq!(healthy_report.firings, solo_firings);
    assert_bits_eq("healthy tenant", &solo_out, &flat(healthy_report));
    let sr = service.shutdown("isolation_fault");
    let victim_row = sr.tenants.iter().find(|t| t.benchmark == "victim").unwrap();
    assert_eq!(victim_row.state, "faulted");
    assert!(victim_row.faults > 0);
    let healthy_row = sr
        .tenants
        .iter()
        .find(|t| t.benchmark == "healthy")
        .unwrap();
    assert_eq!(healthy_row.state, "closed");
    assert_eq!(healthy_row.faults, 0);
    macross_telemetry::service::validate_str(&sr.json_string()).unwrap();
}
