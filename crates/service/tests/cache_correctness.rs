//! Cache-correctness suite: the compile-once cache must change *when*
//! compilation happens, never *what* a session computes.
//!
//! Two halves:
//!
//! - Structural-hash properties at the service boundary: equivalent
//!   graphs (alpha-renamed actors, reordered node insertion) share one
//!   compilation; semantically different graphs (rates, body constants)
//!   never do.
//! - A differential sweep over all fourteen benchmarks: for each, a
//!   cold-compiled single-threaded reference run, then two service
//!   sessions of the same graph — the second a guaranteed cache hit —
//!   each of whose sink outputs must be bit-identical to the reference.

use macross::{compile_graph, SimdizeOptions};
use macross_benchsuite::all;
use macross_runtime::FaultPlan;
use macross_service::{ServiceConfig, StreamService};
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::graph::Graph;
use macross_streamir::shash::structural_hash;
use macross_streamir::types::{ScalarTy, Ty, Value};
use macross_vm::{Executor, Machine};

fn assert_bits_eq(ctx: &str, expect: &[Value], got: &[Value]) {
    assert_eq!(expect.len(), got.len(), "{ctx}: length mismatch");
    for (i, (a, b)) in expect.iter().zip(got).enumerate() {
        assert!(a.bits_eq(*b), "{ctx}: element {i} differs: {a:?} vs {b:?}");
    }
}

fn named_pipeline(src_name: &str, f_name: &str, mul: i32) -> Graph {
    let mut src = FilterBuilder::new(src_name, 0, 0, 1, ScalarTy::I32);
    let n = src.state("n", Ty::Scalar(ScalarTy::I32));
    src.work(move |b| {
        b.push(v(n) * mul);
        b.set(n, v(n) + 1i32);
    });
    let mut f = FilterBuilder::new(f_name, 1, 1, 1, ScalarTy::I32);
    f.work(|b| {
        b.push(pop() + 100i32);
    });
    StreamSpec::pipeline(vec![src.build_spec(), f.build_spec(), StreamSpec::Sink])
        .build()
        .unwrap()
}

#[test]
fn equivalent_graphs_share_one_compilation() {
    let service = StreamService::new(Machine::core_i7(), ServiceConfig::default());
    let original = named_pipeline("reader", "scale", 3);
    let renamed = named_pipeline("producer", "gain", 3);
    assert_eq!(
        structural_hash(&original),
        structural_hash(&renamed),
        "alpha-renaming must not change the structural hash"
    );
    let a = service
        .submit("original", &original, FaultPlan::none())
        .unwrap();
    let b = service
        .submit("renamed", &renamed, FaultPlan::none())
        .unwrap();
    for id in [a, b] {
        service.feed(id, 6).unwrap();
    }
    let out_a = service.close(a).unwrap();
    let out_b = service.close(b).unwrap();
    let flat_a: Vec<Value> = out_a.outputs.into_iter().flatten().collect();
    let flat_b: Vec<Value> = out_b.outputs.into_iter().flatten().collect();
    assert_bits_eq("renamed tenants", &flat_a, &flat_b);
    let report = service.shutdown("rename");
    assert_eq!(report.cache.compilations, 1, "one shape, one compile");
    assert_eq!(report.cache.distinct_graphs, 1);
    assert_eq!(report.cache.hits, 1);
}

#[test]
fn different_bodies_never_share_a_compilation() {
    let service = StreamService::new(Machine::core_i7(), ServiceConfig::default());
    let three = named_pipeline("src", "f", 3);
    let four = named_pipeline("src", "f", 4);
    assert_ne!(structural_hash(&three), structural_hash(&four));
    service.submit("three", &three, FaultPlan::none()).unwrap();
    service.submit("four", &four, FaultPlan::none()).unwrap();
    let report = service.shutdown("bodies");
    assert_eq!(report.cache.compilations, 2);
    assert_eq!(report.cache.distinct_graphs, 2);
    assert_eq!(report.cache.hits, 0);
}

/// The headline differential: across every benchmark, a cache-hit
/// session's sink outputs are bit-identical to a cold compile + solo
/// single-threaded run of the same graph.
#[test]
fn cache_hit_sessions_match_cold_runs_on_all_benchmarks() {
    let machine = Machine::core_i7();
    let opts = SimdizeOptions::all();
    let mode = macross_vm::ExecMode::default();
    let service = StreamService::new(
        machine.clone(),
        ServiceConfig {
            workers: 3,
            session_cap: 32,
            ..ServiceConfig::default()
        },
    );
    let suite = all();
    assert_eq!(suite.len(), 16);
    for bench in &suite {
        let graph = (bench.build)();
        let iters = bench.iters.min(4);
        // Cold reference: compile from scratch, run solo.
        let art = compile_graph(&graph, &machine, &opts, mode).unwrap();
        let mut ex = Executor::with_programs(&art.graph, &art.schedule, &machine, &art.programs);
        ex.run(iters).unwrap();
        let reference = ex.output_flat();
        // Two sessions of the same graph; the second must be a hit.
        for round in 0..2 {
            let id = service
                .submit(bench.name, &graph, FaultPlan::none())
                .unwrap();
            service.feed(id, iters).unwrap();
            let report = service.close(id).unwrap();
            assert!(!report.faulted, "{}: unexpected fault", bench.name);
            let flat: Vec<Value> = report.outputs.into_iter().flatten().collect();
            assert_bits_eq(&format!("{} round {round}", bench.name), &reference, &flat);
        }
    }
    let report = service.shutdown("benchsuite");
    // 16 distinct shapes, 32 sessions: compilations count shapes, and the
    // service never compiled what the hits could reuse.
    assert_eq!(report.cache.distinct_graphs, 16);
    assert_eq!(report.cache.compilations, 16);
    assert_eq!(report.cache.hits, 16);
    assert_eq!(report.admission.admitted, 32);
    macross_telemetry::service::validate_str(&report.json_string()).unwrap();
}
