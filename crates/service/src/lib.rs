//! # macross-service
//!
//! A multi-tenant streaming session server over the MacroSS compilation
//! pipeline: many concurrent stream-graph sessions share one process,
//! one worker pool, and — when their graphs are structurally equivalent
//! — one compiled artifact.
//!
//! Four pillars:
//!
//! 1. **Compile-once cache** ([`cache::CompileCache`]): submissions are
//!    keyed by the structural hash of their graph
//!    ([`macross_streamir::shash`]), which ignores actor names and node
//!    insertion order, so N tenants running the same benchmark trigger
//!    exactly one SIMDization + bytecode compilation. The cache is a
//!    bounded LRU of [`macross::CompiledGraph`]s with hit/miss/eviction
//!    counters surfaced in the service report.
//! 2. **Session manager** ([`server::StreamService`]): `submit` admits a
//!    graph and pins it to the least-loaded shard by modelled steady
//!    cost; `feed` queues steady iterations; `poll` drains sink outputs;
//!    `close` drains and retires. Each session runs on a
//!    [`macross_runtime::SessionEngine`] — the supervised single-session
//!    engine — so a faulting tenant is quarantined with its bit-exact
//!    clean output prefix while co-resident tenants keep firing.
//! 3. **Admission control**: a session cap at `submit`, a bounded input
//!    queue per tenant at `feed`, and output-buffer backpressure that
//!    defers a tenant's slices until it polls. Saturation returns the
//!    typed [`error::ServiceError::Overloaded`], never a panic or a
//!    hang; `shutdown` drains everything admitted and emits the
//!    `SERVICE_<name>.json` report (`macross-service-v2`, validated by
//!    `validate_report`).
//! 4. **Dynamic-rate sessions**: `submit_dynamic` admits a
//!    [`macross_pdf::ParamGraph`] — a graph template over a declared
//!    parameter domain — and `set_param` re-configures it at the steady
//!    iteration boundary after everything fed so far: re-solve, re-derive,
//!    re-SIMDize, swap at the quiescent point with bit-exact carryover.
//!    Compiled configurations are memoized in a shared
//!    [`macross_pdf::ScheduleCache`] layered on the compile-once cache,
//!    so revisiting a valuation never recompiles.

pub mod cache;
pub mod error;
pub mod server;
pub mod tenant;

pub use cache::CompileCache;
pub use error::ServiceError;
pub use server::{mode_label, ServiceConfig, StreamService};
pub use tenant::{CloseReport, PollResult, TenantState};

#[cfg(test)]
mod tests {
    use super::*;
    use macross_pdf::ParamGraph;
    use macross_runtime::FaultPlan;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::graph::Graph;
    use macross_streamir::types::{ScalarTy, Ty, Value};
    use macross_streamir::{ParamDomain, RateExpr, Valuation};
    use macross_telemetry::service as svc_schema;
    use macross_vm::Machine;
    use std::sync::Arc;

    fn counter_pipeline(mul: i32) -> Graph {
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
        let n = src.state("n", macross_streamir::types::Ty::Scalar(ScalarTy::I32));
        src.work(move |b| {
            b.push(v(n) * mul);
            b.set(n, v(n) + 1i32);
        });
        StreamSpec::pipeline(vec![src.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap()
    }

    /// src (stateful counter) -> down(decim) -> sink; `decim` is the
    /// runtime parameter.
    fn decim_template() -> Arc<ParamGraph> {
        let domain = ParamDomain::new().with("decim", 1, 3);
        Arc::new(ParamGraph::new("decim_chain", domain, |val| {
            let decim = RateExpr::param("decim")
                .eval(val)
                .map_err(|e| e.to_string())?;
            let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
            let n = src.state("n", Ty::Scalar(ScalarTy::I32));
            src.work(|b| {
                b.push(v(n));
                b.set(n, v(n) + 1i32);
            });
            let mut down = FilterBuilder::new("down", decim, decim, 1, ScalarTy::I32);
            let x = down.local("x", Ty::Scalar(ScalarTy::I32));
            let j = down.local("j", Ty::Scalar(ScalarTy::I32));
            let i = down.local("i", Ty::Scalar(ScalarTy::I32));
            down.work(move |b| {
                b.set(x, pop());
                b.for_(i, (decim - 1) as i32, |b| {
                    b.set(j, pop());
                });
                b.push(v(x));
            });
            StreamSpec::pipeline(vec![src.build_spec(), down.build_spec(), StreamSpec::Sink])
                .build()
                .map_err(|e| e.to_string())
        }))
    }

    fn flat_i32(rows: Vec<Vec<Value>>) -> Vec<i32> {
        rows.into_iter()
            .flatten()
            .map(|v| match v {
                Value::I32(x) => x,
                other => panic!("unexpected value {other:?}"),
            })
            .collect()
    }

    #[test]
    fn dynamic_session_reconfigures_in_stream_order() {
        let service = StreamService::new(
            Machine::core_i7(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let template = decim_template();
        let id = service
            .submit_dynamic(
                "dyn",
                &template,
                &Valuation::of("decim", 1),
                FaultPlan::none(),
            )
            .unwrap();
        service.feed(id, 4).unwrap();
        // Lands after the 4 iterations already fed, regardless of how
        // far the shard has actually run.
        service.set_param(id, "decim", 2).unwrap();
        service.feed(id, 4).unwrap();
        let report = service.close(id).unwrap();
        assert!(!report.faulted, "failures: {:?}", report.failures);
        assert_eq!(report.iters_done, 8);
        // One SIMDized steady iteration fires the source 4 times (the
        // vector width), so 4 iterations at decim=1 pass the counter
        // through as 0..16; decim=2 then keeps the first of each pair.
        // Bit-exact carryover: the counter continues at 16, not at 0.
        let mut expect: Vec<i32> = (0..16).collect();
        expect.extend((16..48).step_by(2));
        assert_eq!(flat_i32(report.outputs), expect);
        let sr = service.shutdown("dyn");
        // Initial install + one swap, both distinct configurations.
        assert_eq!(sr.scache.reconfigurations, 2);
        assert_eq!(sr.scache.misses, 2);
        assert_eq!(sr.scache.distinct_valuations, 2);
        svc_schema::validate_str(&sr.json_string()).unwrap();
    }

    #[test]
    fn set_param_on_static_session_is_typed_error() {
        let service = StreamService::new(Machine::core_i7(), ServiceConfig::default());
        let id = service
            .submit("static", &counter_pipeline(1), FaultPlan::none())
            .unwrap();
        let err = service.set_param(id, "decim", 2).unwrap_err();
        assert!(matches!(err, ServiceError::NotDynamic(_)), "got {err}");
        // Outside the domain: typed parameter error, session unharmed.
        let template = decim_template();
        let did = service
            .submit_dynamic(
                "dyn",
                &template,
                &Valuation::of("decim", 1),
                FaultPlan::none(),
            )
            .unwrap();
        let err = service.set_param(did, "decim", 9).unwrap_err();
        assert!(matches!(err, ServiceError::Param(_)), "got {err}");
        service.feed(did, 2).unwrap();
        let report = service.close(did).unwrap();
        assert!(!report.faulted);
        assert_eq!(report.iters_done, 2);
        service.close(id).unwrap();
        let sr = service.shutdown("typed");
        svc_schema::validate_str(&sr.json_string()).unwrap();
    }

    #[test]
    fn revisited_valuations_hit_the_schedule_cache() {
        let service = StreamService::new(
            Machine::core_i7(),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let template = decim_template();
        let id = service
            .submit_dynamic(
                "pingpong",
                &template,
                &Valuation::of("decim", 1),
                FaultPlan::none(),
            )
            .unwrap();
        // 1 -> 2 -> 1 -> 2: four installs, two distinct configurations.
        for (value, iters) in [(2u64, 4u64), (1, 4), (2, 4)] {
            service.feed(id, iters).unwrap();
            service.set_param(id, "decim", value).unwrap();
        }
        service.feed(id, 4).unwrap();
        let report = service.close(id).unwrap();
        assert!(!report.faulted, "failures: {:?}", report.failures);
        let sr = service.shutdown("pingpong");
        assert_eq!(sr.scache.reconfigurations, 4);
        assert_eq!(sr.scache.misses, 2, "repeat valuations must not recompile");
        assert_eq!(sr.scache.hits, 2);
        assert_eq!(sr.scache.distinct_valuations, 2);
        svc_schema::validate_str(&sr.json_string()).unwrap();
    }

    #[test]
    fn feed_poll_close_round_trip() {
        let service = StreamService::new(
            Machine::core_i7(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let id = service
            .submit("counter", &counter_pipeline(3), FaultPlan::none())
            .unwrap();
        service.feed(id, 8).unwrap();
        let report = service.close(id).unwrap();
        assert!(!report.faulted);
        assert_eq!(report.iters_done, 8);
        let flat: Vec<_> = report.outputs.into_iter().flatten().collect();
        assert_eq!(flat.len(), 8);
        let sr = service.shutdown("unit");
        assert_eq!(sr.admission.admitted, 1);
        assert_eq!(sr.cache.compilations, 1);
        svc_schema::validate_str(&sr.json_string()).unwrap();
    }

    #[test]
    fn session_cap_rejects_with_typed_overload() {
        let service = StreamService::new(
            Machine::core_i7(),
            ServiceConfig {
                workers: 1,
                session_cap: 2,
                ..ServiceConfig::default()
            },
        );
        let g = counter_pipeline(1);
        service.submit("a", &g, FaultPlan::none()).unwrap();
        service.submit("b", &g, FaultPlan::none()).unwrap();
        let err = service.submit("c", &g, FaultPlan::none()).unwrap_err();
        assert!(err.is_overloaded(), "got {err}");
        // One shape, three submissions: exactly one compilation.
        let stats = service.cache_stats();
        assert_eq!(stats.compilations, 1);
        assert_eq!(stats.hits, 1);
        let sr = service.shutdown("cap");
        assert_eq!(sr.admission.submitted, 3);
        assert_eq!(sr.admission.rejected_sessions, 1);
        svc_schema::validate_str(&sr.json_string()).unwrap();
    }

    #[test]
    fn feed_queue_bound_rejects_and_recovers() {
        let service = StreamService::new(
            Machine::core_i7(),
            ServiceConfig {
                workers: 1,
                queue_bound: 4,
                ..ServiceConfig::default()
            },
        );
        let id = service
            .submit("q", &counter_pipeline(2), FaultPlan::none())
            .unwrap();
        let err = service.feed(id, 5).unwrap_err();
        assert!(err.is_overloaded(), "got {err}");
        service.feed(id, 4).unwrap();
        let report = service.close(id).unwrap();
        assert_eq!(report.iters_done, 4);
        let sr = service.shutdown("bound");
        assert_eq!(sr.admission.rejected_feeds, 1);
    }

    #[test]
    fn backpressure_defers_until_polled() {
        let service = StreamService::new(
            Machine::core_i7(),
            ServiceConfig {
                workers: 1,
                batch_iters: 2,
                output_bound: 4,
                ..ServiceConfig::default()
            },
        );
        let id = service
            .submit("bp", &counter_pipeline(1), FaultPlan::none())
            .unwrap();
        service.feed(id, 64).unwrap();
        // Let the shard hit the output bound and park the tenant.
        let mut drained = 0usize;
        let mut polls = 0usize;
        while drained < 64 && polls < 10_000 {
            let r = service.poll(id).unwrap();
            drained += r.outputs.iter().map(Vec::len).sum::<usize>();
            polls += 1;
            std::thread::yield_now();
        }
        assert_eq!(drained, 64, "all fed iterations eventually drain");
        let sr = service.shutdown("bp");
        assert!(
            sr.admission.backpressure_stalls > 0,
            "a 4-value bound over 64 iterations must stall at least once"
        );
        svc_schema::validate_str(&sr.json_string()).unwrap();
    }

    #[test]
    fn feed_rejects_overflowing_iters() {
        let service = StreamService::new(
            Machine::core_i7(),
            ServiceConfig {
                workers: 1,
                queue_bound: 8,
                ..ServiceConfig::default()
            },
        );
        let id = service
            .submit("ovf", &counter_pipeline(1), FaultPlan::none())
            .unwrap();
        service.feed(id, 1).unwrap();
        // pending + u64::MAX would wrap past the bound; the admission
        // check must reject it, not enqueue an astronomical backlog.
        let err = service.feed(id, u64::MAX).unwrap_err();
        assert!(err.is_overloaded(), "got {err}");
        let report = service.close(id).unwrap();
        assert_eq!(report.iters_done, 1, "close drains only the sane feed");
        let sr = service.shutdown("ovf");
        assert_eq!(sr.admission.rejected_feeds, 1);
    }

    #[test]
    fn close_drains_through_backpressure_without_polling() {
        // Regression for a drain/backpressure race: with a 1-value
        // output bound every second slice defers, and a `close` landing
        // while the deferring slice is in flight used to park the tenant
        // with no reviver — `close` then blocked forever. Loop to give
        // the race window many chances; the test's assertion is simply
        // that every close returns, fully drained.
        for round in 0..25 {
            let service = StreamService::new(
                Machine::core_i7(),
                ServiceConfig {
                    workers: 1,
                    batch_iters: 1,
                    output_bound: 1,
                    queue_bound: 256,
                    ..ServiceConfig::default()
                },
            );
            let id = service
                .submit("race", &counter_pipeline(1), FaultPlan::none())
                .unwrap();
            service.feed(id, 64).unwrap();
            if round % 2 == 1 {
                // Vary the interleaving: sometimes let the shard reach
                // the parked state before closing, sometimes close hot.
                std::thread::yield_now();
            }
            let report = service.close(id).unwrap();
            assert!(!report.faulted);
            assert_eq!(report.iters_done, 64, "round {round}: drain lost work");
        }
    }

    #[test]
    fn shutdown_drains_parked_tenants() {
        let service = StreamService::new(
            Machine::core_i7(),
            ServiceConfig {
                workers: 1,
                batch_iters: 1,
                output_bound: 1,
                ..ServiceConfig::default()
            },
        );
        let g = counter_pipeline(3);
        let a = service.submit("a", &g, FaultPlan::none()).unwrap();
        let b = service.submit("b", &g, FaultPlan::none()).unwrap();
        service.feed(a, 32).unwrap();
        service.feed(b, 32).unwrap();
        // Let both tenants hit the 1-value bound and park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let sr = service.shutdown("parked");
        // `drained_on_shutdown` counts completed drains: both tenants
        // must actually finish their 32 iterations, bound ignored.
        assert_eq!(sr.admission.drained_on_shutdown, 2);
        for row in &sr.tenants {
            assert_eq!(
                row.iters_done, 32,
                "tenant {} not fully drained at shutdown",
                row.session
            );
        }
        svc_schema::validate_str(&sr.json_string()).unwrap();
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let service = StreamService::new(Machine::core_i7(), ServiceConfig::default());
        let id = service
            .submit("drain", &counter_pipeline(7), FaultPlan::none())
            .unwrap();
        service.feed(id, 16).unwrap();
        // No close: shutdown itself must finish the admitted work.
        let sr = service.shutdown("drain");
        let row = &sr.tenants[0];
        assert_eq!(row.iters_done, 16);
        assert_eq!(row.state, "draining");
        svc_schema::validate_str(&sr.json_string()).unwrap();
    }
}
