//! The session server: admission control at the front, the compile-once
//! cache in the middle, a pinned-shard worker pool at the back.
//!
//! ## Threading and lock order
//!
//! Four locks exist: the service **state** (session table, run queues,
//! counters), the compile-once **cache**, the per-configuration
//! **schedule cache**, and one mutex **per tenant** (its engine and
//! buffers). The global order is *state → tenant → schedule cache →
//! compile cache*. Shard threads pop a session id under the state lock,
//! run the slice under that tenant's lock (a dynamic tenant swapping
//! configurations mid-slice takes the two cache locks in order), then
//! re-acquire the state lock to requeue. Control-plane calls (`feed`,
//! `poll`, `set_param`) may take a tenant lock while holding the state
//! lock; `submit`/`submit_dynamic` compile under the cache locks alone,
//! never while holding the state lock.
//!
//! ## Placement
//!
//! A session is pinned to one shard at admission — the shard with the
//! least total modelled steady cost ([`macross::CompiledGraph::steady_cost`], the
//! same Equation-1-derived weights `lpt_placement` balances). Pinning
//! keeps every session's firing order sequential, so outputs are
//! bit-identical to a solo single-threaded run regardless of what the
//! other shards do.
//!
//! ## Drain semantics
//!
//! `close` marks the tenant draining (backpressure no longer defers it),
//! waits until its queue is empty or a fault ends it, and returns the
//! final outputs. `shutdown` does the same for every remaining tenant,
//! then joins the shards and assembles the `SERVICE_*.json` report.
//! A faulted tenant stops immediately: its pending work is discarded,
//! its clean output prefix stays pollable, and its quarantine never
//! blocks a co-resident tenant (the engine is per-session; only the
//! compiled artifact is shared, and that is immutable).

use crate::cache::CompileCache;
use crate::error::ServiceError;
use crate::tenant::{CloseReport, PollResult, Tenant, TenantState};
use macross::{steady_node_weights, CompiledGraph, SimdizeOptions};
use macross_multicore::{plan_placement, CommModel};
use macross_pdf::{CompileFn, DynamicSession, ParamGraph, ScheduleCache};
use macross_runtime::{FaultPlan, SessionEngine};
use macross_streamir::graph::Graph;
use macross_streamir::Valuation;
use macross_telemetry::service::{
    AdmissionStats, CacheStats, ScheduleCacheStats, ServiceReport, TenantRow,
};
use macross_telemetry::{EventKind, TraceSession, WorkerTrace};
use macross_vm::{ExecMode, Machine};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Tunables for a [`StreamService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Shard threads in the worker pool (min 1).
    pub workers: usize,
    /// Maximum concurrently admitted sessions.
    pub session_cap: usize,
    /// Maximum pending steady iterations per tenant; `feed` beyond this
    /// returns [`ServiceError::Overloaded`].
    pub queue_bound: u64,
    /// Maximum buffered sink values per tenant before its slices defer
    /// until the client polls.
    pub output_bound: usize,
    /// Compile-once cache bound, in artifacts.
    pub cache_capacity: usize,
    /// Schedule-cache bound, in compiled configurations (dynamic-rate
    /// sessions).
    pub scache_capacity: usize,
    /// Steady iterations per shard work slice (fairness quantum).
    pub batch_iters: u64,
    /// Engine mode sessions compile for.
    pub mode: ExecMode,
    /// SIMDization option set sessions compile with.
    pub opts: SimdizeOptions,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            session_cap: 16,
            queue_bound: 256,
            output_bound: 1 << 16,
            cache_capacity: 32,
            scache_capacity: 32,
            batch_iters: 4,
            mode: ExecMode::default(),
            opts: SimdizeOptions::all(),
        }
    }
}

/// Stable label for the engine mode, as reported in `SERVICE_*.json`.
pub fn mode_label(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Bytecode => "bytecode",
        ExecMode::BytecodeNoFuse => "bytecode_nofuse",
        ExecMode::TreeWalk => "treewalk",
    }
}

/// What the cost-model planner would choose for a tenant's graph given
/// the whole worker pool — advisory (sessions stay pinned to one shard
/// for bit-identical outputs) but recorded per tenant so capacity
/// decisions can read the parallel headroom straight off the report.
#[derive(Debug, Clone, Copy)]
struct PlanSummary {
    cores: u64,
    cut_edges: u64,
    fused: u64,
    fissioned: u64,
}

/// Summarize the planner's verdict for an admitted artifact. Uses the
/// default communication model (not the calibrated one) so the summary
/// is deterministic across machines and cheap at admission time.
fn plan_summary(art: &CompiledGraph, machine: &Machine, workers: usize) -> PlanSummary {
    let cycles = steady_node_weights(&art.graph, &art.schedule, machine);
    let plan = plan_placement(
        &art.graph,
        &art.schedule,
        &cycles,
        workers.max(1),
        &CommModel::default(),
    );
    PlanSummary {
        cores: plan.cores_used as u64,
        cut_edges: plan.cut_edges as u64,
        fused: plan.fused_groups as u64,
        fissioned: plan.fissioned as u64,
    }
}

/// Control-plane view of one admitted session. The engine itself lives
/// behind `slot`; everything here is guarded by the state lock.
struct SessionEntry {
    slot: Arc<Mutex<Tenant>>,
    shard: usize,
    benchmark: String,
    graph_hash: String,
    cache_hit: bool,
    steady_cost: u64,
    plan: PlanSummary,
    /// Id sits in a shard run queue.
    queued: bool,
    /// A shard is inside a slice right now.
    running: bool,
    /// Parked on backpressure; `poll` (or a drain) revives it.
    deferred: bool,
    /// `close`/`shutdown` drain: backpressure no longer defers.
    draining: bool,
    faulted: bool,
    /// Shadow of the tenant's pending count, updated after each slice,
    /// so waiters never need the tenant lock.
    pending_hint: u64,
}

struct State {
    next_id: u64,
    sessions: HashMap<u64, SessionEntry>,
    queues: Vec<VecDeque<u64>>,
    shard_load: Vec<u64>,
    shutting_down: bool,
    admission: AdmissionStats,
    retired: Vec<TenantRow>,
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// `Arc`d (not just a field) so dynamic sessions' compile callbacks
    /// can capture the cache alone, without a cycle through `Inner`.
    cache: Arc<Mutex<CompileCache>>,
    /// Per-configuration cache shared by every dynamic session.
    scache: Arc<Mutex<ScheduleCache>>,
    machine: Arc<Machine>,
    config: ServiceConfig,
    /// Control-plane recorder (admission and cache events).
    ctl: WorkerTrace,
}

/// A long-running in-process server multiplexing stream-graph sessions
/// over a shared worker pool. See the module docs for the execution
/// model; see [`ServiceConfig`] for the knobs.
pub struct StreamService {
    inner: Arc<Inner>,
    trace: TraceSession,
    handles: Vec<JoinHandle<()>>,
}

impl StreamService {
    /// Start the shard pool with tracing disabled.
    pub fn new(machine: Machine, config: ServiceConfig) -> StreamService {
        StreamService::with_trace(machine, config, TraceSession::disabled())
    }

    /// Start the shard pool with a recording handle per shard (worker
    /// `i` = shard `i`; worker `workers` = the control plane).
    pub fn with_trace(
        machine: Machine,
        config: ServiceConfig,
        trace: TraceSession,
    ) -> StreamService {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                next_id: 0,
                sessions: HashMap::new(),
                queues: vec![VecDeque::new(); workers],
                shard_load: vec![0; workers],
                shutting_down: false,
                admission: AdmissionStats::default(),
                retired: Vec::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cache: Arc::new(Mutex::new(CompileCache::new(config.cache_capacity))),
            scache: Arc::new(Mutex::new(ScheduleCache::new(config.scache_capacity))),
            machine: Arc::new(machine),
            config: ServiceConfig { workers, ..config },
            ctl: trace.worker(workers),
        });
        let handles = (0..workers)
            .map(|shard| {
                let inner = inner.clone();
                let wt = trace.worker(shard);
                std::thread::Builder::new()
                    .name(format!("macross-shard-{shard}"))
                    .spawn(move || shard_loop(&inner, shard, &wt))
                    .expect("spawn shard thread")
            })
            .collect();
        StreamService {
            inner,
            trace,
            handles,
        }
    }

    /// The machine sessions compile against.
    pub fn machine(&self) -> &Machine {
        &self.inner.machine
    }

    /// Admit a new session for `graph`, compiling it (or reusing the
    /// cached artifact for an equivalent shape) and pinning it to the
    /// least-loaded shard. `name` tags the tenant in reports.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] at the session cap,
    /// [`ServiceError::ShuttingDown`] after shutdown began, and
    /// [`ServiceError::Simdize`] when the driver rejects the graph.
    pub fn submit(&self, name: &str, graph: &Graph, plan: FaultPlan) -> Result<u64, ServiceError> {
        let inner = &self.inner;
        {
            let mut st = inner.state.lock().unwrap();
            st.admission.submitted += 1;
            if st.shutting_down {
                st.admission.rejected_sessions += 1;
                return Err(ServiceError::ShuttingDown);
            }
            if st.sessions.len() >= inner.config.session_cap {
                st.admission.rejected_sessions += 1;
                inner.ctl.record(
                    EventKind::SessionRejected,
                    st.next_id as u32,
                    st.sessions.len() as u64,
                );
                return Err(ServiceError::Overloaded {
                    reason: format!("session cap {} reached", inner.config.session_cap),
                });
            }
        }
        // Compile (or hit) outside the state lock. The cache lock is held
        // across the whole compile on purpose: concurrent submissions of
        // the same shape serialize here and the losers get hits.
        let compiled = inner.cache.lock().unwrap().get_or_compile(
            graph,
            &inner.machine,
            &inner.config.opts,
            inner.config.mode,
        );
        let (art, hit) = match compiled {
            Ok(pair) => pair,
            Err(e) => {
                let mut st = inner.state.lock().unwrap();
                st.admission.rejected_sessions += 1;
                return Err(ServiceError::Simdize(e));
            }
        };
        let summary = plan_summary(&art, &inner.machine, inner.config.workers);
        let mut st = inner.state.lock().unwrap();
        // Re-check the cap: another submission may have won the race
        // while we compiled.
        if st.sessions.len() >= inner.config.session_cap {
            st.admission.rejected_sessions += 1;
            return Err(ServiceError::Overloaded {
                reason: format!("session cap {} reached", inner.config.session_cap),
            });
        }
        let shard = st
            .shard_load
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| **load)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let engine = SessionEngine::new(
            art.graph.clone(),
            art.schedule.clone(),
            self.inner.machine.clone(),
            &art.programs,
            plan,
            shard as u32,
        );
        let id = st.next_id;
        st.next_id += 1;
        st.shard_load[shard] += art.steady_cost.max(1);
        st.admission.admitted += 1;
        st.sessions.insert(
            id,
            SessionEntry {
                slot: Arc::new(Mutex::new(Tenant::new(engine))),
                shard,
                benchmark: name.to_string(),
                graph_hash: art.source_hash.to_hex(),
                cache_hit: hit,
                steady_cost: art.steady_cost.max(1),
                plan: summary,
                queued: false,
                running: false,
                deferred: false,
                draining: false,
                faulted: false,
                pending_hint: 0,
            },
        );
        let kind = if hit {
            EventKind::CacheHit
        } else {
            EventKind::CacheMiss
        };
        inner.ctl.record(kind, id as u32, art.steady_cost);
        inner
            .ctl
            .record(EventKind::SessionAdmitted, id as u32, shard as u64);
        Ok(id)
    }

    /// A [`CompileFn`] routing schedule-cache misses through the
    /// compile-once cache, so two templates instantiating structurally
    /// identical configurations share one artifact.
    fn compile_fn(&self) -> CompileFn {
        let cache = self.inner.cache.clone();
        Arc::new(move |g, machine, opts, mode| {
            cache
                .lock()
                .unwrap()
                .get_or_compile(g, machine, opts, mode)
                .map(|(art, _)| art)
        })
    }

    /// Admit a *dynamic-rate* session: instantiate `template` at `init`,
    /// compile (or fetch) that configuration through the schedule cache,
    /// and pin the session to the least-loaded shard. Later
    /// [`StreamService::set_param`] calls re-configure it at quiescent
    /// points.
    ///
    /// # Errors
    /// [`ServiceError::Param`] when `init` is outside the template's
    /// domain or the builder fails, plus everything
    /// [`StreamService::submit`] returns.
    pub fn submit_dynamic(
        &self,
        name: &str,
        template: &Arc<ParamGraph>,
        init: &Valuation,
        plan: FaultPlan,
    ) -> Result<u64, ServiceError> {
        let inner = &self.inner;
        {
            let mut st = inner.state.lock().unwrap();
            st.admission.submitted += 1;
            if st.shutting_down {
                st.admission.rejected_sessions += 1;
                return Err(ServiceError::ShuttingDown);
            }
            if st.sessions.len() >= inner.config.session_cap {
                st.admission.rejected_sessions += 1;
                inner.ctl.record(
                    EventKind::SessionRejected,
                    st.next_id as u32,
                    st.sessions.len() as u64,
                );
                return Err(ServiceError::Overloaded {
                    reason: format!("session cap {} reached", inner.config.session_cap),
                });
            }
        }
        let graph = match template.instantiate(init) {
            Ok(g) => g,
            Err(e) => {
                let mut st = inner.state.lock().unwrap();
                st.admission.rejected_sessions += 1;
                return Err(ServiceError::Param(e.to_string()));
            }
        };
        // Install the initial configuration outside the state lock, same
        // discipline as `submit`: schedule-cache lock first, compile-once
        // cache inside the callback (the global lock order).
        let compile = self.compile_fn();
        let compiled = {
            let mut sc = inner.scache.lock().unwrap();
            let cb = &compile;
            sc.get_or_compile(
                &graph,
                init,
                &inner.machine,
                &inner.config.opts,
                inner.config.mode,
                |g| cb(g, &inner.machine, &inner.config.opts, inner.config.mode),
            )
        };
        let (art, hit) = match compiled {
            Ok(pair) => pair,
            Err(e) => {
                let mut st = inner.state.lock().unwrap();
                st.admission.rejected_sessions += 1;
                return Err(ServiceError::Simdize(e));
            }
        };
        let summary = plan_summary(&art, &inner.machine, inner.config.workers);
        let mut st = inner.state.lock().unwrap();
        if st.sessions.len() >= inner.config.session_cap {
            st.admission.rejected_sessions += 1;
            return Err(ServiceError::Overloaded {
                reason: format!("session cap {} reached", inner.config.session_cap),
            });
        }
        let shard = st
            .shard_load
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| **load)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let session = DynamicSession::with_artifact(
            template.clone(),
            init,
            art.clone(),
            hit,
            inner.machine.clone(),
            inner.config.opts,
            inner.config.mode,
            inner.scache.clone(),
            compile,
            plan,
            shard as u32,
        );
        let id = st.next_id;
        st.next_id += 1;
        st.shard_load[shard] += art.steady_cost.max(1);
        st.admission.admitted += 1;
        st.sessions.insert(
            id,
            SessionEntry {
                slot: Arc::new(Mutex::new(Tenant::new_dynamic(session))),
                shard,
                benchmark: name.to_string(),
                graph_hash: art.source_hash.to_hex(),
                cache_hit: hit,
                steady_cost: art.steady_cost.max(1),
                plan: summary,
                queued: false,
                running: false,
                deferred: false,
                draining: false,
                faulted: false,
                pending_hint: 0,
            },
        );
        let kind = if hit {
            EventKind::CacheHit
        } else {
            EventKind::CacheMiss
        };
        inner.ctl.record(kind, id as u32, art.steady_cost);
        inner
            .ctl
            .record(EventKind::SessionAdmitted, id as u32, shard as u64);
        Ok(id)
    }

    /// Schedule a parameter change on a dynamic session. The change
    /// lands at the steady-iteration boundary after everything fed so
    /// far — stream order — and the configuration swap itself runs on
    /// the session's shard at that quiescent point. A boundary with no
    /// subsequent `feed` stays pending and is abandoned at close.
    ///
    /// # Errors
    /// [`ServiceError::NotDynamic`] for sessions admitted via `submit`,
    /// [`ServiceError::Param`] for valuations outside the domain, plus
    /// the usual unknown/shutdown errors.
    pub fn set_param(&self, id: u64, name: &str, value: u64) -> Result<(), ServiceError> {
        let inner = &self.inner;
        let st = inner.state.lock().unwrap();
        if st.shutting_down {
            return Err(ServiceError::ShuttingDown);
        }
        let entry = st
            .sessions
            .get(&id)
            .ok_or(ServiceError::UnknownSession(id))?;
        let slot = entry.slot.clone();
        let mut tenant = slot.lock().unwrap();
        let at = tenant.requested;
        let Some(session) = tenant.engine.dynamic_mut() else {
            return Err(ServiceError::NotDynamic(id));
        };
        session
            .set_param_at(at, name, value)
            .map_err(|e| ServiceError::Param(e.to_string()))?;
        drop(tenant);
        inner.ctl.record(EventKind::SetParam, id as u32, value);
        Ok(())
    }

    /// Queue `iters` steady iterations for the session.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] when the tenant's input queue cannot
    /// take `iters` more, plus the usual unknown/shutdown errors.
    pub fn feed(&self, id: u64, iters: u64) -> Result<(), ServiceError> {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap();
        if st.shutting_down {
            return Err(ServiceError::ShuttingDown);
        }
        let bound = inner.config.queue_bound;
        let st_ref = &mut *st;
        let entry = st_ref
            .sessions
            .get_mut(&id)
            .ok_or(ServiceError::UnknownSession(id))?;
        let slot = entry.slot.clone();
        let mut tenant = slot.lock().unwrap();
        // Overflow-safe form of `pending + iters > bound`: a near-u64::MAX
        // `iters` must be rejected, not wrapped past the queue bound.
        if iters > bound.saturating_sub(tenant.pending) {
            st_ref.admission.rejected_feeds += 1;
            return Err(ServiceError::Overloaded {
                reason: format!(
                    "input queue full ({} pending, bound {bound})",
                    tenant.pending
                ),
            });
        }
        tenant.pending += iters;
        tenant.requested += iters;
        entry.pending_hint = tenant.pending;
        drop(tenant);
        if !entry.queued && !entry.running && !entry.deferred && !entry.faulted {
            entry.queued = true;
            st_ref.queues[entry.shard].push_back(id);
            inner.work_cv.notify_all();
        }
        Ok(())
    }

    /// Drain the session's buffered sink outputs and report progress.
    /// Polling also releases backpressure: a tenant deferred on a full
    /// output buffer is requeued.
    ///
    /// # Errors
    /// [`ServiceError::UnknownSession`] for ids not live.
    pub fn poll(&self, id: u64) -> Result<PollResult, ServiceError> {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap();
        let shutting_down = st.shutting_down;
        let st_ref = &mut *st;
        let entry = st_ref
            .sessions
            .get_mut(&id)
            .ok_or(ServiceError::UnknownSession(id))?;
        let slot = entry.slot.clone();
        let mut tenant = slot.lock().unwrap();
        let result = PollResult {
            outputs: tenant.take_buffered(),
            iters_done: tenant.engine.iters_done(),
            pending: tenant.pending,
            faulted: tenant.engine.is_faulted(),
        };
        let pending = tenant.pending;
        drop(tenant);
        if entry.deferred && !shutting_down {
            entry.deferred = false;
            if pending > 0 && !entry.queued && !entry.running {
                entry.queued = true;
                st_ref.queues[entry.shard].push_back(id);
                inner.work_cv.notify_all();
            }
        }
        Ok(result)
    }

    /// Drain the session to completion (or to its fault), retire it, and
    /// return the final outputs. Blocks until the drain finishes; other
    /// tenants keep firing throughout.
    ///
    /// # Errors
    /// [`ServiceError::UnknownSession`] for ids not live.
    pub fn close(&self, id: u64) -> Result<CloseReport, ServiceError> {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap();
        {
            let st_ref = &mut *st;
            let entry = st_ref
                .sessions
                .get_mut(&id)
                .ok_or(ServiceError::UnknownSession(id))?;
            entry.draining = true;
            let parked = std::mem::take(&mut entry.deferred);
            if (entry.pending_hint > 0 || parked)
                && !entry.queued
                && !entry.running
                && !entry.faulted
            {
                entry.queued = true;
                st_ref.queues[entry.shard].push_back(id);
                inner.work_cv.notify_all();
            }
        }
        st = self.wait_drained(st, id);
        // A concurrent close may have retired the session while we waited.
        let entry = st.sessions.remove(&id).ok_or(ServiceError::Closed(id))?;
        st.shard_load[entry.shard] -= entry.steady_cost;
        let mut tenant = entry.slot.lock().unwrap();
        let outputs = tenant.take_buffered();
        let faulted = tenant.engine.is_faulted();
        let report = CloseReport {
            outputs,
            iters_done: tenant.engine.iters_done(),
            firings: tenant.engine.firings(),
            faulted,
            failures: tenant.engine.failures_rendered(),
        };
        let state = if faulted {
            TenantState::Faulted
        } else {
            TenantState::Closed
        };
        st.retired.push(tenant_row(id, &entry, &tenant, state));
        drop(tenant);
        inner
            .ctl
            .record(EventKind::SessionClosed, id as u32, report.iters_done);
        Ok(report)
    }

    fn wait_drained<'a>(&'a self, mut st: MutexGuard<'a, State>, id: u64) -> MutexGuard<'a, State> {
        loop {
            let Some(entry) = st.sessions.get(&id) else {
                return st;
            };
            let done =
                !entry.queued && !entry.running && (entry.pending_hint == 0 || entry.faulted);
            if done {
                return st;
            }
            st = self.inner.done_cv.wait(st).unwrap();
        }
    }

    /// Sessions currently admitted.
    pub fn live_sessions(&self) -> usize {
        self.inner.state.lock().unwrap().sessions.len()
    }

    /// Compile-once cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().unwrap().stats()
    }

    /// Schedule-cache counters so far (dynamic-rate sessions).
    pub fn schedule_cache_stats(&self) -> ScheduleCacheStats {
        self.inner.scache.lock().unwrap().stats()
    }

    /// Drain every remaining session, stop the shards, and assemble the
    /// `SERVICE_<report_name>.json` report (cache, admission, one row per
    /// session ever admitted).
    pub fn shutdown(mut self, report_name: &str) -> ServiceReport {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutting_down = true;
            let State {
                sessions,
                queues,
                admission,
                ..
            } = &mut *st;
            for (id, entry) in sessions.iter_mut() {
                entry.draining = true;
                let parked = std::mem::take(&mut entry.deferred);
                // The count is a guarantee, not a hope: every entry
                // counted here drains before the shards exit — parked
                // ones are requeued below, and an in-flight slice that
                // defers under `shutting_down` requeues itself (see
                // `shard_loop`) instead of parking.
                if entry.pending_hint > 0 || parked {
                    admission.drained_on_shutdown += 1;
                    if !entry.queued && !entry.running && !entry.faulted {
                        entry.queued = true;
                        queues[entry.shard].push_back(*id);
                    }
                }
            }
            self.inner.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("shard thread panicked");
        }
        let mut st = self.inner.state.lock().unwrap();
        let mut report = ServiceReport::new(
            report_name,
            self.inner.machine.name.clone(),
            mode_label(self.inner.config.mode),
        );
        report.workers = self.inner.config.workers as u64;
        report.session_cap = self.inner.config.session_cap as u64;
        report.cache = self.inner.cache.lock().unwrap().stats();
        report.scache = self.inner.scache.lock().unwrap().stats();
        report.admission = st.admission;
        report.tenants = std::mem::take(&mut st.retired);
        let mut remaining: Vec<_> = st.sessions.drain().collect();
        remaining.sort_by_key(|(id, _)| *id);
        for (id, entry) in remaining {
            let tenant = entry.slot.lock().unwrap();
            let state = if tenant.engine.is_faulted() {
                TenantState::Faulted
            } else {
                TenantState::Draining
            };
            report.tenants.push(tenant_row(id, &entry, &tenant, state));
        }
        report.tenants.sort_by_key(|row| row.session);
        report
    }

    /// The trace session handed to [`StreamService::with_trace`] (drain
    /// it after shutdown for a Chrome timeline of the run).
    pub fn trace(&self) -> &TraceSession {
        &self.trace
    }
}

impl Drop for StreamService {
    fn drop(&mut self) {
        // `shutdown` already joined; otherwise stop the shards so a
        // dropped service never leaks parked threads.
        if self.handles.is_empty() {
            return;
        }
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutting_down = true;
            self.inner.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn tenant_row(id: u64, entry: &SessionEntry, tenant: &Tenant, state: TenantState) -> TenantRow {
    TenantRow {
        session: id,
        benchmark: entry.benchmark.clone(),
        shard: entry.shard as u64,
        graph_hash: entry.graph_hash.clone(),
        cache_hit: entry.cache_hit,
        state: state.label().to_string(),
        iters_requested: tenant.requested,
        iters_done: tenant.engine.iters_done(),
        firings: tenant.engine.firings(),
        outputs: tenant.delivered,
        stalls: tenant.stalls,
        faults: tenant.engine.failure_count(),
        placement_cores: entry.plan.cores,
        placement_cut_edges: entry.plan.cut_edges,
        placement_fused: entry.plan.fused,
        placement_fissioned: entry.plan.fissioned,
    }
}

fn shard_loop(inner: &Inner, shard: usize, trace: &WorkerTrace) {
    loop {
        // Take one id off this shard's queue (or exit on shutdown).
        let job = {
            let mut st = inner.state.lock().unwrap();
            loop {
                let st_ref = &mut *st;
                if let Some(id) = st_ref.queues[shard].pop_front() {
                    match st_ref.sessions.get_mut(&id) {
                        Some(entry) => {
                            entry.queued = false;
                            entry.running = true;
                            let drain = entry.draining || st_ref.shutting_down;
                            break Some((id, entry.slot.clone(), drain));
                        }
                        // Closed while queued; skip the stale id.
                        None => continue,
                    }
                }
                if st_ref.shutting_down {
                    break None;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };
        let Some((id, slot, drain)) = job else { return };
        // Run the slice under the tenant's lock only.
        let outcome = {
            let mut tenant = slot.lock().unwrap();
            // WorkerTrace is only Copy when the trace feature is off.
            #[allow(clippy::clone_on_copy)]
            tenant.engine.set_trace(trace.clone());
            tenant.run_slice(inner.config.batch_iters, inner.config.output_bound, drain)
        };
        // Publish the outcome and requeue if there is more to do. The
        // pending count is re-read under state -> tenant: a `feed` that
        // landed between the slice ending and this publish saw
        // `running == true` and skipped its own enqueue, counting on
        // this publish to requeue — `outcome.pending` is stale then.
        let mut st = inner.state.lock().unwrap();
        let fresh_pending = slot.lock().unwrap().pending;
        let st_ref = &mut *st;
        if let Some(entry) = st_ref.sessions.get_mut(&id) {
            entry.running = false;
            entry.pending_hint = fresh_pending;
            if outcome.faulted && !entry.faulted {
                entry.faulted = true;
                trace.record(EventKind::SessionQuarantined, id as u32, 0);
            }
            if outcome.deferred {
                // Re-check drain state under the lock: `close`/`shutdown`
                // may have set it while the slice ran, and they only
                // revive entries that were *already* parked — parking now
                // would strand the tenant (only `poll` requeues deferred
                // entries) and deadlock the waiting drain. Requeue
                // instead; the next pop computes `drain = true` and runs
                // with the output bound ignored.
                if entry.draining || st_ref.shutting_down {
                    if !entry.queued {
                        entry.queued = true;
                        st_ref.queues[entry.shard].push_back(id);
                        inner.work_cv.notify_all();
                    }
                } else {
                    entry.deferred = true;
                    st_ref.admission.backpressure_stalls += 1;
                }
            } else if fresh_pending > 0 && !entry.queued && !entry.faulted {
                entry.queued = true;
                st_ref.queues[entry.shard].push_back(id);
                inner.work_cv.notify_all();
            }
        }
        inner.done_cv.notify_all();
    }
}
