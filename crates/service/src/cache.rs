//! The compile-once cache: one [`CompiledGraph`] per unique *shape*,
//! shared by every session that submits an equivalent graph.
//!
//! The key is the structural hash ([`macross_streamir::shash`]) of the
//! submitted graph — invariant under actor renaming and node insertion
//! order — combined with everything else that changes what compilation
//! produces: the machine description, the SIMDization option set, and the
//! engine mode. Entries are `Arc`s, so eviction never invalidates a
//! running session; it only forces the *next* equivalent submission to
//! recompile.
//!
//! The service holds this cache behind one mutex **across the whole
//! compile**, so two tenants racing to submit the same shape serialize
//! and the second gets a hit. That is the invariant the SERVICE report
//! validator enforces: with zero evictions, `compilations ==
//! distinct_graphs` no matter how many sessions ran.

use macross::{compile_graph, CompiledGraph, SimdizeError, SimdizeOptions};
use macross_streamir::graph::Graph;
use macross_streamir::shash::{structural_hash, GraphHash};
use macross_telemetry::service::CacheStats;
use macross_vm::{ExecMode, Machine};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Everything that selects a distinct compilation output. The machine
/// is keyed by its *full* description, not its name: two `Machine`
/// configs sharing a name but differing in width, features, or costs
/// must never alias to the same artifact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    hash: GraphHash,
    machine: Machine,
    opts_bits: u8,
    mode_tag: u8,
}

fn opts_bits(opts: &SimdizeOptions) -> u8 {
    (opts.single as u8)
        | (opts.vertical as u8) << 1
        | (opts.horizontal as u8) << 2
        | (opts.permute_opt as u8) << 3
        | (opts.reorder_opt as u8) << 4
        | (opts.profitability as u8) << 5
        | (opts.prepass as u8) << 6
        | (opts.region as u8) << 7
}

fn mode_tag(mode: ExecMode) -> u8 {
    match mode {
        ExecMode::Bytecode => 0,
        ExecMode::BytecodeNoFuse => 1,
        ExecMode::TreeWalk => 2,
    }
}

struct Entry {
    art: Arc<CompiledGraph>,
    last_used: u64,
}

/// A bounded LRU of compiled artifacts with hit/miss/eviction counters.
pub struct CompileCache {
    capacity: usize,
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    submits: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    compilations: u64,
    distinct: HashSet<GraphHash>,
}

impl CompileCache {
    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> CompileCache {
        CompileCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            tick: 0,
            submits: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            compilations: 0,
            distinct: HashSet::new(),
        }
    }

    /// Look the graph's shape up; compile (and cache) on a miss. The
    /// returned flag is `true` on a hit.
    ///
    /// # Errors
    /// Propagates SIMDization failures; a failed submission counts
    /// neither as a miss nor as a distinct graph.
    pub fn get_or_compile(
        &mut self,
        graph: &Graph,
        machine: &Machine,
        opts: &SimdizeOptions,
        mode: ExecMode,
    ) -> Result<(Arc<CompiledGraph>, bool), SimdizeError> {
        let key = CacheKey {
            hash: structural_hash(graph),
            machine: machine.clone(),
            opts_bits: opts_bits(opts),
            mode_tag: mode_tag(mode),
        };
        self.tick += 1;
        self.submits += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.last_used = self.tick;
            self.hits += 1;
            return Ok((entry.art.clone(), true));
        }
        let art = Arc::new(compile_graph(graph, machine, opts, mode)?);
        self.misses += 1;
        self.compilations += 1;
        self.distinct.insert(key.hash);
        if self.map.len() >= self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                art: art.clone(),
                last_used: self.tick,
            },
        );
        Ok((art, false))
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters in the SERVICE-report shape.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            capacity: self.capacity as u64,
            distinct_graphs: self.distinct.len() as u64,
            submits: self.submits,
            compilations: self.compilations,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::ScalarTy;

    fn pipeline(name: &str, mul: i32) -> Graph {
        let mut src = FilterBuilder::new(format!("{name}_src"), 0, 0, 1, ScalarTy::I32);
        src.work(|b| {
            b.push(c(1i32));
        });
        let mut f = FilterBuilder::new(name, 1, 1, 1, ScalarTy::I32);
        f.work(move |b| {
            b.push(pop() * mul);
        });
        StreamSpec::pipeline(vec![src.build_spec(), f.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap()
    }

    #[test]
    fn same_shape_hits_renamed_or_not() {
        let machine = Machine::core_i7();
        let opts = SimdizeOptions::all();
        let mut cache = CompileCache::new(8);
        let (_, hit) = cache
            .get_or_compile(&pipeline("a", 3), &machine, &opts, ExecMode::Bytecode)
            .unwrap();
        assert!(!hit);
        // Alpha-renamed copy of the same shape: structural hash collides.
        let (_, hit) = cache
            .get_or_compile(&pipeline("z", 3), &machine, &opts, ExecMode::Bytecode)
            .unwrap();
        assert!(hit);
        // Different constant in the body: distinct shape, fresh compile.
        let (_, hit) = cache
            .get_or_compile(&pipeline("a", 4), &machine, &opts, ExecMode::Bytecode)
            .unwrap();
        assert!(!hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.compilations), (1, 2, 2));
        assert_eq!(s.distinct_graphs, 2);
    }

    #[test]
    fn mode_and_options_partition_the_cache() {
        let machine = Machine::core_i7();
        let mut cache = CompileCache::new(8);
        let g = pipeline("a", 3);
        let all = SimdizeOptions::all();
        let scalar = SimdizeOptions {
            single: false,
            vertical: false,
            horizontal: false,
            ..all
        };
        cache
            .get_or_compile(&g, &machine, &all, ExecMode::Bytecode)
            .unwrap();
        let (_, hit) = cache
            .get_or_compile(&g, &machine, &all, ExecMode::TreeWalk)
            .unwrap();
        assert!(!hit, "engine mode must partition the cache");
        let (_, hit) = cache
            .get_or_compile(&g, &machine, &scalar, ExecMode::Bytecode)
            .unwrap();
        assert!(!hit, "option sets must partition the cache");
        // One source shape, three compilations — legal because the key is
        // (shape, machine, opts, mode), and distinct counts shapes.
        assert_eq!(cache.stats().distinct_graphs, 1);
        assert_eq!(cache.stats().compilations, 3);
    }

    #[test]
    fn machines_sharing_a_name_do_not_alias() {
        let opts = SimdizeOptions::all();
        let mut cache = CompileCache::new(8);
        let g = pipeline("a", 3);
        let narrow = Machine::core_i7();
        // Same name, different vector width: a distinct compilation
        // target that must miss, not inherit the 4-wide artifact.
        let mut wide = Machine::core_i7();
        wide.simd_width = 8;
        assert_eq!(narrow.name, wide.name);
        let (art4, _) = cache
            .get_or_compile(&g, &narrow, &opts, ExecMode::Bytecode)
            .unwrap();
        let (art8, hit) = cache
            .get_or_compile(&g, &wide, &opts, ExecMode::Bytecode)
            .unwrap();
        assert!(!hit, "full machine description must partition the cache");
        assert!(!Arc::ptr_eq(&art4, &art8));
        // A cost-table tweak alone is also a distinct target.
        let mut pricier = Machine::core_i7();
        pricier.cost.permute = 9;
        let (_, hit) = cache
            .get_or_compile(&g, &pricier, &opts, ExecMode::Bytecode)
            .unwrap();
        assert!(!hit, "cost tables must partition the cache");
        assert_eq!(cache.stats().compilations, 3);
    }

    #[test]
    fn lru_bound_evicts_and_recompiles() {
        let machine = Machine::core_i7();
        let opts = SimdizeOptions::all();
        let mut cache = CompileCache::new(2);
        let (g1, g2, g3) = (pipeline("a", 1), pipeline("a", 2), pipeline("a", 3));
        cache
            .get_or_compile(&g1, &machine, &opts, ExecMode::Bytecode)
            .unwrap();
        cache
            .get_or_compile(&g2, &machine, &opts, ExecMode::Bytecode)
            .unwrap();
        // Touch g1 so g2 is the LRU victim when g3 arrives.
        cache
            .get_or_compile(&g1, &machine, &opts, ExecMode::Bytecode)
            .unwrap();
        cache
            .get_or_compile(&g3, &machine, &opts, ExecMode::Bytecode)
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let (_, hit) = cache
            .get_or_compile(&g2, &machine, &opts, ExecMode::Bytecode)
            .unwrap();
        assert!(!hit, "evicted entry recompiles");
        let s = cache.stats();
        assert_eq!(s.compilations, 4);
        assert_eq!(s.distinct_graphs, 3);
    }
}
