//! Typed errors the service API returns. Admission failures are ordinary
//! values a well-behaved client retries with backoff — never panics, never
//! a torn-down server.

use macross::SimdizeError;
use std::fmt;

/// What went wrong with a service call.
#[derive(Debug)]
pub enum ServiceError {
    /// Admission control refused the request: the session cap is reached
    /// (at `submit`) or the tenant's input queue is full (at `feed`).
    /// Retry later; nothing was enqueued.
    Overloaded {
        /// Human-readable description of the saturated resource.
        reason: String,
    },
    /// No live session has this id (never admitted, or already closed).
    UnknownSession(u64),
    /// The session exists but was already closed.
    Closed(u64),
    /// The server is draining for shutdown and admits nothing new.
    ShuttingDown,
    /// The SIMDization driver rejected the submitted graph.
    Simdize(SimdizeError),
    /// A dynamic-rate call failed in the parameter layer: a valuation
    /// outside the template's domain, a builder failure, or an
    /// out-of-order boundary.
    Param(String),
    /// `set_param` was called on a session admitted via `submit`, which
    /// has no parameters.
    NotDynamic(u64),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { reason } => write!(f, "overloaded: {reason}"),
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServiceError::Closed(id) => write!(f, "session {id} is closed"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Simdize(e) => write!(f, "graph rejected: {e}"),
            ServiceError::Param(why) => write!(f, "parameter error: {why}"),
            ServiceError::NotDynamic(id) => {
                write!(f, "session {id} is not a dynamic-rate session")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SimdizeError> for ServiceError {
    fn from(e: SimdizeError) -> ServiceError {
        ServiceError::Simdize(e)
    }
}

impl ServiceError {
    /// True for the typed admission rejection (the oversubscription soak
    /// asserts rejections are exactly this, never a panic or hang).
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ServiceError::Overloaded { .. })
    }
}
