//! Per-session state: one admitted tenant = one engine over the shared
//! compiled artifact — a plain [`SessionEngine`] for static sessions, a
//! [`DynamicSession`] for parameterized ones — plus the bounded queues
//! admission control meters: pending steady iterations on the way in,
//! buffered sink values on the way out.

use macross_pdf::DynamicSession;
use macross_runtime::{SessionEngine, SessionStatus};
use macross_streamir::types::Value;
use macross_telemetry::WorkerTrace;

/// Lifecycle of an admitted session, reported in `SERVICE_*.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantState {
    /// Admitted and serving `feed`/`poll`.
    Active,
    /// `close` or shutdown is flushing its remaining pending work.
    Draining,
    /// A fault quarantined it; the clean prefix is still pollable.
    Faulted,
    /// Fully drained and retired.
    Closed,
}

impl TenantState {
    /// The schema's state string.
    pub fn label(self) -> &'static str {
        match self {
            TenantState::Active => "active",
            TenantState::Draining => "draining",
            TenantState::Faulted => "faulted",
            TenantState::Closed => "closed",
        }
    }
}

/// What `poll` returns: everything the sinks produced since the last
/// poll, plus progress counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PollResult {
    /// One row per sink (in the graph's sink order), drained.
    pub outputs: Vec<Vec<Value>>,
    /// Steady iterations completed so far.
    pub iters_done: u64,
    /// Steady iterations still queued.
    pub pending: u64,
    /// True once a fault quarantined the session.
    pub faulted: bool,
}

/// What `close` returns after the final drain.
#[derive(Debug, Clone, PartialEq)]
pub struct CloseReport {
    /// The remaining (previously unpolled) sink outputs.
    pub outputs: Vec<Vec<Value>>,
    /// Steady iterations completed over the session's lifetime.
    pub iters_done: u64,
    /// Clean firings executed over the session's lifetime.
    pub firings: u64,
    /// True when the session ended quarantined.
    pub faulted: bool,
    /// Rendered stage failures (empty unless faulted).
    pub failures: Vec<String>,
}

/// Outcome of one bounded work slice.
pub(crate) struct SliceOutcome {
    /// The slice was skipped because the output buffer is at its bound.
    pub deferred: bool,
    /// The session is quarantined (now or previously).
    pub faulted: bool,
}

/// The execution half of a tenant: either a fixed-configuration
/// [`SessionEngine`] or a [`DynamicSession`] whose configuration swaps
/// at parameter boundaries. The slice loop treats both identically —
/// the dynamic variant simply splits its slices at scheduled boundaries
/// internally.
pub(crate) enum TenantEngine {
    Static(Box<SessionEngine>),
    Dynamic(Box<DynamicSession>),
}

impl TenantEngine {
    pub fn sink_count(&self) -> usize {
        match self {
            TenantEngine::Static(e) => e.sink_ids().len(),
            TenantEngine::Dynamic(d) => d.sink_count(),
        }
    }

    pub fn run_steady(&mut self, iters: u64) -> SessionStatus {
        match self {
            TenantEngine::Static(e) => e.run_steady(iters),
            TenantEngine::Dynamic(d) => d.run_steady(iters),
        }
    }

    pub fn take_outputs(&mut self) -> Vec<Vec<Value>> {
        match self {
            TenantEngine::Static(e) => e.take_outputs(),
            TenantEngine::Dynamic(d) => d.take_outputs(),
        }
    }

    pub fn iters_done(&self) -> u64 {
        match self {
            TenantEngine::Static(e) => e.iters_done(),
            TenantEngine::Dynamic(d) => d.iters_done(),
        }
    }

    pub fn firings(&self) -> u64 {
        match self {
            TenantEngine::Static(e) => e.firings(),
            TenantEngine::Dynamic(d) => d.firings(),
        }
    }

    pub fn is_faulted(&self) -> bool {
        match self {
            TenantEngine::Static(e) => e.is_faulted(),
            TenantEngine::Dynamic(d) => d.is_faulted(),
        }
    }

    pub fn failure_count(&self) -> u64 {
        match self {
            TenantEngine::Static(e) => e.failures().len() as u64,
            TenantEngine::Dynamic(d) => d.failures_rendered().len() as u64,
        }
    }

    pub fn failures_rendered(&self) -> Vec<String> {
        match self {
            TenantEngine::Static(e) => e.failures().iter().map(|f| f.to_string()).collect(),
            TenantEngine::Dynamic(d) => d.failures_rendered(),
        }
    }

    pub fn set_trace(&mut self, trace: WorkerTrace) {
        match self {
            TenantEngine::Static(e) => e.set_trace(trace),
            TenantEngine::Dynamic(d) => d.set_trace(trace),
        }
    }

    /// The dynamic session, for `set_param`; `None` for static tenants.
    pub fn dynamic_mut(&mut self) -> Option<&mut DynamicSession> {
        match self {
            TenantEngine::Static(_) => None,
            TenantEngine::Dynamic(d) => Some(d),
        }
    }
}

/// The engine-side of a session; lives behind its own mutex so one
/// tenant's slice never blocks another tenant's `feed`/`poll`.
pub(crate) struct Tenant {
    pub engine: TenantEngine,
    /// Steady iterations requested but not yet run.
    pub pending: u64,
    /// Lifetime total of requested iterations.
    pub requested: u64,
    /// Sink outputs accumulated since the last poll, one row per sink.
    pub out: Vec<Vec<Value>>,
    /// Total buffered values across `out` (the backpressure gauge).
    pub buffered: usize,
    /// Lifetime total of values delivered to the client.
    pub delivered: u64,
    /// Times a slice was deferred for backpressure.
    pub stalls: u64,
}

impl Tenant {
    pub fn new(engine: SessionEngine) -> Tenant {
        Tenant::with_engine(TenantEngine::Static(Box::new(engine)))
    }

    pub fn new_dynamic(session: DynamicSession) -> Tenant {
        Tenant::with_engine(TenantEngine::Dynamic(Box::new(session)))
    }

    fn with_engine(engine: TenantEngine) -> Tenant {
        let sinks = engine.sink_count();
        Tenant {
            engine,
            pending: 0,
            requested: 0,
            out: vec![Vec::new(); sinks],
            buffered: 0,
            delivered: 0,
            stalls: 0,
        }
    }

    /// Move freshly produced sink values into the poll buffer.
    fn absorb_outputs(&mut self) {
        for (row, fresh) in self.out.iter_mut().zip(self.engine.take_outputs()) {
            self.buffered += fresh.len();
            row.extend(fresh);
        }
    }

    /// Run up to `batch` pending iterations. With `ignore_bound` unset,
    /// the slice defers instead when the output buffer is at `bound`
    /// (the client must poll before more work runs).
    pub fn run_slice(&mut self, batch: u64, bound: usize, ignore_bound: bool) -> SliceOutcome {
        if self.engine.is_faulted() {
            self.pending = 0;
            return SliceOutcome {
                deferred: false,
                faulted: true,
            };
        }
        if !ignore_bound && self.buffered >= bound {
            self.stalls += 1;
            return SliceOutcome {
                deferred: true,
                faulted: false,
            };
        }
        let take = self.pending.min(batch);
        let status = self.engine.run_steady(take);
        self.pending -= take;
        self.absorb_outputs();
        if status == SessionStatus::Faulted {
            // Nothing queued will ever run; drop it so drains terminate.
            self.pending = 0;
        }
        SliceOutcome {
            deferred: false,
            faulted: status == SessionStatus::Faulted,
        }
    }

    /// Drain the poll buffer.
    pub fn take_buffered(&mut self) -> Vec<Vec<Value>> {
        self.buffered = 0;
        let rows: Vec<Vec<Value>> = self.out.iter_mut().map(std::mem::take).collect();
        self.delivered += rows.iter().map(|r| r.len() as u64).sum::<u64>();
        rows
    }
}
