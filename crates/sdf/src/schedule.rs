//! Steady-state and initialization schedules (Figure 1b of the paper), and
//! per-tape buffer requirements.

use crate::repetition::{repetition_vector, RateMatchError};
use macross_streamir::graph::{Graph, GraphError, NodeId};
use std::fmt;

/// A complete execution plan for a stream graph.
///
/// The steady state executes nodes in topological order, each enclosed in a
/// for-loop running its repetition number of times — exactly the template of
/// Figure 1b. Peeking filters additionally require an *initialization*
/// phase that primes their input tapes with `peek - pop` slack tokens.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Topological execution order.
    pub order: Vec<NodeId>,
    /// Steady-state repetition number per node (indexed by node id).
    pub reps: Vec<u64>,
    /// Initialization firings per node (indexed by node id), executed once
    /// before the first steady-state iteration.
    pub init_reps: Vec<u64>,
}

/// Errors from scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Rate matching failed.
    Rates(RateMatchError),
    /// The graph is structurally invalid.
    Graph(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Rates(e) => write!(f, "rate matching failed: {e}"),
            ScheduleError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<RateMatchError> for ScheduleError {
    fn from(e: RateMatchError) -> Self {
        ScheduleError::Rates(e)
    }
}

impl From<GraphError> for ScheduleError {
    fn from(e: GraphError) -> Self {
        ScheduleError::Graph(e.to_string())
    }
}

impl Schedule {
    /// Compute the steady-state schedule of a graph.
    ///
    /// # Errors
    /// Fails when the graph is cyclic/invalid or its rates are inconsistent.
    pub fn compute(graph: &Graph) -> Result<Schedule, ScheduleError> {
        graph.validate()?;
        let order = graph.topo_order()?;
        let reps = repetition_vector(graph)?;
        let init_reps = compute_init_reps(graph, &order);
        Ok(Schedule {
            order,
            reps,
            init_reps,
        })
    }

    /// Repetition number of a node.
    pub fn rep(&self, id: NodeId) -> u64 {
        self.reps[id.0 as usize]
    }

    /// Scale the entire repetition vector by `m` (used by the SIMDizer's
    /// Equation-1 adjustment). The init schedule is unaffected: priming
    /// tokens depend only on peek slack, not on steady-state length.
    /// Saturates at `u64::MAX` instead of wrapping: an adversarial
    /// multiplier yields a uselessly-huge but *ordered* schedule rather
    /// than one that silently wrapped to a few firings.
    pub fn scale(&mut self, m: u64) {
        for r in &mut self.reps {
            *r = r.saturating_mul(m);
        }
    }

    /// Total firings in one steady-state iteration, saturating at
    /// `u64::MAX` (adversarial repetition vectors must not wrap to a
    /// small total and fool cost models or drain bounds).
    pub fn total_firings(&self) -> u64 {
        self.reps.iter().fold(0u64, |acc, &r| acc.saturating_add(r))
    }
}

/// Initialization firings: enough upstream work that every peeking consumer
/// holds `peek - pop` extra tokens on its input tape before steady state.
/// Public so the SIMDization driver can refresh priming counts after
/// transforming actor rates.
///
/// Processed in reverse topological order: a node must fire in init often
/// enough to cover (a) the tokens its consumers' init firings eat and
/// (b) the peek slack its consumers need left over.
pub fn compute_init_reps(graph: &Graph, order: &[NodeId]) -> Vec<u64> {
    let mut init = vec![0u64; graph.node_count()];
    for &id in order.iter().rev() {
        let mut need = 0u64;
        for eid in graph.out_edges(id) {
            let e = graph.edge(eid);
            let push = graph.node(id).push_rate(e.src_port) as u64;
            let consumer = graph.node(e.dst);
            let pop = consumer.pop_rate(e.dst_port) as u64;
            let peek = consumer.peek_rate(e.dst_port) as u64;
            let slack = peek.saturating_sub(pop);
            let consumed = init[e.dst.0 as usize] * pop + slack;
            need = need.max(consumed.div_ceil(push));
        }
        init[id.0 as usize] = need;
    }
    // Nodes with inputs cannot fire in init beyond what their own producers
    // supply; the reverse pass above already guarantees producers cover
    // them, so no forward fix-up is needed for DAGs.
    init
}

/// Static buffer requirement of one tape under the Figure-1b schedule
/// (producer completes all firings of a steady iteration before the
/// consumer starts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferReq {
    /// Tokens resident after initialization (the peek slack).
    pub init_tokens: u64,
    /// Peak tokens during a steady iteration.
    pub capacity: u64,
}

/// Compute per-edge buffer requirements (indexed by edge id).
pub fn buffer_requirements(graph: &Graph, sched: &Schedule) -> Vec<BufferReq> {
    graph
        .edges()
        .map(|(_, e)| {
            let push = graph.node(e.src).push_rate(e.src_port) as u64;
            let pop = graph.node(e.dst).pop_rate(e.dst_port) as u64;
            let init_tokens =
                sched.init_reps[e.src.0 as usize] * push - sched.init_reps[e.dst.0 as usize] * pop;
            let capacity = init_tokens + sched.reps[e.src.0 as usize] * push;
            BufferReq {
                init_tokens,
                capacity,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::filter::Filter;
    use macross_streamir::graph::Node;
    use macross_streamir::types::ScalarTy;

    fn fir_chain(peek: usize) -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s = g.add_node(Node::Filter(Filter::new("src", 0, 0, 1)));
        let f = g.add_node(Node::Filter(Filter::new("fir", peek, 1, 1)));
        let k = g.add_node(Node::Sink);
        g.connect(s, 0, f, 0, ScalarTy::F32);
        g.connect(f, 0, k, 0, ScalarTy::F32);
        (g, s, f, k)
    }

    #[test]
    fn schedule_simple_chain() {
        let (g, s, f, k) = fir_chain(1);
        let sched = Schedule::compute(&g).unwrap();
        assert_eq!(sched.order, vec![s, f, k]);
        assert_eq!(sched.reps, vec![1, 1, 1]);
        assert_eq!(sched.init_reps, vec![0, 0, 0]);
        assert_eq!(sched.total_firings(), 3);
    }

    #[test]
    fn peeking_filter_gets_primed() {
        let (g, s, f, _) = fir_chain(8);
        let sched = Schedule::compute(&g).unwrap();
        // FIR needs 7 slack tokens; source pushes 1 per firing.
        assert_eq!(sched.init_reps[s.0 as usize], 7);
        assert_eq!(sched.init_reps[f.0 as usize], 0);
        let bufs = buffer_requirements(&g, &sched);
        assert_eq!(bufs[0].init_tokens, 7);
        assert_eq!(bufs[0].capacity, 8);
    }

    #[test]
    fn cascaded_peeking_filters() {
        // src -> fir1(peek 4) -> fir2(peek 6) -> sink: fir1 must fire 5
        // extra times to prime fir2, and src must cover fir1's own slack
        // plus what fir1 eats during init.
        let mut g = Graph::new();
        let s = g.add_node(Node::Filter(Filter::new("src", 0, 0, 1)));
        let f1 = g.add_node(Node::Filter(Filter::new("fir1", 4, 1, 1)));
        let f2 = g.add_node(Node::Filter(Filter::new("fir2", 6, 1, 1)));
        let k = g.add_node(Node::Sink);
        g.connect(s, 0, f1, 0, ScalarTy::F32);
        g.connect(f1, 0, f2, 0, ScalarTy::F32);
        g.connect(f2, 0, k, 0, ScalarTy::F32);
        let sched = Schedule::compute(&g).unwrap();
        assert_eq!(sched.init_reps[f2.0 as usize], 0);
        assert_eq!(sched.init_reps[f1.0 as usize], 5);
        // src: f1 init eats 5 and needs 3 slack => 8.
        assert_eq!(sched.init_reps[s.0 as usize], 8);
    }

    #[test]
    fn scale_multiplies_reps_only() {
        let (g, _, _, _) = fir_chain(8);
        let mut sched = Schedule::compute(&g).unwrap();
        let init = sched.init_reps.clone();
        sched.scale(4);
        assert_eq!(sched.reps, vec![4, 4, 4]);
        assert_eq!(sched.init_reps, init);
    }

    #[test]
    fn scale_and_total_firings_saturate_instead_of_wrapping() {
        let (g, _, _, _) = fir_chain(1);
        let mut sched = Schedule::compute(&g).unwrap();
        // A multiplier that would wrap: 3 nodes at rep 1 scaled by
        // u64::MAX must pin at MAX, and the total must also pin rather
        // than wrapping (MAX + MAX + MAX wraps to MAX - 2 otherwise).
        sched.scale(u64::MAX);
        assert_eq!(sched.reps, vec![u64::MAX; 3]);
        assert_eq!(sched.total_firings(), u64::MAX);
        // Double-scaling an already-saturated schedule stays pinned.
        sched.scale(7);
        assert_eq!(sched.reps, vec![u64::MAX; 3]);
    }

    #[test]
    fn buffer_capacity_accounts_for_rates() {
        let mut g = Graph::new();
        let s = g.add_node(Node::Filter(Filter::new("src", 0, 0, 3)));
        let f = g.add_node(Node::Filter(Filter::new("f", 2, 2, 1)));
        let k = g.add_node(Node::Sink);
        g.connect(s, 0, f, 0, ScalarTy::F32);
        g.connect(f, 0, k, 0, ScalarTy::F32);
        let sched = Schedule::compute(&g).unwrap();
        // reps: src 2, f 3, sink 3.
        let bufs = buffer_requirements(&g, &sched);
        assert_eq!(bufs[0].capacity, 6);
        assert_eq!(bufs[1].capacity, 3);
    }
}
