//! Repetition-vector computation: solving the SDF balance equations
//! (Lee & Messerschmitt, 1987) with exact rational arithmetic.

use macross_streamir::graph::{Graph, NodeId};
use std::fmt;

/// Errors from rate matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RateMatchError {
    /// The balance equations have no consistent solution: the graph is not
    /// a valid SDF program.
    Inconsistent {
        /// Producer of the offending edge.
        src: u32,
        /// Consumer of the offending edge.
        dst: u32,
    },
    /// An edge has a zero production or consumption rate.
    ZeroRate {
        /// Producer of the offending edge.
        src: u32,
        /// Consumer of the offending edge.
        dst: u32,
    },
    /// Arithmetic overflow while solving (rates astronomically imbalanced).
    Overflow,
}

impl fmt::Display for RateMatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateMatchError::Inconsistent { src, dst } => {
                write!(f, "balance equations inconsistent on edge n{src} -> n{dst}")
            }
            RateMatchError::ZeroRate { src, dst } => {
                write!(f, "edge n{src} -> n{dst} has a zero push or pop rate")
            }
            RateMatchError::Overflow => write!(f, "overflow while solving balance equations"),
        }
    }
}

impl std::error::Error for RateMatchError {}

/// Greatest common divisor.
pub fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple.
///
/// # Panics
/// Panics on overflow of `u64`.
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

/// A non-negative rational number used while propagating rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    fn new(num: u64, den: u64) -> Option<Ratio> {
        if den == 0 {
            return None;
        }
        let g = gcd(num, den).max(1);
        Some(Ratio {
            num: num / g,
            den: den / g,
        })
    }

    fn mul(self, num: u64, den: u64) -> Option<Ratio> {
        let a = self.num.checked_mul(num)?;
        let b = self.den.checked_mul(den)?;
        Ratio::new(a, b)
    }
}

/// The minimal repetition vector of a graph: the smallest positive integer
/// firing counts per node such that every tape is balanced in one steady
/// state (`reps[src] * push == reps[dst] * pop` on every edge).
///
/// # Errors
/// See [`RateMatchError`].
pub fn repetition_vector(graph: &Graph) -> Result<Vec<u64>, RateMatchError> {
    let n = graph.node_count();
    let mut ratio: Vec<Option<Ratio>> = vec![None; n];

    // Build adjacency over the undirected structure for propagation.
    for (_, e) in graph.edges() {
        let push = graph.node(e.src).push_rate(e.src_port);
        let pop = graph.node(e.dst).pop_rate(e.dst_port);
        if push == 0 || pop == 0 {
            return Err(RateMatchError::ZeroRate {
                src: e.src.0,
                dst: e.dst.0,
            });
        }
    }

    for start in 0..n {
        if ratio[start].is_some() {
            continue;
        }
        ratio[start] = Some(Ratio { num: 1, den: 1 });
        let mut stack = vec![NodeId(start as u32)];
        while let Some(id) = stack.pop() {
            let r = ratio[id.0 as usize].expect("visited node has a ratio");
            for (_, e) in graph.edges() {
                if e.src == id {
                    let push = graph.node(e.src).push_rate(e.src_port) as u64;
                    let pop = graph.node(e.dst).pop_rate(e.dst_port) as u64;
                    let next = r.mul(push, pop).ok_or(RateMatchError::Overflow)?;
                    match ratio[e.dst.0 as usize] {
                        None => {
                            ratio[e.dst.0 as usize] = Some(next);
                            stack.push(e.dst);
                        }
                        Some(existing) => {
                            if existing != next {
                                return Err(RateMatchError::Inconsistent {
                                    src: e.src.0,
                                    dst: e.dst.0,
                                });
                            }
                        }
                    }
                } else if e.dst == id {
                    let push = graph.node(e.src).push_rate(e.src_port) as u64;
                    let pop = graph.node(e.dst).pop_rate(e.dst_port) as u64;
                    let next = r.mul(pop, push).ok_or(RateMatchError::Overflow)?;
                    match ratio[e.src.0 as usize] {
                        None => {
                            ratio[e.src.0 as usize] = Some(next);
                            stack.push(e.src);
                        }
                        Some(existing) => {
                            if existing != next {
                                return Err(RateMatchError::Inconsistent {
                                    src: e.src.0,
                                    dst: e.dst.0,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Scale to the minimal integer vector: multiply by lcm of denominators,
    // then divide by the gcd of the numerators (per connected component the
    // result is already minimal; global gcd keeps disconnected graphs sane).
    let mut denom_lcm = 1u64;
    for r in ratio.iter().flatten() {
        denom_lcm = lcm(denom_lcm, r.den);
        if denom_lcm == 0 {
            return Err(RateMatchError::Overflow);
        }
    }
    let mut reps = Vec::with_capacity(ratio.len());
    for r in &ratio {
        let r = r.expect("all nodes visited");
        let rep = r
            .num
            .checked_mul(denom_lcm / r.den)
            .ok_or(RateMatchError::Overflow)?;
        reps.push(rep);
    }
    let mut g = 0u64;
    for &r in &reps {
        g = gcd(g, r);
    }
    if g > 1 {
        for r in &mut reps {
            *r /= g;
        }
    }
    Ok(reps)
}

/// Verify that a repetition vector balances every edge of the graph.
pub fn is_balanced(graph: &Graph, reps: &[u64]) -> bool {
    graph.edges().all(|(_, e)| {
        let push = graph.node(e.src).push_rate(e.src_port) as u64;
        let pop = graph.node(e.dst).pop_rate(e.dst_port) as u64;
        reps[e.src.0 as usize] * push == reps[e.dst.0 as usize] * pop
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::filter::Filter;
    use macross_streamir::graph::{Node, SplitKind};
    use macross_streamir::types::ScalarTy;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
    }

    /// The paper's running example (Figure 2a): A(push 8) -> split(4,4,4,4)
    /// -> B(12,3) x4 -> C(1,1) x4 -> join(1,1,1,1) -> D(2,2) -> E(3,4) ->
    /// F(4,1) -> G(2,8) -> H(pop 8).
    fn figure2a() -> (Graph, Vec<u64>) {
        let mut g = Graph::new();
        let a = g.add_node(Node::Filter(Filter::new("A", 0, 0, 8)));
        let sp = g.add_node(Node::Splitter(SplitKind::RoundRobin(vec![4, 4, 4, 4])));
        let mut bs = Vec::new();
        let mut cs = Vec::new();
        for i in 0..4 {
            bs.push(g.add_node(Node::Filter(Filter::new(format!("B{i}"), 12, 12, 3))));
            cs.push(g.add_node(Node::Filter(Filter::new(format!("C{i}"), 1, 1, 1))));
        }
        let j = g.add_node(Node::Joiner(vec![1, 1, 1, 1]));
        let d = g.add_node(Node::Filter(Filter::new("D", 2, 2, 2)));
        let e = g.add_node(Node::Filter(Filter::new("E", 3, 3, 4)));
        let f = g.add_node(Node::Filter(Filter::new("F", 4, 4, 1)));
        let gg = g.add_node(Node::Filter(Filter::new("G", 4, 2, 8)));
        let h = g.add_node(Node::Filter(Filter::new("H", 8, 8, 1)));
        let k = g.add_node(Node::Sink);
        g.connect(a, 0, sp, 0, ScalarTy::F32);
        for i in 0..4 {
            g.connect(sp, i, bs[i], 0, ScalarTy::F32);
            g.connect(bs[i], 0, cs[i], 0, ScalarTy::F32);
            g.connect(cs[i], 0, j, i, ScalarTy::F32);
        }
        g.connect(j, 0, d, 0, ScalarTy::F32);
        g.connect(d, 0, e, 0, ScalarTy::F32);
        g.connect(e, 0, f, 0, ScalarTy::F32);
        g.connect(f, 0, gg, 0, ScalarTy::F32);
        g.connect(gg, 0, h, 0, ScalarTy::F32);
        g.connect(h, 0, k, 0, ScalarTy::F32);
        let reps = repetition_vector(&g).unwrap();
        (g, reps)
    }

    #[test]
    fn figure2a_repetitions_match_paper() {
        let (g, reps) = figure2a();
        // Paper's repetition numbers (Figure 2a): A=6, split=3, B=1, C=3,
        // join=3, D=6, E=4, F=4, G=2, H=2.
        let name_of = |want: &str| -> u64 {
            g.nodes()
                .find(|(_, n)| n.name() == want)
                .map(|(id, _)| reps[id.0 as usize])
                .unwrap()
        };
        assert_eq!(name_of("A"), 6);
        assert_eq!(name_of("B0"), 1);
        assert_eq!(name_of("C2"), 3);
        assert_eq!(name_of("D"), 6);
        assert_eq!(name_of("E"), 4);
        assert_eq!(name_of("F"), 4);
        assert_eq!(name_of("G"), 2);
        assert_eq!(name_of("H"), 2);
        assert!(is_balanced(&g, &reps));
    }

    #[test]
    fn minimality() {
        let (_, reps) = figure2a();
        let mut g = 0u64;
        for &r in &reps {
            g = gcd(g, r);
        }
        assert_eq!(g, 1, "repetition vector must be minimal");
    }

    #[test]
    fn inconsistent_rates_detected() {
        // Diamond where the two paths disagree: src -> dup -> (x1, x2) -> join.
        let mut g = Graph::new();
        let s = g.add_node(Node::Filter(Filter::new("s", 0, 0, 1)));
        let sp = g.add_node(Node::Splitter(SplitKind::Duplicate));
        let x1 = g.add_node(Node::Filter(Filter::new("x1", 1, 1, 1)));
        let x2 = g.add_node(Node::Filter(Filter::new("x2", 1, 1, 2)));
        let j = g.add_node(Node::Joiner(vec![1, 1]));
        let k = g.add_node(Node::Sink);
        g.connect(s, 0, sp, 0, ScalarTy::F32);
        g.connect(sp, 0, x1, 0, ScalarTy::F32);
        g.connect(sp, 1, x2, 0, ScalarTy::F32);
        g.connect(x1, 0, j, 0, ScalarTy::F32);
        g.connect(x2, 0, j, 1, ScalarTy::F32);
        g.connect(j, 0, k, 0, ScalarTy::F32);
        assert!(matches!(
            repetition_vector(&g),
            Err(RateMatchError::Inconsistent { .. })
        ));
    }

    #[test]
    fn zero_rate_detected() {
        let mut g = Graph::new();
        let s = g.add_node(Node::Filter(Filter::new("s", 0, 0, 1)));
        // Filter that never reads its input per its declared rate.
        let f = g.add_node(Node::Filter(Filter::new("f", 1, 0, 1)));
        let k = g.add_node(Node::Sink);
        g.connect(s, 0, f, 0, ScalarTy::F32);
        g.connect(f, 0, k, 0, ScalarTy::F32);
        assert!(matches!(
            repetition_vector(&g),
            Err(RateMatchError::ZeroRate { .. })
        ));
    }

    #[test]
    fn simple_chain_scaling() {
        let mut g = Graph::new();
        let a = g.add_node(Node::Filter(Filter::new("a", 0, 0, 3)));
        let b = g.add_node(Node::Filter(Filter::new("b", 2, 2, 1)));
        let k = g.add_node(Node::Sink);
        g.connect(a, 0, b, 0, ScalarTy::I32);
        g.connect(b, 0, k, 0, ScalarTy::I32);
        let reps = repetition_vector(&g).unwrap();
        assert_eq!(reps, vec![2, 3, 3]);
    }
}
