//! # macross-sdf
//!
//! Synchronous-data-flow scheduling for the MacroSS reproduction: the
//! balance-equation solver producing minimal repetition vectors, the
//! Figure-1b steady-state schedule with an initialization phase for peeking
//! filters, and per-tape buffer sizing.
//!
//! ```
//! use macross_streamir::builder::StreamSpec;
//! use macross_streamir::edsl::FilterBuilder;
//! use macross_streamir::types::ScalarTy;
//! use macross_sdf::Schedule;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut src = FilterBuilder::new("src", 0, 0, 2, ScalarTy::F32);
//! src.work(|b| { b.push(1.0f32); b.push(2.0f32); });
//! let mut dec = FilterBuilder::new("decimate", 2, 2, 1, ScalarTy::F32);
//! dec.work(|b| { b.push(macross_streamir::edsl::pop()); b.push(macross_streamir::edsl::pop()); });
//! # let mut dec = FilterBuilder::new("decimate", 2, 2, 1, ScalarTy::F32);
//! # dec.work(|b| { use macross_streamir::edsl::*; b.push(pop() + pop()); });
//! let g = StreamSpec::pipeline(vec![src.build_spec(), dec.build_spec(), StreamSpec::Sink]).build()?;
//! let sched = Schedule::compute(&g)?;
//! assert_eq!(sched.reps, vec![1, 1, 1]);
//! # Ok(())
//! # }
//! ```

pub mod repetition;
pub mod schedule;

pub use repetition::{gcd, is_balanced, lcm, repetition_vector, RateMatchError};
pub use schedule::{buffer_requirements, compute_init_reps, BufferReq, Schedule, ScheduleError};
