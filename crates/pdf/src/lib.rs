//! Parameterized synchronous dataflow on top of the MacroSS pipeline.
//!
//! Classic SDF fixes every actor's pop/peek/push rate at compile time;
//! many streaming programs are *parameterized*: a decimation factor, a
//! frame length, a burst size that changes at well-defined points of the
//! stream. This crate adds that dimension without giving up anything the
//! static pipeline proves:
//!
//! - [`ParamGraph`] is a graph *template*: a [`ParamDomain`] declaring
//!   every runtime parameter's legal range, plus a builder that
//!   instantiates a concrete [`Graph`] for one
//!   [`Valuation`] (rate expressions evaluate via
//!   [`macross_streamir::RateExpr`]).
//! - At a parameter boundary the balance equations are re-solved, the
//!   steady schedule and buffer requirements re-derived, and SIMDization
//!   re-run for the new rates — by compiling the instantiated graph
//!   through the ordinary [`macross::compile_graph`] pipeline.
//! - [`ScheduleCache`] memoizes compiled configurations per
//!   `(shape, valuation, machine, options, mode)`, so revisiting a
//!   valuation never recompiles.
//! - [`DynamicSession`] swaps configurations at quiescent points
//!   (steady-iteration boundaries) using the session carrier protocol
//!   ([`macross_runtime::SessionCarrier`]): stateful filters travel by
//!   name, resident tape tokens by edge signature, and init-only state is
//!   recomputed — so in-flight data carries over bit-exactly.
//! - [`ParamGraph::validate_swappable`] sweeps the whole domain once and
//!   proves every pair of configurations exchangeable before any runtime
//!   swap happens; [`oracle_replay`] is the differential referee, running
//!   the same scripted [`ParamTrace`] with every configuration compiled
//!   from scratch.

pub mod cache;
pub mod oracle;
pub mod session;
pub mod template;

pub use cache::ScheduleCache;
pub use oracle::{oracle_replay, ParamTrace, TraceStep};
pub use session::{CompileFn, DynamicSession};
pub use template::{ParamGraph, SwapValidation};

use macross::SimdizeError;
use macross_streamir::ParamError;
use std::fmt;

/// Errors from the parameterized-dataflow layer.
#[derive(Debug)]
pub enum PdfError {
    /// A valuation failed domain validation, or a rate expression could
    /// not be evaluated.
    Param(ParamError),
    /// The template builder produced an invalid graph.
    Build(String),
    /// The SIMDization driver rejected an instantiated configuration.
    Simdize(SimdizeError),
    /// The domain sweep found two configurations that cannot exchange a
    /// session carrier (the template must not be run dynamically).
    NotSwappable(String),
    /// A runtime configuration swap failed; the session is quarantined.
    Swap(String),
    /// A scripted parameter boundary is out of order (before an already
    /// scheduled or executed iteration).
    Boundary(String),
}

impl fmt::Display for PdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdfError::Param(e) => write!(f, "parameter error: {e}"),
            PdfError::Build(e) => write!(f, "template build failed: {e}"),
            PdfError::Simdize(e) => write!(f, "configuration rejected: {e}"),
            PdfError::NotSwappable(e) => write!(f, "template is not swappable: {e}"),
            PdfError::Swap(e) => write!(f, "configuration swap failed: {e}"),
            PdfError::Boundary(e) => write!(f, "bad parameter boundary: {e}"),
        }
    }
}

impl std::error::Error for PdfError {}

impl From<ParamError> for PdfError {
    fn from(e: ParamError) -> PdfError {
        PdfError::Param(e)
    }
}

impl From<SimdizeError> for PdfError {
    fn from(e: SimdizeError) -> PdfError {
        PdfError::Simdize(e)
    }
}
