//! The differential referee for dynamic-rate execution: replay a
//! scripted parameter trace with **every configuration compiled from
//! scratch** — no schedule cache, no compile-once cache, a fresh
//! [`SessionEngine`] per segment — and return the concatenated sink
//! outputs. A [`crate::DynamicSession`] driving the same trace must
//! produce bit-identical outputs; anything the caches or the swap
//! machinery got wrong shows up as a diff.

use crate::template::ParamGraph;
use crate::PdfError;
use macross::{compile_graph, SimdizeOptions};
use macross_runtime::{FaultPlan, SessionEngine, SessionStatus};
use macross_streamir::types::Value;
use macross_streamir::Valuation;
use macross_vm::{ExecMode, Machine};
use std::sync::Arc;

/// One segment of a scripted trace: parameter changes applied at the
/// segment's leading quiescent point, then a run of steady iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// `(name, value)` changes; empty = no reconfiguration, keep running.
    pub sets: Vec<(String, u64)>,
    /// Steady iterations to run after applying the changes.
    pub iters: u64,
}

/// A named, scripted parameter trace — the driver for the dynamic-rate
/// benchmarks and the differential suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamTrace {
    /// Trace name (tags reports and test failures).
    pub name: String,
    /// Segments, in stream order.
    pub steps: Vec<TraceStep>,
}

impl ParamTrace {
    /// An empty trace.
    pub fn new(name: impl Into<String>) -> ParamTrace {
        ParamTrace {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Append a segment: apply `sets` at the boundary, then run `iters`.
    pub fn then(mut self, sets: &[(&str, u64)], iters: u64) -> ParamTrace {
        self.steps.push(TraceStep {
            sets: sets.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            iters,
        });
        self
    }

    /// Total steady iterations across all segments.
    pub fn total_iters(&self) -> u64 {
        self.steps.iter().map(|s| s.iters).sum()
    }

    /// Segments that schedule at least one parameter change (each is one
    /// reconfiguration: same-boundary sets coalesce).
    pub fn reconfigurations(&self) -> u64 {
        self.steps.iter().filter(|s| !s.sets.is_empty()).count() as u64
    }
}

/// Replay `trace` from `init`, compiling each configuration from scratch
/// and carrying the session state across segments with the same carrier
/// protocol the dynamic session uses. Returns the concatenated sink
/// outputs (one row per sink).
///
/// # Errors
/// Any instantiation, compilation, carrier, or in-run fault aborts the
/// replay — the oracle has no quarantine-and-continue mode; a trace that
/// faults is a broken test input.
pub fn oracle_replay(
    template: &ParamGraph,
    init: &Valuation,
    trace: &ParamTrace,
    machine: &Machine,
    opts: &SimdizeOptions,
    mode: ExecMode,
) -> Result<Vec<Vec<Value>>, PdfError> {
    let machine = Arc::new(machine.clone());
    let mut valuation = init.clone();
    let graph = template.instantiate(&valuation)?;
    let art = compile_graph(&graph, &machine, opts, mode)?;
    let mut engine = SessionEngine::new(
        art.graph.clone(),
        art.schedule.clone(),
        machine.clone(),
        &art.programs,
        FaultPlan::none(),
        0,
    );
    if engine.run_init() == SessionStatus::Faulted {
        return Err(PdfError::Swap(render_failures(&engine)));
    }
    let mut outputs = vec![Vec::new(); engine.sink_ids().len()];
    for step in &trace.steps {
        if !step.sets.is_empty() {
            let mut target = valuation.clone();
            for (name, value) in &step.sets {
                target.bind(name, *value);
            }
            template.domain().check(&target)?;
            let carrier = engine.export_carrier().map_err(PdfError::Swap)?;
            absorb(&mut outputs, &mut engine);
            let graph = template.instantiate(&target)?;
            let art = compile_graph(&graph, &machine, opts, mode)?;
            engine = SessionEngine::resume(
                art.graph.clone(),
                art.schedule.clone(),
                machine.clone(),
                &art.programs,
                FaultPlan::none(),
                0,
                &carrier,
            )
            .map_err(PdfError::Swap)?;
            valuation = target;
        }
        if engine.run_steady(step.iters) == SessionStatus::Faulted {
            return Err(PdfError::Swap(render_failures(&engine)));
        }
        absorb(&mut outputs, &mut engine);
    }
    Ok(outputs)
}

fn absorb(outputs: &mut [Vec<Value>], engine: &mut SessionEngine) {
    for (row, fresh) in outputs.iter_mut().zip(engine.take_outputs()) {
        row.extend(fresh);
    }
}

fn render_failures(engine: &SessionEngine) -> String {
    engine
        .failures()
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}
