//! Graph templates: a parameter domain plus a builder that instantiates
//! one concrete [`Graph`] per [`Valuation`], and the swappability sweep
//! that proves every configuration of the domain can exchange a session
//! carrier with every other.

use crate::PdfError;
use macross::{compile_graph, CompiledGraph, SimdizeOptions};
use macross_sdf::{buffer_requirements, Schedule};
use macross_streamir::analysis::analyze_vectorizability;
use macross_streamir::filter::VarKind;
use macross_streamir::graph::{Graph, Node};
use macross_streamir::{ParamDomain, Valuation};
use macross_vm::{ExecMode, Machine};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Hard bound on the exhaustive validation sweep: a dynamic-rate program
/// declares a handful of small parameter ranges, not a search space.
const MAX_SWEEP: u64 = 4096;

/// A parameterized stream program: the legal parameter space and a
/// builder producing the concrete graph for one valuation.
///
/// The builder is expected to evaluate its rate expressions
/// ([`macross_streamir::RateExpr`]) against the valuation it receives and
/// emit work bodies matching those rates. Node *names* are part of the
/// template's contract: stateful filters must keep their names across
/// valuations (the carrier addresses their state by name), which the
/// SIMDizer guarantees by never transforming stateful actors.
#[derive(Clone)]
pub struct ParamGraph {
    name: String,
    domain: ParamDomain,
    #[allow(clippy::type_complexity)]
    build: Arc<dyn Fn(&Valuation) -> Result<Graph, String> + Send + Sync>,
}

impl std::fmt::Debug for ParamGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParamGraph")
            .field("name", &self.name)
            .field("domain", &self.domain)
            .finish_non_exhaustive()
    }
}

/// What the swappability sweep established (for reports and logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapValidation {
    /// Configurations compiled and compared (the domain cardinality).
    pub configurations: u64,
    /// Edges whose resident tokens a swap carries (peek-slack edges).
    pub carried_edges: usize,
    /// Filters whose state a swap carries by name.
    pub stateful_filters: usize,
}

/// The carrier-facing shape of one compiled configuration. Two
/// configurations are exchangeable exactly when these profiles agree.
#[derive(Debug, PartialEq, Eq)]
struct SwapProfile {
    sinks: usize,
    /// Stateful filter name -> state-variable type shapes, in
    /// declaration order.
    stateful: BTreeMap<String, Vec<String>>,
    /// Carried edge signature -> resident tokens after init.
    carried: BTreeMap<(String, usize, String, usize), u64>,
}

impl ParamGraph {
    /// A template over `domain`; `build` instantiates the graph for one
    /// (already validated) valuation.
    pub fn new(
        name: impl Into<String>,
        domain: ParamDomain,
        build: impl Fn(&Valuation) -> Result<Graph, String> + Send + Sync + 'static,
    ) -> ParamGraph {
        ParamGraph {
            name: name.into(),
            domain,
            build: Arc::new(build),
        }
    }

    /// Template name (tags reports and error messages).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared parameter space.
    pub fn domain(&self) -> &ParamDomain {
        &self.domain
    }

    /// Build and validate the concrete graph for `valuation`.
    ///
    /// # Errors
    /// [`PdfError::Param`] when the valuation is outside the domain,
    /// [`PdfError::Build`] when the builder or graph validation fails.
    pub fn instantiate(&self, valuation: &Valuation) -> Result<Graph, PdfError> {
        self.domain.check(valuation)?;
        let graph = (self.build)(valuation)
            .map_err(|e| PdfError::Build(format!("{} at {valuation}: {e}", self.name)))?;
        graph
            .validate()
            .map_err(|e| PdfError::Build(format!("{} at {valuation}: {e}", self.name)))?;
        Ok(graph)
    }

    /// Exhaustively prove the template swappable under `(machine, opts,
    /// mode)`: compile every valuation in the domain and require all
    /// configurations to expose the *same* carrier interface — equal sink
    /// counts, identical stateful-filter names and state shapes, and
    /// identical resident-token counts per (unreordered, unambiguous)
    /// edge signature. A template that passes can swap between any two of
    /// its valuations at a quiescent point without losing a bit.
    ///
    /// # Errors
    /// [`PdfError::NotSwappable`] naming the first disagreeing valuation;
    /// [`PdfError::Simdize`]/[`PdfError::Build`] when a configuration
    /// fails to compile at all.
    pub fn validate_swappable(
        &self,
        machine: &Machine,
        opts: &SimdizeOptions,
        mode: ExecMode,
    ) -> Result<SwapValidation, PdfError> {
        let card = self.domain.cardinality().ok_or_else(|| {
            PdfError::NotSwappable(format!("{}: domain cardinality overflows", self.name))
        })?;
        if card == 0 {
            return Err(PdfError::NotSwappable(format!(
                "{}: domain is empty",
                self.name
            )));
        }
        if card > MAX_SWEEP {
            return Err(PdfError::NotSwappable(format!(
                "{}: domain has {card} valuations, exhaustive validation caps at {MAX_SWEEP}",
                self.name
            )));
        }
        let mut reference: Option<(Valuation, SwapProfile)> = None;
        for valuation in self.domain.valuations() {
            let graph = self.instantiate(&valuation)?;
            let art = compile_graph(&graph, machine, opts, mode)?;
            let profile = swap_profile(&art).map_err(|e| {
                PdfError::NotSwappable(format!("{} at {valuation}: {e}", self.name))
            })?;
            match &reference {
                None => reference = Some((valuation, profile)),
                Some((v0, p0)) => {
                    if let Some(why) = profile_diff(p0, &profile) {
                        return Err(PdfError::NotSwappable(format!(
                            "{}: configurations {v0} and {valuation} disagree: {why}",
                            self.name
                        )));
                    }
                }
            }
        }
        let (_, p) = reference.expect("card > 0 visited at least one valuation");
        Ok(SwapValidation {
            configurations: card,
            carried_edges: p.carried.len(),
            stateful_filters: p.stateful.len(),
        })
    }
}

/// Extract the carrier interface of one compiled configuration, refusing
/// shapes a swap could not serve (duplicate stateful names, ambiguous or
/// reordered carried edges).
fn swap_profile(art: &CompiledGraph) -> Result<SwapProfile, String> {
    let graph: &Graph = &art.graph;
    let schedule: &Schedule = &art.schedule;
    let mut stateful = BTreeMap::new();
    let mut sinks = 0usize;
    for (_, node) in graph.nodes() {
        match node {
            Node::Filter(f) if analyze_vectorizability(f).stateful => {
                let shapes: Vec<String> = f
                    .vars
                    .iter()
                    .filter(|v| v.kind == VarKind::State)
                    .map(|v| format!("{:?}", v.ty))
                    .collect();
                if stateful.insert(f.name.clone(), shapes).is_some() {
                    return Err(format!("duplicate stateful filter name '{}'", f.name));
                }
            }
            Node::Sink => sinks += 1,
            _ => {}
        }
    }
    let bufs = buffer_requirements(graph, schedule);
    let mut carried = BTreeMap::new();
    for ((_, e), req) in graph.edges().zip(&bufs) {
        if req.init_tokens == 0 {
            continue;
        }
        let sig = (
            graph.node(e.src).name(),
            e.src_port,
            graph.node(e.dst).name(),
            e.dst_port,
        );
        if e.reorder.is_some() {
            return Err(format!(
                "carried edge {}:{} -> {}:{} is reordered; its resident tokens encode a \
                 per-configuration permutation and cannot travel",
                sig.0, sig.1, sig.2, sig.3
            ));
        }
        if carried.insert(sig.clone(), req.init_tokens).is_some() {
            return Err(format!(
                "ambiguous carried-edge signature {}:{} -> {}:{}",
                sig.0, sig.1, sig.2, sig.3
            ));
        }
    }
    Ok(SwapProfile {
        sinks,
        stateful,
        carried,
    })
}

/// First difference between two profiles, rendered for the error message.
fn profile_diff(a: &SwapProfile, b: &SwapProfile) -> Option<String> {
    if a.sinks != b.sinks {
        return Some(format!("sink count {} vs {}", a.sinks, b.sinks));
    }
    if a.stateful != b.stateful {
        return Some(format!(
            "stateful filters {:?} vs {:?}",
            a.stateful.keys().collect::<Vec<_>>(),
            b.stateful.keys().collect::<Vec<_>>()
        ));
    }
    if a.carried != b.carried {
        return Some(format!(
            "carried resident tokens {:?} vs {:?}",
            a.carried, b.carried
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};
    use macross_streamir::RateExpr;

    /// src (stateful counter) -> smooth (stateful, peek 4) ->
    /// downsample(decim) -> sink; `decim` is the runtime parameter.
    pub(crate) fn decim_template() -> ParamGraph {
        let domain = ParamDomain::new().with("decim", 1, 3);
        ParamGraph::new("decim_chain", domain, |val| {
            let decim = RateExpr::param("decim")
                .eval(val)
                .map_err(|e| e.to_string())?;
            let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
            let n = src.state("n", Ty::Scalar(ScalarTy::I32));
            src.work(|b| {
                b.push(v(n));
                b.set(n, v(n) + 1i32);
            });
            let mut smooth = FilterBuilder::new("smooth", 4, 1, 1, ScalarTy::I32);
            let acc = smooth.state("acc", Ty::Scalar(ScalarTy::I32));
            let junk = smooth.local("junk", Ty::Scalar(ScalarTy::I32));
            smooth.work(|b| {
                b.set(acc, v(acc) + peek(c(3i32)));
                b.push(peek(c(0i32)) + v(acc));
                b.set(junk, pop());
            });
            let mut down = FilterBuilder::new("down", decim, decim, 1, ScalarTy::I32);
            let x = down.local("x", Ty::Scalar(ScalarTy::I32));
            let j = down.local("j", Ty::Scalar(ScalarTy::I32));
            let i = down.local("i", Ty::Scalar(ScalarTy::I32));
            down.work(move |b| {
                b.set(x, pop());
                b.for_(i, (decim - 1) as i32, |b| {
                    b.set(j, pop());
                });
                b.push(v(x));
            });
            StreamSpec::pipeline(vec![
                src.build_spec(),
                smooth.build_spec(),
                down.build_spec(),
                StreamSpec::Sink,
            ])
            .build()
            .map_err(|e| e.to_string())
        })
    }

    #[test]
    fn instantiation_respects_the_domain() {
        let t = decim_template();
        assert!(t.instantiate(&Valuation::of("decim", 2)).is_ok());
        let err = t.instantiate(&Valuation::of("decim", 9)).unwrap_err();
        assert!(matches!(err, PdfError::Param(_)), "{err}");
        let err = t.instantiate(&Valuation::new()).unwrap_err();
        assert!(matches!(err, PdfError::Param(_)), "{err}");
    }

    #[test]
    fn decim_chain_validates_swappable() {
        let t = decim_template();
        let v = t
            .validate_swappable(
                &Machine::core_i7(),
                &SimdizeOptions::all(),
                ExecMode::Bytecode,
            )
            .unwrap();
        assert_eq!(v.configurations, 3);
        // src -> smooth carries the 3-token peek slack in every config.
        assert_eq!(v.carried_edges, 1);
        assert_eq!(v.stateful_filters, 2);
    }

    #[test]
    fn unstable_stateful_name_is_rejected() {
        // A pathological template whose parameter changes the *name* of a
        // stateful filter: the carrier addresses state by name, so the
        // sweep must refuse it.
        let domain = ParamDomain::new().with("k", 0, 1);
        let t = ParamGraph::new("bad_names", domain, |val| {
            let k = val.get("k").unwrap();
            let mut src = FilterBuilder::new(format!("src{k}"), 0, 0, 1, ScalarTy::I32);
            let n = src.state("n", Ty::Scalar(ScalarTy::I32));
            src.work(|b| {
                b.push(v(n));
                b.set(n, v(n) + 1i32);
            });
            StreamSpec::pipeline(vec![src.build_spec(), StreamSpec::Sink])
                .build()
                .map_err(|e| e.to_string())
        });
        let err = t
            .validate_swappable(
                &Machine::core_i7(),
                &SimdizeOptions::all(),
                ExecMode::Bytecode,
            )
            .unwrap_err();
        assert!(matches!(err, PdfError::NotSwappable(_)), "{err}");
        assert!(err.to_string().contains("stateful filters"), "{err}");
    }
}
