//! The per-configuration schedule cache: one compiled configuration per
//! `(shape, valuation, machine, options, mode)`, so a dynamic session
//! revisiting a parameter valuation never re-solves the balance
//! equations or re-runs SIMDization.
//!
//! The cache is compile-agnostic: a lookup takes the *instantiated*
//! graph plus a compile callback to run on a miss. Standalone users pass
//! a plain [`macross::compile_graph`] wrapper; the service passes its
//! compile-once `CompileCache`, layering the two so a schedule-cache
//! miss can still be a compile-cache hit (two templates instantiating
//! structurally identical graphs share one artifact).

use macross::{CompiledGraph, SimdizeError, SimdizeOptions};
use macross_streamir::graph::Graph;
use macross_streamir::shash::{structural_hash, GraphHash};
use macross_streamir::Valuation;
use macross_telemetry::service::ScheduleCacheStats;
use macross_vm::{ExecMode, Machine};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Everything that selects a distinct installed configuration. The
/// structural hash covers the instantiated graph (so two valuations
/// mapping to the same shape still key separately through `canon`, and
/// two templates mapping different shapes to the same valuation string
/// still key separately through `hash`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ScheduleKey {
    hash: GraphHash,
    canon: String,
    machine: Machine,
    opts_bits: u8,
    mode_tag: u8,
}

fn opts_bits(opts: &SimdizeOptions) -> u8 {
    (opts.single as u8)
        | (opts.vertical as u8) << 1
        | (opts.horizontal as u8) << 2
        | (opts.permute_opt as u8) << 3
        | (opts.reorder_opt as u8) << 4
        | (opts.profitability as u8) << 5
        | (opts.prepass as u8) << 6
        | (opts.region as u8) << 7
}

fn mode_tag(mode: ExecMode) -> u8 {
    match mode {
        ExecMode::Bytecode => 0,
        ExecMode::BytecodeNoFuse => 1,
        ExecMode::TreeWalk => 2,
    }
}

struct Entry {
    art: Arc<CompiledGraph>,
    last_used: u64,
}

/// A bounded LRU of compiled configurations keyed by shape x valuation x
/// machine x options x mode, with reconfiguration counters in the
/// SERVICE-report shape.
pub struct ScheduleCache {
    capacity: usize,
    map: HashMap<ScheduleKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    reconfigurations: u64,
    distinct: HashSet<(GraphHash, String)>,
}

impl ScheduleCache {
    /// An empty cache bounded to `capacity` configurations (min 1).
    pub fn new(capacity: usize) -> ScheduleCache {
        ScheduleCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            reconfigurations: 0,
            distinct: HashSet::new(),
        }
    }

    /// Look up the configuration for `(graph, valuation, machine, opts,
    /// mode)`; run `compile` and cache its artifact on a miss. Every call
    /// counts as one reconfiguration (a configuration install at a
    /// parameter boundary). The returned flag is `true` on a hit.
    ///
    /// # Errors
    /// Propagates the compile callback's failure; a failed install counts
    /// neither as a miss nor as a distinct valuation.
    pub fn get_or_compile<F>(
        &mut self,
        graph: &Graph,
        valuation: &Valuation,
        machine: &Machine,
        opts: &SimdizeOptions,
        mode: ExecMode,
        compile: F,
    ) -> Result<(Arc<CompiledGraph>, bool), SimdizeError>
    where
        F: FnOnce(&Graph) -> Result<Arc<CompiledGraph>, SimdizeError>,
    {
        let key = ScheduleKey {
            hash: structural_hash(graph),
            canon: valuation.canon(),
            machine: machine.clone(),
            opts_bits: opts_bits(opts),
            mode_tag: mode_tag(mode),
        };
        self.tick += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.last_used = self.tick;
            self.hits += 1;
            self.reconfigurations += 1;
            return Ok((entry.art.clone(), true));
        }
        let art = compile(graph)?;
        self.misses += 1;
        self.reconfigurations += 1;
        self.distinct.insert((key.hash, key.canon.clone()));
        if self.map.len() >= self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                art: art.clone(),
                last_used: self.tick,
            },
        );
        Ok((art, false))
    }

    /// Live configurations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been installed yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters in the SERVICE-report shape. Invariants the report
    /// validator enforces: `hits + misses == reconfigurations`, and with
    /// zero evictions `misses == distinct_valuations` (each distinct
    /// valuation compiled exactly once, however often it was revisited).
    pub fn stats(&self) -> ScheduleCacheStats {
        ScheduleCacheStats {
            capacity: self.capacity as u64,
            distinct_valuations: self.distinct.len() as u64,
            reconfigurations: self.reconfigurations,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross::compile_graph;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::ScalarTy;

    fn pipeline(mul: i32) -> Graph {
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
        src.work(|b| {
            b.push(c(1i32));
        });
        let mut f = FilterBuilder::new("f", 1, 1, 1, ScalarTy::I32);
        f.work(move |b| {
            b.push(pop() * mul);
        });
        StreamSpec::pipeline(vec![src.build_spec(), f.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap()
    }

    fn compile(g: &Graph) -> Result<Arc<CompiledGraph>, SimdizeError> {
        compile_graph(
            g,
            &Machine::core_i7(),
            &SimdizeOptions::all(),
            ExecMode::Bytecode,
        )
        .map(Arc::new)
    }

    #[test]
    fn repeat_valuations_hit_and_count_reconfigurations() {
        let machine = Machine::core_i7();
        let opts = SimdizeOptions::all();
        let mut cache = ScheduleCache::new(8);
        let (g2, g3) = (pipeline(2), pipeline(3));
        let (v2, v3) = (Valuation::of("mul", 2), Valuation::of("mul", 3));
        let mut compiles = 0;
        for (g, v) in [(&g2, &v2), (&g3, &v3), (&g2, &v2), (&g3, &v3), (&g2, &v2)] {
            cache
                .get_or_compile(g, v, &machine, &opts, ExecMode::Bytecode, |g| {
                    compiles += 1;
                    compile(g)
                })
                .unwrap();
        }
        let s = cache.stats();
        assert_eq!(compiles, 2, "repeat valuations must not recompile");
        assert_eq!((s.hits, s.misses), (3, 2));
        assert_eq!(s.reconfigurations, 5);
        assert_eq!(s.distinct_valuations, 2);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn same_valuation_string_different_shape_does_not_alias() {
        let machine = Machine::core_i7();
        let opts = SimdizeOptions::all();
        let mut cache = ScheduleCache::new(8);
        let v = Valuation::of("k", 1);
        cache
            .get_or_compile(
                &pipeline(2),
                &v,
                &machine,
                &opts,
                ExecMode::Bytecode,
                compile,
            )
            .unwrap();
        let (_, hit) = cache
            .get_or_compile(
                &pipeline(3),
                &v,
                &machine,
                &opts,
                ExecMode::Bytecode,
                compile,
            )
            .unwrap();
        assert!(!hit, "distinct shapes must partition the cache");
        assert_eq!(cache.stats().distinct_valuations, 2);
    }

    #[test]
    fn lru_bound_evicts_and_reinstalls() {
        let machine = Machine::core_i7();
        let opts = SimdizeOptions::all();
        let mut cache = ScheduleCache::new(1);
        let (g2, g3) = (pipeline(2), pipeline(3));
        let (v2, v3) = (Valuation::of("mul", 2), Valuation::of("mul", 3));
        cache
            .get_or_compile(&g2, &v2, &machine, &opts, ExecMode::Bytecode, compile)
            .unwrap();
        cache
            .get_or_compile(&g3, &v3, &machine, &opts, ExecMode::Bytecode, compile)
            .unwrap();
        let (_, hit) = cache
            .get_or_compile(&g2, &v2, &machine, &opts, ExecMode::Bytecode, compile)
            .unwrap();
        assert!(!hit, "evicted configuration reinstalls");
        let s = cache.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.misses, 3);
        assert_eq!(s.distinct_valuations, 2);
    }
}
