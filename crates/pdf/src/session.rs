//! Dynamic-rate sessions: a supervised session whose parameter valuation
//! can change at steady-iteration boundaries, with each configuration
//! compiled (or fetched) through the [`ScheduleCache`] and the live
//! state moved across by the session carrier protocol.
//!
//! ## Quiescent-point swap
//!
//! A parameter boundary is scheduled at an absolute steady-iteration
//! index ([`DynamicSession::set_param_at`]); [`DynamicSession::run_steady`]
//! splits its slice at every scheduled boundary, and applies the swap
//! *between* iterations — the only points where no firing is mid-flight,
//! every tape holds exactly its peek slack, and the carrier is therefore
//! a complete description of the session. Service callers get this for
//! free: work slices only ever return at iteration boundaries, so a
//! `set_param` scheduled after everything already fed lands on one.
//!
//! ## What a swap moves
//!
//! [`SessionEngine::export_carrier`] captures stateful filters by name
//! and resident tape tokens by edge signature;
//! [`SessionEngine::resume`] rebuilds the engine for the new
//! configuration, re-runs init *functions* (recomputing deterministic
//! init-only state like coefficient tables), installs the carried state
//! and tokens, and skips the init *schedule* — the carrier already holds
//! its effect. [`crate::ParamGraph::validate_swappable`] proves ahead of
//! time that every pair of configurations can make this exchange; the
//! typed error path exists so an unvalidated swap degrades to a
//! quarantined session, never silent corruption.

use crate::cache::ScheduleCache;
use crate::template::ParamGraph;
use crate::PdfError;
use macross::{CompiledGraph, SimdizeError, SimdizeOptions};
use macross_runtime::{FaultPlan, SessionEngine, SessionStatus};
use macross_streamir::graph::Graph;
use macross_streamir::types::Value;
use macross_streamir::Valuation;
use macross_telemetry::{EventKind, WorkerTrace};
use macross_vm::{ExecMode, Machine};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// How a session compiles a configuration the [`ScheduleCache`] does not
/// hold: standalone users wrap [`macross::compile_graph`]; the service
/// passes its compile-once cache so structurally identical
/// configurations share one artifact across templates.
pub type CompileFn = Arc<
    dyn Fn(&Graph, &Machine, &SimdizeOptions, ExecMode) -> Result<Arc<CompiledGraph>, SimdizeError>
        + Send
        + Sync,
>;

/// A [`CompileFn`] that compiles from scratch on every schedule-cache
/// miss (no artifact sharing) — the standalone default.
pub fn direct_compile() -> CompileFn {
    Arc::new(|g, machine, opts, mode| macross::compile_graph(g, machine, opts, mode).map(Arc::new))
}

/// One tenant's supervised run of a *parameterized* graph: a
/// [`SessionEngine`] for the current configuration, the pending
/// parameter boundaries, and the caches that make revisiting a valuation
/// free.
pub struct DynamicSession {
    template: Arc<ParamGraph>,
    machine: Arc<Machine>,
    opts: SimdizeOptions,
    mode: ExecMode,
    cache: Arc<Mutex<ScheduleCache>>,
    compile: CompileFn,
    plan: FaultPlan,
    shard: u32,
    engine: SessionEngine,
    art: Arc<CompiledGraph>,
    current: Valuation,
    /// Scheduled boundaries: `(absolute steady-iteration index, full
    /// target valuation)`, indices non-decreasing; same-index updates
    /// coalesce into one swap.
    boundaries: VecDeque<(u64, Valuation)>,
    /// Steady iterations completed across every configuration.
    iters_total: u64,
    /// Clean firings completed by retired configurations.
    firings_base: u64,
    /// Swaps applied so far.
    swaps: u64,
    /// Whether the last configuration install hit the schedule cache.
    last_hit: bool,
    /// A failed swap quarantines the session exactly like a stage fault.
    swap_failure: Option<String>,
    /// Outputs drained from retired engines, merged into
    /// [`DynamicSession::take_outputs`].
    held_outputs: Vec<Vec<Value>>,
    trace: WorkerTrace,
}

impl DynamicSession {
    /// Open a session at `init`, compiling (or fetching) its first
    /// configuration through `cache`.
    ///
    /// # Errors
    /// [`PdfError::Param`] for a valuation outside the domain,
    /// [`PdfError::Build`]/[`PdfError::Simdize`] when the configuration
    /// does not compile.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        template: Arc<ParamGraph>,
        init: &Valuation,
        machine: Arc<Machine>,
        opts: SimdizeOptions,
        mode: ExecMode,
        cache: Arc<Mutex<ScheduleCache>>,
        compile: CompileFn,
        plan: FaultPlan,
        shard: u32,
    ) -> Result<DynamicSession, PdfError> {
        let graph = template.instantiate(init)?;
        let (art, hit) = {
            let mut c = cache.lock().unwrap();
            c.get_or_compile(&graph, init, &machine, &opts, mode, |g| {
                compile(g, &machine, &opts, mode)
            })?
        };
        Ok(DynamicSession::assemble(
            template, init, art, hit, machine, opts, mode, cache, compile, plan, shard,
        ))
    }

    /// Open a session from an artifact the caller already fetched from
    /// the *same* schedule cache for `(template, init)` — the service
    /// uses this to compile outside its state lock, then place the
    /// session under it.
    #[allow(clippy::too_many_arguments)]
    pub fn with_artifact(
        template: Arc<ParamGraph>,
        init: &Valuation,
        art: Arc<CompiledGraph>,
        cache_hit: bool,
        machine: Arc<Machine>,
        opts: SimdizeOptions,
        mode: ExecMode,
        cache: Arc<Mutex<ScheduleCache>>,
        compile: CompileFn,
        plan: FaultPlan,
        shard: u32,
    ) -> DynamicSession {
        DynamicSession::assemble(
            template, init, art, cache_hit, machine, opts, mode, cache, compile, plan, shard,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        template: Arc<ParamGraph>,
        init: &Valuation,
        art: Arc<CompiledGraph>,
        hit: bool,
        machine: Arc<Machine>,
        opts: SimdizeOptions,
        mode: ExecMode,
        cache: Arc<Mutex<ScheduleCache>>,
        compile: CompileFn,
        plan: FaultPlan,
        shard: u32,
    ) -> DynamicSession {
        let engine = SessionEngine::new(
            art.graph.clone(),
            art.schedule.clone(),
            machine.clone(),
            &art.programs,
            plan.clone(),
            shard,
        );
        let sinks = engine.sink_ids().len();
        DynamicSession {
            template,
            machine,
            opts,
            mode,
            cache,
            compile,
            plan,
            shard,
            engine,
            art,
            current: init.clone(),
            boundaries: VecDeque::new(),
            iters_total: 0,
            firings_base: 0,
            swaps: 0,
            last_hit: hit,
            swap_failure: None,
            held_outputs: vec![Vec::new(); sinks],
            trace: WorkerTrace::disabled(),
        }
    }

    /// The template this session parameterizes.
    pub fn template(&self) -> &ParamGraph {
        &self.template
    }

    /// The configuration currently installed.
    pub fn current(&self) -> &Valuation {
        &self.current
    }

    /// The compiled artifact of the current configuration.
    pub fn artifact(&self) -> &Arc<CompiledGraph> {
        &self.art
    }

    /// Whether the latest configuration install hit the schedule cache.
    pub fn last_cache_hit(&self) -> bool {
        self.last_hit
    }

    /// Swaps applied so far (excludes the initial install).
    pub fn reconfigurations(&self) -> u64 {
        self.swaps
    }

    /// Number of sink rows [`DynamicSession::take_outputs`] returns —
    /// constant across configurations (validation enforces it).
    pub fn sink_count(&self) -> usize {
        self.held_outputs.len()
    }

    /// Steady iterations completed across every configuration.
    pub fn iters_done(&self) -> u64 {
        self.iters_total
    }

    /// Clean firings completed across every configuration.
    pub fn firings(&self) -> u64 {
        self.firings_base + self.engine.firings()
    }

    /// True once a stage fault or a failed swap quarantined the session.
    pub fn is_faulted(&self) -> bool {
        self.swap_failure.is_some() || self.engine.is_faulted()
    }

    /// Rendered failures: stage failures of the current engine plus any
    /// swap failure.
    pub fn failures_rendered(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .engine
            .failures()
            .iter()
            .map(|f| f.to_string())
            .collect();
        if let Some(e) = &self.swap_failure {
            out.push(format!("configuration swap failed: {e}"));
        }
        out
    }

    /// Install a recording handle; re-installed on every engine the
    /// session builds across swaps.
    pub fn set_trace(&mut self, trace: WorkerTrace) {
        #[allow(clippy::clone_on_copy)]
        self.engine.set_trace(trace.clone());
        self.trace = trace;
    }

    /// Schedule a parameter change to take effect at the quiescent point
    /// *before* steady iteration `at_iter` (absolute, across the whole
    /// session). Changes scheduled at the same boundary coalesce into
    /// one swap; a boundary earlier than one already scheduled (or
    /// already executed) is refused. Scheduling is always a
    /// reconfiguration event, even when the value equals the current one
    /// — the swap still runs (and hits the cache), which keeps the
    /// protocol uniform and testable.
    ///
    /// # Errors
    /// [`PdfError::Param`] when the resulting valuation leaves the
    /// domain, [`PdfError::Boundary`] for out-of-order boundaries.
    pub fn set_param_at(&mut self, at_iter: u64, name: &str, value: u64) -> Result<(), PdfError> {
        if at_iter < self.iters_total {
            return Err(PdfError::Boundary(format!(
                "iteration {at_iter} already executed ({} done)",
                self.iters_total
            )));
        }
        if let Some((last, _)) = self.boundaries.back() {
            if at_iter < *last {
                return Err(PdfError::Boundary(format!(
                    "iteration {at_iter} precedes an already scheduled boundary at {last}"
                )));
            }
        }
        let base = self
            .boundaries
            .back()
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| self.current.clone());
        let target = base.with(name, value);
        self.template.domain().check(&target)?;
        match self.boundaries.back_mut() {
            Some((last, v)) if *last == at_iter => *v = target,
            _ => self.boundaries.push_back((at_iter, target)),
        }
        self.trace.record(EventKind::SetParam, 0, value);
        Ok(())
    }

    /// Schedule a parameter change at the current boundary (standalone
    /// drivers alternating `run_steady` and `set_param`).
    ///
    /// # Errors
    /// See [`DynamicSession::set_param_at`].
    pub fn set_param(&mut self, name: &str, value: u64) -> Result<(), PdfError> {
        let at = self
            .boundaries
            .back()
            .map(|(i, _)| *i)
            .unwrap_or(self.iters_total)
            .max(self.iters_total);
        self.set_param_at(at, name, value)
    }

    /// Move sink values produced so far out of the engine into the held
    /// buffer (so a swap never loses the old configuration's tail).
    fn hold_outputs(&mut self) {
        for (row, fresh) in self.held_outputs.iter_mut().zip(self.engine.take_outputs()) {
            row.extend(fresh);
        }
    }

    /// Swap to `target` now. Caller guarantees the engine sits at a
    /// steady-iteration boundary.
    fn apply_swap(&mut self, target: Valuation) -> Result<(), PdfError> {
        // A fresh session may not have initialized yet; the carrier
        // requires it (and init is itself a quiescent point).
        if self.engine.run_init() == SessionStatus::Faulted {
            return Err(PdfError::Swap(
                "session faulted during initialization".into(),
            ));
        }
        self.hold_outputs();
        let carrier = self.engine.export_carrier().map_err(PdfError::Swap)?;
        let graph = self.template.instantiate(&target)?;
        let (art, hit) = {
            let mut c = self.cache.lock().unwrap();
            let (machine, opts, mode) = (&self.machine, &self.opts, self.mode);
            let compile = &self.compile;
            c.get_or_compile(&graph, &target, machine, opts, mode, |g| {
                compile(g, machine, opts, mode)
            })?
        };
        let engine = SessionEngine::resume(
            art.graph.clone(),
            art.schedule.clone(),
            self.machine.clone(),
            &art.programs,
            self.plan.clone(),
            self.shard,
            &carrier,
        )
        .map_err(PdfError::Swap)?;
        self.firings_base += self.engine.firings();
        self.engine = engine;
        #[allow(clippy::clone_on_copy)]
        self.engine.set_trace(self.trace.clone());
        self.art = art;
        self.current = target;
        self.last_hit = hit;
        self.swaps += 1;
        self.trace
            .record(EventKind::Reconfigure, hit as u32, self.swaps);
        Ok(())
    }

    /// Run up to `iters` steady iterations, splitting the slice at every
    /// scheduled parameter boundary and swapping configurations there.
    /// Returns [`SessionStatus::Faulted`] on the first stage fault or
    /// failed swap (the session is then permanently quarantined).
    pub fn run_steady(&mut self, iters: u64) -> SessionStatus {
        if self.is_faulted() {
            return SessionStatus::Faulted;
        }
        let mut left = iters;
        loop {
            while let Some((at, _)) = self.boundaries.front() {
                if *at > self.iters_total {
                    break;
                }
                let (_, target) = self.boundaries.pop_front().expect("front exists");
                if let Err(e) = self.apply_swap(target) {
                    self.swap_failure = Some(e.to_string());
                    return SessionStatus::Faulted;
                }
            }
            if left == 0 {
                return SessionStatus::Running;
            }
            let until = self
                .boundaries
                .front()
                .map(|(at, _)| at - self.iters_total)
                .unwrap_or(u64::MAX);
            let n = left.min(until);
            let before = self.engine.iters_done();
            let status = self.engine.run_steady(n);
            self.iters_total += self.engine.iters_done() - before;
            if status == SessionStatus::Faulted {
                return SessionStatus::Faulted;
            }
            left -= n;
        }
    }

    /// Drain everything the sinks produced since the last call — held
    /// outputs from retired configurations first, then the live
    /// engine's, one row per sink.
    pub fn take_outputs(&mut self) -> Vec<Vec<Value>> {
        self.hold_outputs();
        self.held_outputs.iter_mut().map(std::mem::take).collect()
    }
}
