//! Compare a freshly produced `BENCH_*.json` against a committed baseline
//! and fail on regressions — the CI perf gate.
//!
//! Usage:
//! `compare_reports [--tolerance 0.15] [--include-time] <baseline.json> <current.json>`
//!
//! Metric keys are classified by name:
//!
//! - **absolute-time metrics** (`*ns*`, `*nanos*`, `*wall*`, `*_ms*`) are
//!   machine-dependent and skipped unless `--include-time` is passed;
//! - **higher-is-better metrics** (`*speedup*`, `*improvement*`,
//!   `*throughput*`) regress when `current < baseline * (1 - tolerance)`;
//! - everything else (modelled cycles, cost-model numbers) is
//!   lower-is-better and regresses when
//!   `current > baseline * (1 + tolerance)`;
//! - **counters** are exact event counts and must match the baseline
//!   bit-for-bit, except noisy ones (`*stall*`, `*nanos*`) which are
//!   skipped;
//! - rows flagged `"baseline": true` in *either* report are the reference
//!   other rows divide by, so their higher-is-better metrics are
//!   self-ratios (identically 1) and are never gated on.
//!
//! On failure a delta table of every compared key is printed so the
//! regression is readable straight from the CI log.

use macross_telemetry::json::{self, Json};
use macross_telemetry::report;
use std::process::ExitCode;

fn is_time_metric(key: &str) -> bool {
    ["ns", "nanos", "wall", "_ms"]
        .iter()
        .any(|p| key.contains(p))
}

fn higher_is_better(key: &str) -> bool {
    ["speedup", "improvement", "throughput"]
        .iter()
        .any(|p| key.contains(p))
}

fn is_noisy_counter(key: &str) -> bool {
    key.contains("stall") || key.contains("nanos")
}

struct Line {
    key: String,
    base: String,
    cur: String,
    delta: String,
    status: &'static str,
    failed: bool,
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: read failed: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(v) = report::check(&doc).first() {
        return Err(format!("{path}: not a valid report: {v}"));
    }
    Ok(doc)
}

fn rows(doc: &Json) -> Vec<(&str, &Json)> {
    doc.get("rows")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|r| r.get("benchmark").and_then(Json::as_str).map(|b| (b, r)))
        .collect()
}

fn entries<'a>(row: &'a Json, section: &str) -> Vec<(&'a str, f64)> {
    row.get(section)
        .and_then(Json::as_obj)
        .unwrap_or(&[])
        .iter()
        .filter_map(|(k, v)| v.as_num().map(|n| (k.as_str(), n)))
        .collect()
}

fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{n:.0}")
    } else {
        format!("{n:.3}")
    }
}

fn compare_metric(key: String, base: f64, cur: f64, tolerance: f64) -> Line {
    let delta_pct = if base != 0.0 {
        (cur - base) / base * 100.0
    } else if cur == 0.0 {
        0.0
    } else {
        f64::INFINITY
    };
    let regressed = if higher_is_better(&key) {
        cur < base * (1.0 - tolerance)
    } else {
        cur > base * (1.0 + tolerance)
    };
    let improved = if higher_is_better(&key) {
        cur > base * (1.0 + tolerance)
    } else {
        cur < base * (1.0 - tolerance)
    };
    Line {
        key,
        base: fmt_num(base),
        cur: fmt_num(cur),
        delta: format!("{delta_pct:+.1}%"),
        status: if regressed {
            "REGRESSED"
        } else if improved {
            "improved"
        } else {
            "ok"
        },
        failed: regressed,
    }
}

fn print_table(lines: &[Line]) {
    let w = |f: fn(&Line) -> usize, min: usize| lines.iter().map(f).max().unwrap_or(0).max(min);
    let kw = w(|l| l.key.len(), 3);
    let bw = w(|l| l.base.len(), 8);
    let cw = w(|l| l.cur.len(), 7);
    let dw = w(|l| l.delta.len(), 5);
    println!(
        "{:kw$}  {:>bw$}  {:>cw$}  {:>dw$}  status",
        "key", "baseline", "current", "delta"
    );
    for l in lines {
        println!(
            "{:kw$}  {:>bw$}  {:>cw$}  {:>dw$}  {}",
            l.key, l.base, l.cur, l.delta, l.status
        );
    }
}

fn main() -> ExitCode {
    let mut tolerance = 0.15f64;
    let mut include_time = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance needs a non-negative number");
                    return ExitCode::from(2);
                }
            },
            "--include-time" => include_time = true,
            _ => paths.push(arg),
        }
    }
    let [baseline_path, current_path] = &paths[..] else {
        eprintln!(
            "usage: compare_reports [--tolerance 0.15] [--include-time] <baseline.json> <current.json>"
        );
        return ExitCode::from(2);
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("{e}");
                }
            }
            return ExitCode::from(2);
        }
    };

    let cur_rows = rows(&current);
    let mut lines: Vec<Line> = Vec::new();
    let mut failures = 0usize;
    let mut skipped = 0usize;
    for (bench, base_row) in rows(&baseline) {
        let Some((_, cur_row)) = cur_rows.iter().find(|(b, _)| *b == bench) else {
            lines.push(Line {
                key: bench.to_string(),
                base: "-".into(),
                cur: "-".into(),
                delta: "-".into(),
                status: "ROW MISSING",
                failed: true,
            });
            failures += 1;
            continue;
        };
        let is_baseline_row = [base_row, cur_row]
            .iter()
            .any(|r| r.get("baseline").and_then(Json::as_bool) == Some(true));
        for (key, base_val) in entries(base_row, "metrics") {
            let full = format!("{bench}/{key}");
            if is_time_metric(key) && !include_time {
                skipped += 1;
                continue;
            }
            if is_baseline_row && higher_is_better(key) {
                // A baseline row's ratio metrics divide by themselves:
                // gating on them would always pass (or spuriously fail on
                // a missing key) while implying coverage that isn't there.
                skipped += 1;
                continue;
            }
            let line = match entries(cur_row, "metrics").iter().find(|(k, _)| *k == key) {
                Some(&(_, cur_val)) => compare_metric(full, base_val, cur_val, tolerance),
                None => Line {
                    key: full,
                    base: fmt_num(base_val),
                    cur: "-".into(),
                    delta: "-".into(),
                    status: "METRIC MISSING",
                    failed: true,
                },
            };
            failures += line.failed as usize;
            lines.push(line);
        }
        for (key, base_val) in entries(base_row, "counters") {
            let full = format!("{bench}/{key}");
            if is_noisy_counter(key) {
                skipped += 1;
                continue;
            }
            let (cur, delta, status, failed) =
                match entries(cur_row, "counters").iter().find(|(k, _)| *k == key) {
                    Some(&(_, cur_val)) if cur_val == base_val => {
                        (fmt_num(cur_val), "=".to_string(), "ok", false)
                    }
                    Some(&(_, cur_val)) => (
                        fmt_num(cur_val),
                        format!("{:+}", cur_val - base_val),
                        "MISMATCH",
                        true,
                    ),
                    None => ("-".into(), "-".into(), "COUNTER MISSING", true),
                };
            failures += failed as usize;
            lines.push(Line {
                key: full,
                base: fmt_num(base_val),
                cur,
                delta,
                status,
                failed,
            });
        }
    }

    print_table(&lines);
    println!(
        "compared {} key(s), skipped {} machine-dependent, tolerance ±{:.0}%",
        lines.len(),
        skipped,
        tolerance * 100.0
    );
    if failures > 0 {
        println!("FAIL: {failures} regression(s) against {baseline_path}");
        ExitCode::FAILURE
    } else {
        println!("PASS: no regressions against {baseline_path}");
        ExitCode::SUCCESS
    }
}
