//! Validate `BENCH_*.json` / `SERVICE_*.json` files against the
//! telemetry report schemas.
//!
//! Usage: `validate_report [--errors-only] <file.json>...` — prints one
//! line per violation (with the offending key path) and per warning, and
//! exits non-zero if any file fails to parse, violates the schema, or
//! triggers a warning. `--errors-only` downgrades warnings to informative
//! output. CI runs this on the reports a benchmark or soak run emitted.
//!
//! The validator is picked per document: files declaring
//! `"schema": "macross-service-v2"` go through [`service`], everything
//! else through the bench [`report`] checker.

use macross_telemetry::json;
use macross_telemetry::report;
use macross_telemetry::report::Violation;
use macross_telemetry::service;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut errors_only = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--errors-only" => errors_only = true,
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: validate_report [--errors-only] <BENCH_*.json | SERVICE_*.json>...");
        return ExitCode::from(2);
    }
    let mut bad_files = 0usize;
    for path in &paths {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| format!("read failed: {e}"))
            .and_then(|s| json::parse(&s));
        let doc = match doc {
            Ok(doc) => doc,
            Err(e) => {
                println!("{path}: INVALID — {e}");
                bad_files += 1;
                continue;
            }
        };
        let (violations, warnings): (Vec<Violation>, Vec<Violation>) =
            if service::is_service_report(&doc) {
                (service::check(&doc), service::warnings(&doc))
            } else {
                (report::check(&doc), report::warnings(&doc))
            };
        for v in &violations {
            println!("{path}: error: {v}");
        }
        for w in &warnings {
            println!("{path}: warning: {w}");
        }
        if !violations.is_empty() || (!errors_only && !warnings.is_empty()) {
            println!(
                "{path}: INVALID — {} violation(s), {} warning(s)",
                violations.len(),
                warnings.len()
            );
            bad_files += 1;
        } else {
            println!("{path}: OK");
        }
    }
    if bad_files > 0 {
        eprintln!("{bad_files} of {} report(s) invalid", paths.len());
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
