//! Validate `BENCH_*.json` files against the telemetry report schema.
//!
//! Usage: `validate_report <file.json>...` — prints one line per file and
//! exits non-zero if any file fails to parse or violates the schema. CI
//! runs this on the reports a benchmark run emitted.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_report <BENCH_*.json>...");
        return ExitCode::from(2);
    }
    let mut failures = 0usize;
    for path in &paths {
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| format!("read failed: {e}"))
            .and_then(|s| macross_telemetry::report::validate_str(&s));
        match verdict {
            Ok(()) => println!("{path}: OK"),
            Err(e) => {
                println!("{path}: INVALID — {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} of {} report(s) invalid", paths.len());
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
