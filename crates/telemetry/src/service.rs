//! The stable `SERVICE_<name>.json` schema the streaming service emits,
//! plus a validator so CI can gate on well-formed reports — the service
//! sibling of [`crate::report`]'s bench schema.
//!
//! Schema (`macross-service-v2`):
//!
//! ```json
//! {
//!   "schema": "macross-service-v2",
//!   "name": "soak_bytecode",           // -> SERVICE_soak_bytecode.json
//!   "machine": "core_i7_sse4",
//!   "exec_mode": "bytecode",
//!   "created_unix_ms": 1754000000000,
//!   "workers": 4,                      // shard threads in the pool
//!   "session_cap": 64,                 // admission cap
//!   "cache": {
//!     "capacity": 32,                  // LRU bound (entries)
//!     "distinct_graphs": 14,           // structural hashes ever seen
//!     "submits": 64,                   // lookups offered to the cache
//!     "compilations": 14,              // driver+firing-compiler runs
//!     "hits": 50,
//!     "misses": 14,
//!     "evictions": 0,
//!     "hit_rate": 0.781                // hits / (hits + misses)
//!   },
//!   "scache": {
//!     "capacity": 32,                  // LRU bound (configurations)
//!     "distinct_valuations": 5,        // (shape, valuation) pairs seen
//!     "reconfigurations": 18,          // configuration installs
//!     "hits": 13,
//!     "misses": 5,
//!     "evictions": 0
//!   },
//!   "admission": {
//!     "submitted": 72,
//!     "admitted": 64,
//!     "rejected_sessions": 8,          // Overloaded at submit
//!     "rejected_feeds": 3,             // Overloaded at feed
//!     "backpressure_stalls": 5,        // slices deferred on full buffers
//!     "drained_on_shutdown": 10        // sessions finished by shutdown
//!   },
//!   "tenants": [
//!     {
//!       "session": 0,
//!       "benchmark": "FMRadio",
//!       "shard": 1,
//!       "graph_hash": "0123456789abcdef0123456789abcdef",
//!       "cache_hit": true,
//!       "state": "closed",             // active|draining|faulted|closed
//!       "iters_requested": 8,
//!       "iters_done": 8,
//!       "firings": 1234,
//!       "outputs": 512,                // sink values delivered
//!       "stalls": 0,                   // backpressure deferrals
//!       "faults": 0,                   // failures recorded
//!       "placement_cores": 2,          // cores the planner chose
//!       "placement_cut_edges": 1,      // edges crossing a core boundary
//!       "placement_fused": 3,          // multi-stage fused groups
//!       "placement_fissioned": 0       // fission replicas (0 = none)
//!     }
//!   ]
//! }
//! ```
//!
//! Beyond field shapes, the validator enforces the compile-once
//! invariants the soak job gates on: `hits + misses == submits`,
//! `misses == compilations`, `compilations >= distinct_graphs`, and —
//! when nothing was ever evicted — `compilations == distinct_graphs`
//! (each unique shape compiled exactly once, however many sessions ran
//! it). The schedule cache carries the dynamic-rate analogues:
//! `hits + misses == reconfigurations`, `misses >= distinct_valuations`,
//! and at zero evictions `misses == distinct_valuations` (each distinct
//! parameter valuation compiled exactly once, however often sessions
//! revisited it).

use crate::json::{self, Json};
use crate::report::Violation;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// The schema identifier carried in the `schema` field.
pub const SERVICE_SCHEMA: &str = "macross-service-v2";

/// Tenant lifecycle states a report may record.
pub const TENANT_STATES: [&str; 4] = ["active", "draining", "faulted", "closed"];

/// Compile-once cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// LRU bound, in entries.
    pub capacity: u64,
    /// Distinct structural hashes ever requested.
    pub distinct_graphs: u64,
    /// Lookups offered to the cache (`hits + misses`).
    pub submits: u64,
    /// Times the SIMDization driver + firing compiler actually ran.
    pub compilations: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, 0.0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-configuration schedule-cache statistics (the dynamic-rate layer's
/// cache; all zeros when no parameterized session ever ran).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleCacheStats {
    /// LRU bound, in configurations.
    pub capacity: u64,
    /// Distinct `(shape, valuation)` pairs ever installed.
    pub distinct_valuations: u64,
    /// Configuration installs (initial admissions plus swaps).
    pub reconfigurations: u64,
    /// Installs served from the cache.
    pub hits: u64,
    /// Installs that had to compile.
    pub misses: u64,
    /// Configurations displaced by the LRU bound.
    pub evictions: u64,
}

/// Admission-control counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Sessions offered via `submit`.
    pub submitted: u64,
    /// Sessions admitted (submitted - rejected_sessions).
    pub admitted: u64,
    /// Submissions rejected with `Overloaded`.
    pub rejected_sessions: u64,
    /// Feed calls rejected with `Overloaded` (input queue full).
    pub rejected_feeds: u64,
    /// Work slices deferred because a tenant's output buffer was full.
    pub backpressure_stalls: u64,
    /// Admitted sessions whose remaining work the shutdown drain ran.
    pub drained_on_shutdown: u64,
}

/// One tenant's row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantRow {
    /// Session id.
    pub session: u64,
    /// What graph the tenant ran (benchmark or caller-supplied tag).
    pub benchmark: String,
    /// Shard thread the session was placed on.
    pub shard: u64,
    /// Structural hash of the submitted graph (32 hex digits).
    pub graph_hash: String,
    /// Whether admission hit the compile-once cache.
    pub cache_hit: bool,
    /// Lifecycle state at report time (see [`TENANT_STATES`]).
    pub state: String,
    /// Steady iterations requested via `feed`.
    pub iters_requested: u64,
    /// Steady iterations completed.
    pub iters_done: u64,
    /// Clean firings executed.
    pub firings: u64,
    /// Sink values delivered.
    pub outputs: u64,
    /// Backpressure deferrals of this tenant's slices.
    pub stalls: u64,
    /// Stage failures recorded (0 or small; >0 implies `faulted`).
    pub faults: u64,
    /// Cores the cost-model planner chose for this graph (1 = collapsed
    /// to sequential).
    pub placement_cores: u64,
    /// Edges that cross a core boundary under the chosen placement.
    pub placement_cut_edges: u64,
    /// Fused groups — clusters holding two or more stages on one core.
    pub placement_fused: u64,
    /// Replica count of the fissioned stage (0 when no stage is split).
    pub placement_fissioned: u64,
}

/// A machine-readable service report, written as `SERVICE_<name>.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceReport {
    /// Report name; determines the file name.
    pub name: String,
    /// Machine description sessions ran against.
    pub machine: String,
    /// Work-function engine (`"bytecode"` / `"treewalk"` / ...).
    pub exec_mode: String,
    /// Wall-clock creation time (Unix milliseconds).
    pub created_unix_ms: u64,
    /// Shard threads in the worker pool.
    pub workers: u64,
    /// Concurrent-session admission cap.
    pub session_cap: u64,
    /// Compile-once cache statistics.
    pub cache: CacheStats,
    /// Per-configuration schedule-cache statistics.
    pub scache: ScheduleCacheStats,
    /// Admission-control counters.
    pub admission: AdmissionStats,
    /// One row per session ever admitted.
    pub tenants: Vec<TenantRow>,
}

impl ServiceReport {
    /// A report stamped with the current wall-clock time.
    pub fn new(
        name: impl Into<String>,
        machine: impl Into<String>,
        exec_mode: impl Into<String>,
    ) -> ServiceReport {
        ServiceReport {
            name: name.into(),
            machine: machine.into(),
            exec_mode: exec_mode.into(),
            created_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            ..ServiceReport::default()
        }
    }

    /// The canonical file name: `SERVICE_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("SERVICE_{}.json", self.name)
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                Json::obj([
                    ("session", Json::Num(t.session as f64)),
                    ("benchmark", Json::Str(t.benchmark.clone())),
                    ("shard", Json::Num(t.shard as f64)),
                    ("graph_hash", Json::Str(t.graph_hash.clone())),
                    ("cache_hit", Json::Bool(t.cache_hit)),
                    ("state", Json::Str(t.state.clone())),
                    ("iters_requested", Json::Num(t.iters_requested as f64)),
                    ("iters_done", Json::Num(t.iters_done as f64)),
                    ("firings", Json::Num(t.firings as f64)),
                    ("outputs", Json::Num(t.outputs as f64)),
                    ("stalls", Json::Num(t.stalls as f64)),
                    ("faults", Json::Num(t.faults as f64)),
                    ("placement_cores", Json::Num(t.placement_cores as f64)),
                    (
                        "placement_cut_edges",
                        Json::Num(t.placement_cut_edges as f64),
                    ),
                    ("placement_fused", Json::Num(t.placement_fused as f64)),
                    (
                        "placement_fissioned",
                        Json::Num(t.placement_fissioned as f64),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::Str(SERVICE_SCHEMA.into())),
            ("name", Json::Str(self.name.clone())),
            ("machine", Json::Str(self.machine.clone())),
            ("exec_mode", Json::Str(self.exec_mode.clone())),
            ("created_unix_ms", Json::Num(self.created_unix_ms as f64)),
            ("workers", Json::Num(self.workers as f64)),
            ("session_cap", Json::Num(self.session_cap as f64)),
            (
                "cache",
                Json::obj([
                    ("capacity", Json::Num(self.cache.capacity as f64)),
                    (
                        "distinct_graphs",
                        Json::Num(self.cache.distinct_graphs as f64),
                    ),
                    ("submits", Json::Num(self.cache.submits as f64)),
                    ("compilations", Json::Num(self.cache.compilations as f64)),
                    ("hits", Json::Num(self.cache.hits as f64)),
                    ("misses", Json::Num(self.cache.misses as f64)),
                    ("evictions", Json::Num(self.cache.evictions as f64)),
                    ("hit_rate", Json::Num(self.cache.hit_rate())),
                ]),
            ),
            (
                "scache",
                Json::obj([
                    ("capacity", Json::Num(self.scache.capacity as f64)),
                    (
                        "distinct_valuations",
                        Json::Num(self.scache.distinct_valuations as f64),
                    ),
                    (
                        "reconfigurations",
                        Json::Num(self.scache.reconfigurations as f64),
                    ),
                    ("hits", Json::Num(self.scache.hits as f64)),
                    ("misses", Json::Num(self.scache.misses as f64)),
                    ("evictions", Json::Num(self.scache.evictions as f64)),
                ]),
            ),
            (
                "admission",
                Json::obj([
                    ("submitted", Json::Num(self.admission.submitted as f64)),
                    ("admitted", Json::Num(self.admission.admitted as f64)),
                    (
                        "rejected_sessions",
                        Json::Num(self.admission.rejected_sessions as f64),
                    ),
                    (
                        "rejected_feeds",
                        Json::Num(self.admission.rejected_feeds as f64),
                    ),
                    (
                        "backpressure_stalls",
                        Json::Num(self.admission.backpressure_stalls as f64),
                    ),
                    (
                        "drained_on_shutdown",
                        Json::Num(self.admission.drained_on_shutdown as f64),
                    ),
                ]),
            ),
            ("tenants", Json::Arr(tenants)),
        ])
    }

    /// Pretty-printed JSON document.
    pub fn json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Write `SERVICE_<name>.json` into `dir` (created if missing) and
    /// return the path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.json_string())?;
        Ok(path)
    }
}

/// True when a parsed document declares the service schema — the
/// dispatch test `validate_report` uses to pick a validator.
pub fn is_service_report(doc: &Json) -> bool {
    doc.get("schema").and_then(Json::as_str) == Some(SERVICE_SCHEMA)
}

struct Checker(Vec<Violation>);

impl Checker {
    fn push(&mut self, path: impl Into<String>, message: impl Into<String>) {
        self.0.push(Violation {
            path: path.into(),
            message: message.into(),
        });
    }

    /// Require `obj[key]` to exist and parse through `get`; on success run
    /// `then` against the extracted value.
    fn field<'a, T>(
        &mut self,
        obj: &'a Json,
        path: &str,
        kind: &str,
        get: impl Fn(&'a Json) -> Option<T>,
        then: impl FnOnce(&mut Checker, T),
    ) {
        let key = path.rsplit('.').next().unwrap_or(path);
        match obj.get(key) {
            None => self.push(path, "missing required field"),
            Some(v) => match get(v) {
                None => self.push(path, format!("must be {kind}")),
                Some(t) => then(self, t),
            },
        }
    }

    fn uint_field(&mut self, obj: &Json, path: &str) -> Option<u64> {
        let mut out = None;
        self.field(obj, path, "a non-negative integer", get_uint, |_, n| {
            out = Some(n as u64);
        });
        out
    }
}

fn get_uint(v: &Json) -> Option<f64> {
    v.as_num().filter(|n| *n >= 0.0 && n.fract() == 0.0)
}

/// Check a parsed document against `macross-service-v2`, collecting
/// **every** violation instead of stopping at the first, exactly like the
/// bench validator.
pub fn check(doc: &Json) -> Vec<Violation> {
    let mut c = Checker(Vec::new());
    if doc.as_obj().is_none() {
        c.push("$", "report must be a JSON object");
        return c.0;
    }
    c.field(doc, "schema", "a string", Json::as_str, |c, s| {
        if s != SERVICE_SCHEMA {
            c.push(
                "schema",
                format!("unsupported schema {s:?} (expected {SERVICE_SCHEMA:?})"),
            );
        }
    });
    c.field(doc, "name", "a string", Json::as_str, |c, s| {
        if s.is_empty() {
            c.push("name", "must be non-empty");
        }
    });
    c.field(doc, "machine", "a string", Json::as_str, |_, _| {});
    c.field(doc, "exec_mode", "a string", Json::as_str, |c, s| {
        if s.is_empty() {
            c.push("exec_mode", "must be non-empty");
        }
    });
    c.uint_field(doc, "created_unix_ms");
    if let Some(w) = c.uint_field(doc, "workers") {
        if w == 0 {
            c.push("workers", "must be >= 1");
        }
    }
    c.uint_field(doc, "session_cap");
    c.field(doc, "cache", "an object", Json::as_obj, |_, _| {});
    if doc.get("cache").is_some_and(|v| v.as_obj().is_some()) {
        check_cache(&mut c, doc.get("cache").unwrap());
    }
    c.field(doc, "scache", "an object", Json::as_obj, |_, _| {});
    if doc.get("scache").is_some_and(|v| v.as_obj().is_some()) {
        check_scache(&mut c, doc.get("scache").unwrap());
    }
    c.field(doc, "admission", "an object", Json::as_obj, |_, _| {});
    if doc.get("admission").is_some_and(|v| v.as_obj().is_some()) {
        check_admission(&mut c, doc.get("admission").unwrap());
    }
    c.field(doc, "tenants", "an array", Json::as_arr, |c, tenants| {
        for (i, t) in tenants.iter().enumerate() {
            check_tenant(c, t, i);
        }
    });
    c.0
}

fn check_cache(c: &mut Checker, cache: &Json) {
    c.uint_field(cache, "cache.capacity");
    let distinct = c.uint_field(cache, "cache.distinct_graphs");
    let submits = c.uint_field(cache, "cache.submits");
    let compilations = c.uint_field(cache, "cache.compilations");
    let hits = c.uint_field(cache, "cache.hits");
    let misses = c.uint_field(cache, "cache.misses");
    let evictions = c.uint_field(cache, "cache.evictions");
    if let (Some(s), Some(h), Some(m)) = (submits, hits, misses) {
        if h + m != s {
            c.push(
                "cache.submits",
                format!("hits + misses must equal submits ({h} + {m} != {s})"),
            );
        }
    }
    c.field(
        cache,
        "cache.hit_rate",
        "a finite number",
        Json::as_num,
        |c, r| {
            if !(0.0..=1.0).contains(&r) {
                c.push("cache.hit_rate", "must be within [0, 1]");
            }
        },
    );
    // The compile-once invariants the soak gate relies on.
    if let (Some(m), Some(comp)) = (misses, compilations) {
        if m != comp {
            c.push(
                "cache.compilations",
                format!("must equal misses (compilations {comp}, misses {m})"),
            );
        }
    }
    if let (Some(d), Some(comp), Some(ev)) = (distinct, compilations, evictions) {
        if comp < d {
            c.push(
                "cache.compilations",
                format!("must be >= distinct_graphs (compilations {comp}, distinct {d})"),
            );
        }
        if ev == 0 && comp != d {
            c.push(
                "cache.compilations",
                format!(
                    "with zero evictions each unique graph must compile exactly once \
                     (compilations {comp}, distinct_graphs {d})"
                ),
            );
        }
    }
    if let (Some(h), Some(m)) = (hits, misses) {
        if let Some(rate) = cache.get("hit_rate").and_then(Json::as_num) {
            let total = h + m;
            let expect = if total == 0 {
                0.0
            } else {
                h as f64 / total as f64
            };
            if (rate - expect).abs() > 1e-6 {
                c.push(
                    "cache.hit_rate",
                    format!("inconsistent with hits/misses (expected ~{expect:.6}, found {rate})"),
                );
            }
        }
    }
}

fn check_scache(c: &mut Checker, scache: &Json) {
    c.uint_field(scache, "scache.capacity");
    let distinct = c.uint_field(scache, "scache.distinct_valuations");
    let reconf = c.uint_field(scache, "scache.reconfigurations");
    let hits = c.uint_field(scache, "scache.hits");
    let misses = c.uint_field(scache, "scache.misses");
    let evictions = c.uint_field(scache, "scache.evictions");
    if let (Some(r), Some(h), Some(m)) = (reconf, hits, misses) {
        if h + m != r {
            c.push(
                "scache.reconfigurations",
                format!("hits + misses must equal reconfigurations ({h} + {m} != {r})"),
            );
        }
    }
    // The compile-once invariant of the dynamic-rate layer: revisiting a
    // valuation must hit, so misses count distinct valuations exactly
    // (unless eviction forced a reinstall).
    if let (Some(d), Some(m), Some(ev)) = (distinct, misses, evictions) {
        if m < d {
            c.push(
                "scache.misses",
                format!("must be >= distinct_valuations (misses {m}, distinct {d})"),
            );
        }
        if ev == 0 && m != d {
            c.push(
                "scache.misses",
                format!(
                    "with zero evictions each distinct valuation must compile exactly once \
                     (misses {m}, distinct_valuations {d})"
                ),
            );
        }
    }
}

fn check_admission(c: &mut Checker, adm: &Json) {
    let submitted = c.uint_field(adm, "admission.submitted");
    let admitted = c.uint_field(adm, "admission.admitted");
    let rejected = c.uint_field(adm, "admission.rejected_sessions");
    c.uint_field(adm, "admission.rejected_feeds");
    c.uint_field(adm, "admission.backpressure_stalls");
    c.uint_field(adm, "admission.drained_on_shutdown");
    if let (Some(s), Some(a), Some(r)) = (submitted, admitted, rejected) {
        if a + r != s {
            c.push(
                "admission.submitted",
                format!("admitted + rejected_sessions must equal submitted ({a} + {r} != {s})"),
            );
        }
    }
}

fn check_tenant(c: &mut Checker, t: &Json, i: usize) {
    let what = format!("tenants[{i}]");
    if t.as_obj().is_none() {
        c.push(what, "must be an object");
        return;
    }
    c.uint_field(t, &format!("{what}.session"));
    c.field(
        t,
        &format!("{what}.benchmark"),
        "a string",
        Json::as_str,
        |c, s| {
            if s.is_empty() {
                c.push(format!("{what}.benchmark"), "must be non-empty");
            }
        },
    );
    c.uint_field(t, &format!("{what}.shard"));
    c.field(
        t,
        &format!("{what}.graph_hash"),
        "a string",
        Json::as_str,
        |c, s| {
            if s.len() != 32 || !s.chars().all(|ch| ch.is_ascii_hexdigit()) {
                c.push(
                    format!("{what}.graph_hash"),
                    "must be 32 lowercase hex digits",
                );
            }
        },
    );
    c.field(
        t,
        &format!("{what}.cache_hit"),
        "a boolean",
        |v| match v {
            Json::Bool(b) => Some(*b),
            _ => None,
        },
        |_, _| {},
    );
    c.field(
        t,
        &format!("{what}.state"),
        "a string",
        Json::as_str,
        |c, s| {
            if !TENANT_STATES.contains(&s) {
                c.push(
                    format!("{what}.state"),
                    format!("must be one of {TENANT_STATES:?}"),
                );
            }
        },
    );
    for key in [
        "iters_requested",
        "iters_done",
        "firings",
        "outputs",
        "stalls",
        "faults",
        "placement_cut_edges",
        "placement_fused",
        "placement_fissioned",
    ] {
        c.uint_field(t, &format!("{what}.{key}"));
    }
    if let Some(cores) = c.uint_field(t, &format!("{what}.placement_cores")) {
        if cores == 0 {
            c.push(
                format!("{what}.placement_cores"),
                "must be >= 1 (1 = collapsed to sequential)",
            );
        }
    }
}

/// Non-fatal observations: unknown top-level keys and a tenant list that
/// carries no sessions at all.
pub fn warnings(doc: &Json) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(fields) = doc.as_obj() else {
        return out;
    };
    const KNOWN: [&str; 10] = [
        "schema",
        "name",
        "machine",
        "exec_mode",
        "created_unix_ms",
        "workers",
        "session_cap",
        "cache",
        "scache",
        "admission",
    ];
    for (k, _) in fields {
        if !KNOWN.contains(&k.as_str()) && k != "tenants" {
            out.push(Violation {
                path: k.clone(),
                message: "unknown top-level field (not part of the schema)".into(),
            });
        }
    }
    if let Some(tenants) = doc.get("tenants").and_then(Json::as_arr) {
        if tenants.is_empty() {
            out.push(Violation {
                path: "tenants".into(),
                message: "report carries no sessions".into(),
            });
        }
    }
    out
}

/// Validate a parsed document against `macross-service-v2`.
///
/// # Errors
/// Returns the first violation (use [`check`] to collect all of them).
pub fn validate(doc: &Json) -> Result<(), String> {
    match check(doc).into_iter().next() {
        Some(v) => Err(v.to_string()),
        None => Ok(()),
    }
}

/// Parse and validate a service report in one call.
///
/// # Errors
/// Returns a parse error or the first schema violation.
pub fn validate_str(input: &str) -> Result<(), String> {
    validate(&json::parse(input)?)
}

/// Parse a document and collect every schema violation.
///
/// # Errors
/// Returns the parse error when the input is not JSON at all.
pub fn check_str(input: &str) -> Result<Vec<Violation>, String> {
    Ok(check(&json::parse(input)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceReport {
        let mut r = ServiceReport::new("soak_bytecode", "core_i7_sse4", "bytecode");
        r.workers = 4;
        r.session_cap = 64;
        r.cache = CacheStats {
            capacity: 32,
            distinct_graphs: 3,
            submits: 8,
            compilations: 3,
            hits: 5,
            misses: 3,
            evictions: 0,
        };
        r.scache = ScheduleCacheStats {
            capacity: 32,
            distinct_valuations: 2,
            reconfigurations: 6,
            hits: 4,
            misses: 2,
            evictions: 0,
        };
        r.admission = AdmissionStats {
            submitted: 10,
            admitted: 8,
            rejected_sessions: 2,
            rejected_feeds: 1,
            backpressure_stalls: 0,
            drained_on_shutdown: 4,
        };
        r.tenants.push(TenantRow {
            session: 0,
            benchmark: "FMRadio".into(),
            shard: 1,
            graph_hash: "0123456789abcdef0123456789abcdef".into(),
            cache_hit: true,
            state: "closed".into(),
            iters_requested: 8,
            iters_done: 8,
            firings: 100,
            outputs: 64,
            stalls: 0,
            faults: 0,
            placement_cores: 2,
            placement_cut_edges: 1,
            placement_fused: 3,
            placement_fissioned: 0,
        });
        r
    }

    #[test]
    fn emitted_report_validates() {
        validate_str(&sample().json_string()).unwrap();
    }

    #[test]
    fn file_name_is_canonical() {
        assert_eq!(sample().file_name(), "SERVICE_soak_bytecode.json");
    }

    #[test]
    fn dispatcher_recognizes_schema() {
        let doc = json::parse(&sample().json_string()).unwrap();
        assert!(is_service_report(&doc));
        let bench = json::parse(r#"{"schema_version":1}"#).unwrap();
        assert!(!is_service_report(&bench));
    }

    #[test]
    fn compile_once_invariant_is_enforced() {
        // 5 compilations for 3 distinct graphs with zero evictions: the
        // compile-once guarantee is broken and the validator says so.
        let mut r = sample();
        r.cache.compilations = 5;
        r.cache.misses = 5;
        r.cache.submits = 10;
        let errs = check(&r.to_json());
        assert!(
            errs.iter().any(|v| v.message.contains("exactly once")),
            "{errs:?}"
        );
        // With evictions, recompiles are legitimate.
        r.cache.evictions = 2;
        assert!(check(&r.to_json()).is_empty());
        // But never fewer compilations than distinct graphs.
        r.cache.compilations = 2;
        r.cache.misses = 2;
        assert!(check(&r.to_json())
            .iter()
            .any(|v| v.message.contains(">= distinct_graphs")));
    }

    #[test]
    fn schedule_cache_invariants_are_enforced() {
        // hits + misses must equal reconfigurations.
        let mut r = sample();
        r.scache.hits = 5; // 5 + 2 != 6
        assert!(check(&r.to_json())
            .iter()
            .any(|v| v.path == "scache.reconfigurations"));
        // A repeat valuation that recompiled without eviction breaks the
        // dynamic compile-once guarantee.
        let mut r = sample();
        r.scache.misses = 4;
        r.scache.hits = 2;
        let errs = check(&r.to_json());
        assert!(
            errs.iter().any(|v| v.message.contains("exactly once")),
            "{errs:?}"
        );
        // With evictions, reinstalls are legitimate.
        r.scache.evictions = 1;
        assert!(check(&r.to_json()).is_empty());
        // But never fewer misses than distinct valuations.
        r.scache.misses = 1;
        r.scache.hits = 5;
        assert!(check(&r.to_json())
            .iter()
            .any(|v| v.message.contains(">= distinct_valuations")));
    }

    #[test]
    fn admission_arithmetic_is_enforced() {
        let mut r = sample();
        r.admission.admitted = 9; // 9 + 2 != 10
        assert!(check(&r.to_json())
            .iter()
            .any(|v| v.path == "admission.submitted"));
    }

    #[test]
    fn validator_rejects_bad_shapes() {
        let cases = [
            ("[]", "object"),
            (r#"{"name":"x"}"#, "schema"),
            (
                &sample().json_string().replace(SERVICE_SCHEMA, "nope-v9"),
                "unsupported schema",
            ),
            (
                &sample()
                    .json_string()
                    .replace("0123456789abcdef0123456789abcdef", "xyz"),
                "hex",
            ),
            (
                &sample().json_string().replace("\"closed\"", "\"zombie\""),
                "state",
            ),
            (
                &sample()
                    .json_string()
                    .replace("\"hits\": 5", "\"hits\": -5"),
                "hits",
            ),
            (
                &sample()
                    .json_string()
                    .replace("\"placement_cores\": 2", "\"placement_cores\": 0"),
                "placement_cores",
            ),
        ];
        for (doc, needle) in cases {
            let err = validate_str(doc).unwrap_err();
            assert!(
                err.contains(needle),
                "error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn hit_rate_consistency_is_checked() {
        let s = sample().json_string().replace("0.625", "0.99");
        assert!(validate_str(&s).unwrap_err().contains("hit_rate"));
    }

    #[test]
    fn warnings_flag_unknown_keys_and_empty_tenants() {
        let mut r = sample();
        r.tenants.clear();
        let doc = json::parse(&r.json_string()).unwrap();
        assert!(warnings(&doc).iter().any(|w| w.path == "tenants"));
        let with_extra =
            json::parse(&r.json_string().replacen('{', "{\n  \"bogus\": 1,", 1)).unwrap();
        assert!(warnings(&with_extra).iter().any(|w| w.path == "bogus"));
    }
}
