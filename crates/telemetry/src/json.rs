//! Minimal JSON value, writer, and parser.
//!
//! The workspace deliberately has no external dependencies, so the
//! exporters ([`crate::chrome`], [`crate::report`]) build documents from
//! this small value type and the schema validator parses them back with
//! the recursive-descent parser below. Object keys keep insertion order
//! (a `Vec`, not a map) so emitted reports are stable and diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values serialize as `null` (JSON has no
    /// NaN/inf), mirroring what browsers' `JSON.stringify` does.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a finite `Num`.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation, for human-diffable reports.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry a byte offset and a short message.
///
/// # Errors
/// Returns a human-readable message on malformed input or trailing junk.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are replaced rather than paired:
                            // the reports never emit astral characters.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Json::obj([
            ("name", Json::Str("fig10".into())),
            ("n", Json::Num(3.0)),
            ("frac", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        let s = v.to_string_compact();
        assert_eq!(parse(&s).unwrap(), v);
        // Integers print without a decimal point.
        assert!(s.contains("\"n\":3"));
        assert!(s.contains("\"frac\":0.5"));
    }

    #[test]
    fn roundtrip_pretty() {
        let v = Json::obj([(
            "rows",
            Json::Arr(vec![Json::obj([("benchmark", Json::Str("DCT".into()))])]),
        )]);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"abc"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"a": 1, "b": "x", "c": [true]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some(1.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }
}
