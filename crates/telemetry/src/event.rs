//! The fixed-size trace event: what one worker records per interesting
//! moment. `Copy` and small so pushing one is a handful of stores.

/// What happened. Span kinds come in begin/end pairs which the Chrome
/// exporter folds into duration events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum EventKind {
    /// A node firing began (`subject` = node id).
    #[default]
    FiringStart,
    /// The firing completed (`subject` = node id, `aux` = modelled cycles
    /// charged to it, when the recorder knows them).
    FiringEnd,
    /// A producer found its cut-edge ring full and began waiting
    /// (`subject` = edge id).
    RingPushStallBegin,
    /// Space appeared; the producer resumed (`subject` = edge id).
    RingPushStallEnd,
    /// A consumer found its cut-edge ring empty and began waiting
    /// (`subject` = edge id).
    RingPopStallBegin,
    /// Tokens appeared; the consumer resumed (`subject` = edge id).
    RingPopStallEnd,
    /// The spin budget ran out and the thread parked (`subject` = edge id).
    Park,
    /// The thread came back from parking (`subject` = edge id).
    Unpark,
    /// A planned fault was injected (`subject` = node id, `aux` = firing
    /// index it was addressed to).
    FaultInjected,
    /// A stage failed and was reported to the supervisor (`subject` =
    /// node id, `aux` = firing index).
    StageFailed,
    /// The supervisor raised the interrupt flag and workers switched to
    /// the coordinated drain (`subject` = node id of the first failure).
    DrainBegin,
    /// The watchdog escalated a stuck stage (`subject` = node id, `aux` =
    /// nanoseconds the firing had been running).
    WatchdogFire,
    /// The firing compiler fused superblock kernels for a stage
    /// (`subject` = node id, `aux` = number of kernels in the plan).
    KernelFusion,
    /// A worker executed a run of consecutive firings of one stage as a
    /// single batch (`subject` = node id, `aux` = batch size).
    BatchedFiring,
    /// The service admitted a session (`subject` = session id, `aux` =
    /// shard it was placed on).
    SessionAdmitted,
    /// The service rejected a submission with `Overloaded` (`subject` =
    /// would-be session id, `aux` = live session count at the time).
    SessionRejected,
    /// A submission was served from the compile-once cache (`subject` =
    /// session id).
    CacheHit,
    /// A submission compiled fresh (`subject` = session id, `aux` =
    /// modelled steady cost of the artifact).
    CacheMiss,
    /// A faulting tenant was quarantined; its co-residents keep firing
    /// (`subject` = session id, `aux` = failing stage).
    SessionQuarantined,
    /// A session finished draining and was closed (`subject` = session
    /// id, `aux` = steady iterations completed).
    SessionClosed,
    /// A parameter change was scheduled on a dynamic-rate session
    /// (`subject` = session id where known, `aux` = the new value).
    SetParam,
    /// A dynamic-rate session swapped configurations at a quiescent
    /// point (`subject` = 1 when the schedule cache served the new
    /// configuration, 0 when it compiled; `aux` = swap ordinal).
    Reconfigure,
    /// A worker's adaptive batch depth changed from downstream ring
    /// occupancy (`subject` = node id, `aux` = the new depth).
    BatchDepth,
    /// A worker hosts one replica of a fissioned stage (`subject` = node
    /// id, `aux` = total replica count).
    FissionReplica,
}

impl EventKind {
    /// Short stable label for exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::FiringStart => "firing_start",
            EventKind::FiringEnd => "firing_end",
            EventKind::RingPushStallBegin => "push_stall_begin",
            EventKind::RingPushStallEnd => "push_stall_end",
            EventKind::RingPopStallBegin => "pop_stall_begin",
            EventKind::RingPopStallEnd => "pop_stall_end",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::FaultInjected => "fault_injected",
            EventKind::StageFailed => "stage_failed",
            EventKind::DrainBegin => "drain_begin",
            EventKind::WatchdogFire => "watchdog_fire",
            EventKind::KernelFusion => "kernel_fusion",
            EventKind::BatchedFiring => "batched_firing",
            EventKind::SessionAdmitted => "session_admitted",
            EventKind::SessionRejected => "session_rejected",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::SessionQuarantined => "session_quarantined",
            EventKind::SessionClosed => "session_closed",
            EventKind::SetParam => "set_param",
            EventKind::Reconfigure => "reconfigure",
            EventKind::BatchDepth => "batch_depth",
            EventKind::FissionReplica => "fission_replica",
        }
    }
}

/// One recorded moment. 24 bytes; rings hold these by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Event {
    /// [`crate::clock::now_ns`] at record time.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Node id for firing events, edge id for ring/park events.
    pub subject: u32,
    /// Kind-specific payload (e.g. modelled cycles for `FiringEnd`).
    pub aux: u64,
}

impl Event {
    /// Convenience constructor stamping the current time.
    #[inline]
    pub fn now(kind: EventKind, subject: u32, aux: u64) -> Event {
        Event {
            ts_ns: crate::clock::now_ns(),
            kind,
            subject,
            aux,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_compact() {
        assert!(std::mem::size_of::<Event>() <= 24);
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            EventKind::FiringStart,
            EventKind::FiringEnd,
            EventKind::RingPushStallBegin,
            EventKind::RingPushStallEnd,
            EventKind::RingPopStallBegin,
            EventKind::RingPopStallEnd,
            EventKind::Park,
            EventKind::Unpark,
            EventKind::FaultInjected,
            EventKind::StageFailed,
            EventKind::DrainBegin,
            EventKind::WatchdogFire,
            EventKind::KernelFusion,
            EventKind::BatchedFiring,
            EventKind::SessionAdmitted,
            EventKind::SessionRejected,
            EventKind::CacheHit,
            EventKind::CacheMiss,
            EventKind::SessionQuarantined,
            EventKind::SessionClosed,
            EventKind::SetParam,
            EventKind::Reconfigure,
            EventKind::BatchDepth,
            EventKind::FissionReplica,
        ];
        let labels: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
