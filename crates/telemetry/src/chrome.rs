//! Chrome `trace_event` exporter: turns a drained [`TraceSession`] into a
//! JSON timeline loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Workers map to `tid`s, paired begin/end events fold into complete
//! (`"ph": "X"`) duration events, and unpaired begins are emitted as
//! zero-length spans so a truncated recording still loads.
//!
//! [`TraceSession`]: crate::trace::TraceSession

use crate::event::{Event, EventKind};
use crate::json::Json;
use std::collections::HashMap;

/// Category + open-timestamp key for pairing begin/end kinds.
#[derive(Hash, PartialEq, Eq, Clone, Copy)]
struct SpanKey {
    worker: u32,
    subject: u32,
    cat: &'static str,
}

fn span_parts(kind: EventKind) -> Option<(&'static str, bool)> {
    // (category, is_begin)
    match kind {
        EventKind::FiringStart => Some(("firing", true)),
        EventKind::FiringEnd => Some(("firing", false)),
        EventKind::RingPushStallBegin => Some(("push_stall", true)),
        EventKind::RingPushStallEnd => Some(("push_stall", false)),
        EventKind::RingPopStallBegin => Some(("pop_stall", true)),
        EventKind::RingPopStallEnd => Some(("pop_stall", false)),
        EventKind::Park => Some(("park", true)),
        EventKind::Unpark => Some(("park", false)),
        EventKind::FaultInjected
        | EventKind::StageFailed
        | EventKind::DrainBegin
        | EventKind::WatchdogFire
        | EventKind::KernelFusion
        | EventKind::BatchedFiring
        | EventKind::SessionAdmitted
        | EventKind::SessionRejected
        | EventKind::CacheHit
        | EventKind::CacheMiss
        | EventKind::SessionQuarantined
        | EventKind::SessionClosed
        | EventKind::SetParam
        | EventKind::Reconfigure
        | EventKind::BatchDepth
        | EventKind::FissionReplica => None,
    }
}

/// Point-in-time kinds exported as Chrome instant (`"ph": "i"`) events.
fn instant_cat(kind: EventKind) -> Option<&'static str> {
    match kind {
        EventKind::FaultInjected => Some("fault"),
        EventKind::StageFailed => Some("failure"),
        EventKind::DrainBegin => Some("drain"),
        EventKind::WatchdogFire => Some("watchdog"),
        EventKind::KernelFusion => Some("kernel_fusion"),
        EventKind::BatchedFiring => Some("batch"),
        EventKind::BatchDepth => Some("batch"),
        EventKind::FissionReplica => Some("fission"),
        EventKind::SessionAdmitted
        | EventKind::SessionRejected
        | EventKind::CacheHit
        | EventKind::CacheMiss
        | EventKind::SessionQuarantined
        | EventKind::SessionClosed
        | EventKind::SetParam
        | EventKind::Reconfigure => Some("service"),
        _ => None,
    }
}

fn instant_event(kind: EventKind, cat: &'static str, worker: u32, ev: Event) -> Json {
    Json::obj([
        ("name", Json::Str(kind.label().to_string())),
        ("cat", Json::Str(cat.to_string())),
        ("ph", Json::Str("i".into())),
        ("s", Json::Str("t".into())),
        ("ts", Json::Num(ev.ts_ns as f64 / 1000.0)),
        ("pid", Json::Num(0.0)),
        ("tid", Json::Num(worker as f64)),
        (
            "args",
            Json::obj([
                ("subject", Json::Num(ev.subject as f64)),
                ("aux", Json::Num(ev.aux as f64)),
            ]),
        ),
    ])
}

fn span_name(cat: &str, subject: u32, node_names: &[String]) -> String {
    match cat {
        "firing" => node_names
            .get(subject as usize)
            .cloned()
            .unwrap_or_else(|| format!("node{subject}")),
        other => format!("{other} e{subject}"),
    }
}

fn complete_event(
    name: String,
    cat: &'static str,
    worker: u32,
    start_ns: u64,
    dur_ns: u64,
    aux: u64,
) -> Json {
    Json::obj([
        ("name", Json::Str(name)),
        ("cat", Json::Str(cat.to_string())),
        ("ph", Json::Str("X".into())),
        // trace_event timestamps are microseconds; keep sub-us precision.
        ("ts", Json::Num(start_ns as f64 / 1000.0)),
        ("dur", Json::Num(dur_ns as f64 / 1000.0)),
        ("pid", Json::Num(0.0)),
        ("tid", Json::Num(worker as f64)),
        ("args", Json::obj([("aux", Json::Num(aux as f64))])),
    ])
}

/// Build the trace document from `(worker, event)` pairs (as produced by
/// `TraceSession::drain`). `node_names` maps node ids to display names
/// for firing spans; unknown ids fall back to `node<id>`.
pub fn chrome_trace(events: &[(u32, Event)], node_names: &[String]) -> Json {
    let mut out: Vec<Json> = Vec::with_capacity(events.len() / 2 + 8);
    // Stack per key: firings of the same node on the same worker nest
    // (they don't in practice, but the exporter must not corrupt if so).
    let mut open: HashMap<SpanKey, Vec<u64>> = HashMap::new();
    for &(worker, ev) in events {
        let Some((cat, is_begin)) = span_parts(ev.kind) else {
            if let Some(icat) = instant_cat(ev.kind) {
                out.push(instant_event(ev.kind, icat, worker, ev));
            }
            continue;
        };
        let key = SpanKey {
            worker,
            subject: ev.subject,
            cat,
        };
        if is_begin {
            open.entry(key).or_default().push(ev.ts_ns);
        } else if let Some(start) = open.get_mut(&key).and_then(Vec::pop) {
            out.push(complete_event(
                span_name(cat, ev.subject, node_names),
                cat,
                worker,
                start,
                ev.ts_ns.saturating_sub(start),
                ev.aux,
            ));
        }
        // An end with no matching begin is dropped: the ring overwrote or
        // never saw the begin, and a negative-duration span would make
        // the viewer reject the whole file.
    }
    // Truncated recordings leave begins open; emit them zero-length so
    // they are visible rather than silently lost.
    for (key, starts) in open {
        for start in starts {
            out.push(complete_event(
                span_name(key.cat, key.subject, node_names),
                key.cat,
                key.worker,
                start,
                0,
                0,
            ));
        }
    }
    Json::obj([
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, kind: EventKind, subject: u32, aux: u64) -> Event {
        Event {
            ts_ns,
            kind,
            subject,
            aux,
        }
    }

    fn names() -> Vec<String> {
        vec!["src".into(), "scale".into()]
    }

    #[test]
    fn pairs_fold_into_complete_events() {
        let events = vec![
            (0u32, ev(1000, EventKind::FiringStart, 0, 0)),
            (0u32, ev(3000, EventKind::FiringEnd, 0, 17)),
            (1u32, ev(2000, EventKind::RingPopStallBegin, 5, 0)),
            (1u32, ev(2500, EventKind::RingPopStallEnd, 5, 0)),
        ];
        let doc = chrome_trace(&events, &names());
        let traced = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(traced.len(), 2);
        let firing = traced
            .iter()
            .find(|e| e.get("cat").unwrap().as_str() == Some("firing"))
            .unwrap();
        assert_eq!(firing.get("name").unwrap().as_str(), Some("src"));
        assert_eq!(firing.get("ts").unwrap().as_num(), Some(1.0));
        assert_eq!(firing.get("dur").unwrap().as_num(), Some(2.0));
        assert_eq!(firing.get("tid").unwrap().as_num(), Some(0.0));
    }

    #[test]
    fn output_is_parseable_json_with_trace_events() {
        let events = vec![
            (0u32, ev(0, EventKind::Park, 2, 0)),
            (0u32, ev(500, EventKind::Unpark, 2, 0)),
        ];
        let s = chrome_trace(&events, &[]).to_string_compact();
        let parsed = crate::json::parse(&s).unwrap();
        assert!(parsed.get("traceEvents").unwrap().as_arr().is_some());
    }

    #[test]
    fn unpaired_events_do_not_corrupt() {
        let events = vec![
            // End with no begin: dropped.
            (0u32, ev(100, EventKind::FiringEnd, 1, 0)),
            // Begin with no end: emitted zero-length.
            (0u32, ev(200, EventKind::FiringStart, 0, 0)),
        ];
        let doc = chrome_trace(&events, &names());
        let traced = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(traced.len(), 1);
        assert_eq!(traced[0].get("dur").unwrap().as_num(), Some(0.0));
    }

    #[test]
    fn unknown_node_gets_fallback_name() {
        let events = vec![
            (0u32, ev(0, EventKind::FiringStart, 9, 0)),
            (0u32, ev(1, EventKind::FiringEnd, 9, 0)),
        ];
        let doc = chrome_trace(&events, &names());
        let traced = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(traced[0].get("name").unwrap().as_str(), Some("node9"));
    }
}
