//! # macross-telemetry
//!
//! The observability subsystem of the MacroSS reproduction: a low-overhead
//! event recorder threaded through the threaded runtime and the VM, plus
//! machine-readable exporters for the benchmark binaries.
//!
//! Four layers, from hot to cold:
//!
//! 1. **Recording** ([`ring::EventRing`], [`trace::TraceSession`]): each
//!    worker thread appends fixed-size [`event::Event`]s (firing spans,
//!    ring push/pop stalls, park/unpark) to a bounded lock-free ring with
//!    monotonic [`clock::now_ns`] timestamps. The facade is selected by
//!    the `trace` cargo feature: disabled (the default), `WorkerTrace` is
//!    a zero-sized struct whose `record` is an empty inline function, so
//!    hooks in the runtime and VM compile to nothing.
//! 2. **Aggregation**: the runtime's `RuntimeReport` carries per-stage
//!    firings, tokens moved, stall counts *and stall nanoseconds*, plus
//!    per-ring occupancy histograms and high-water marks (always on —
//!    a handful of relaxed atomics per firing batch).
//! 3. **Compile-side tracing** ([`compile::PassEvent`]): the SIMDization
//!    driver records which transform fired on which actor, the chosen
//!    SIMD width, and the cost-model estimates, so estimated cost can be
//!    compared against measured cost per benchmark.
//! 4. **Export** ([`chrome`], [`report`]): a Chrome `trace_event` JSON
//!    timeline (open in `chrome://tracing` or <https://ui.perfetto.dev>)
//!    and the stable [`report::BenchReport`] schema the bench binaries
//!    write to `BENCH_<name>.json`. [`report::validate_str`] (and the
//!    `validate_report` binary) check a report against the schema without
//!    any external JSON dependency.

pub mod chrome;
pub mod clock;
pub mod compile;
pub mod event;
pub mod json;
pub mod report;
pub mod ring;
pub mod service;
pub mod trace;

pub use event::{Event, EventKind};
pub use ring::EventRing;
pub use trace::{TraceSession, WorkerTrace};
