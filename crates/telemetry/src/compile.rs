//! Compile-side tracing of the SIMDization pipeline: which transform
//! fired on which actor, the SIMD width it chose, and what the cost model
//! predicted. The driver appends [`PassEvent`]s to its `SimdizeReport` so
//! benchmarks can pair the *estimated* cost of a decision with the
//! *measured* cost the runtime later observes.

use crate::json::Json;
use std::fmt;

/// Which phase of Algorithm 1 produced the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Classic prepass optimizations (folding, identities, DSE).
    Prepass,
    /// Horizontal SIMDization of an isomorphic split-join.
    Horizontal,
    /// Vertical fusion of a SIMDizable pipeline chain.
    Vertical,
    /// Single-actor SIMDization (including previously fused actors).
    SingleActor,
    /// An eligible actor skipped because vectorization would not pay.
    Unprofitable,
    /// Equation-1 repetition-vector scaling.
    Equation1,
    /// Region-based stateful SIMDization (lane-per-region panels).
    Region,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pass::Prepass => "prepass",
            Pass::Horizontal => "horizontal",
            Pass::Vertical => "vertical",
            Pass::SingleActor => "single_actor",
            Pass::Unprofitable => "unprofitable",
            Pass::Equation1 => "equation1",
            Pass::Region => "region",
        };
        f.write_str(s)
    }
}

/// One decision the SIMDization driver made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassEvent {
    /// The phase.
    pub pass: Pass,
    /// The actor (or actor group / chain label) it applied to.
    pub actor: String,
    /// SIMD width in effect.
    pub simd_width: u64,
    /// Cost model: cycles per scalar firing (0 when not applicable).
    pub est_scalar_cycles: u64,
    /// Cost model: cycles per vector firing covering `simd_width` scalar
    /// firings (0 when not applicable).
    pub est_vector_cycles: u64,
    /// Free-form detail (tape modes, merge arity, scale factor...).
    pub note: String,
}

impl PassEvent {
    /// An event with zeroed cost fields.
    pub fn new(pass: Pass, actor: impl Into<String>, simd_width: u64) -> PassEvent {
        PassEvent {
            pass,
            actor: actor.into(),
            simd_width,
            est_scalar_cycles: 0,
            est_vector_cycles: 0,
            note: String::new(),
        }
    }

    /// Attach cost-model estimates.
    pub fn costs(mut self, scalar: u64, vector: u64) -> PassEvent {
        self.est_scalar_cycles = scalar;
        self.est_vector_cycles = vector;
        self
    }

    /// Attach a free-form note.
    pub fn note(mut self, note: impl Into<String>) -> PassEvent {
        self.note = note.into();
        self
    }

    /// Estimated speedup of the decision (scalar work covered per vector
    /// firing over its cost); 0.0 when the costs are not applicable.
    pub fn est_speedup(&self) -> f64 {
        if self.est_vector_cycles == 0 || self.est_scalar_cycles == 0 {
            0.0
        } else {
            (self.simd_width * self.est_scalar_cycles) as f64 / self.est_vector_cycles as f64
        }
    }
}

/// Serialize pass events for embedding in reports.
pub fn passes_to_json(events: &[PassEvent]) -> Json {
    Json::Arr(
        events
            .iter()
            .map(|e| {
                Json::obj([
                    ("pass", Json::Str(e.pass.to_string())),
                    ("actor", Json::Str(e.actor.clone())),
                    ("simd_width", Json::Num(e.simd_width as f64)),
                    ("est_scalar_cycles", Json::Num(e.est_scalar_cycles as f64)),
                    ("est_vector_cycles", Json::Num(e.est_vector_cycles as f64)),
                    ("note", Json::Str(e.note.clone())),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn est_speedup_guards_zero() {
        let e = PassEvent::new(Pass::SingleActor, "f", 4);
        assert_eq!(e.est_speedup(), 0.0);
        let e = e.costs(10, 8);
        assert_eq!(e.est_speedup(), 5.0);
    }

    #[test]
    fn passes_serialize() {
        let events = vec![
            PassEvent::new(Pass::Vertical, "f1 -> f2", 4).note("2-actor chain"),
            PassEvent::new(Pass::Unprofitable, "fir", 4).costs(100, 500),
        ];
        let j = passes_to_json(&events);
        let arr = j.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("pass").unwrap().as_str(), Some("vertical"));
        assert_eq!(
            arr[1].get("est_vector_cycles").unwrap().as_num(),
            Some(500.0)
        );
    }
}
