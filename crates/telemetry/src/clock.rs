//! TSC-style timestamps: monotonic nanoseconds since a process-wide
//! anchor, cheap enough to call per event.
//!
//! All threads share one anchor (the first call wins), so timestamps from
//! different workers are directly comparable and the Chrome exporter can
//! interleave them on one timeline.

use std::sync::OnceLock;
use std::time::Instant;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide anchor. The first call anchors the
/// clock at 0; every later call (from any thread) is relative to it.
#[inline]
pub fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_within_a_thread() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn comparable_across_threads() {
        let before = now_ns();
        let from_thread = std::thread::spawn(now_ns).join().unwrap();
        let after = now_ns();
        assert!(from_thread >= before);
        assert!(after >= from_thread);
    }
}
