//! Bounded lock-free ring buffer for trace events.
//!
//! A Vyukov-style bounded queue: each slot carries a sequence number that
//! tells producers when the slot is free and the consumer when it is
//! published. The common case (one worker thread recording its own
//! events) makes the CAS on the enqueue cursor uncontended, but the
//! design stays correct under *concurrent* writers — the stress test
//! pins that down — so a recorder can also be shared (e.g. a coordinator
//! thread annotating a worker's ring).
//!
//! Recording never blocks: when the ring is full the event is dropped
//! and counted, because a tracer that applies backpressure to the system
//! it observes would corrupt the very schedule it is trying to capture.

use crate::event::Event;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Pad to a cache line so the enqueue and dequeue cursors never share one.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot {
    /// Vyukov sequence: `index` when free for the producer of ticket
    /// `index`, `index + 1` once published, `index + capacity` after the
    /// consumer recycles it for the next lap.
    seq: AtomicUsize,
    ev: UnsafeCell<Event>,
}

/// Bounded multi-producer event ring with a drain-style consumer.
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue: CachePadded<AtomicUsize>,
    dequeue: CachePadded<AtomicUsize>,
    dropped: AtomicU64,
}

// SAFETY: a slot's payload is only written by the producer that won its
// ticket (the CAS on `enqueue`) and only read by the consumer that won the
// ticket on `dequeue`; the acquire/release pairs on `seq` order the
// accesses on both sides.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    /// A ring with at least `capacity` slots (rounded up to a power of
    /// two, minimum 8).
    pub fn with_capacity(capacity: usize) -> EventRing {
        let cap = capacity.max(8).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                ev: UnsafeCell::new(Event::default()),
            })
            .collect();
        EventRing {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            enqueue: CachePadded(AtomicUsize::new(0)),
            dequeue: CachePadded(AtomicUsize::new(0)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Append one event. Returns `false` (and counts a drop) when the
    /// ring is full — recording never blocks.
    pub fn push(&self, ev: Event) -> bool {
        let mut pos = self.enqueue.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.wrapping_sub(pos) as isize {
                0 => {
                    match self.enqueue.0.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS gave this thread exclusive
                            // ownership of the slot for ticket `pos`.
                            unsafe { *slot.ev.get() = ev };
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return true;
                        }
                        Err(p) => pos = p,
                    }
                }
                d if d < 0 => {
                    // One full lap behind: the ring is full.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                _ => pos = self.enqueue.0.load(Ordering::Relaxed),
            }
        }
    }

    /// Remove the oldest event, if any.
    pub fn pop(&self) -> Option<Event> {
        let mut pos = self.dequeue.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.wrapping_sub(pos.wrapping_add(1)) as isize {
                0 => {
                    match self.dequeue.0.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS gave this thread exclusive
                            // read ownership of the published slot.
                            let ev = unsafe { *slot.ev.get() };
                            slot.seq
                                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                            return Some(ev);
                        }
                        Err(p) => pos = p,
                    }
                }
                d if d < 0 => return None,
                _ => pos = self.dequeue.0.load(Ordering::Relaxed),
            }
        }
    }

    /// Drain everything currently visible, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    fn ev(subject: u32, aux: u64) -> Event {
        Event {
            ts_ns: 0,
            kind: EventKind::FiringStart,
            subject,
            aux,
        }
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(EventRing::with_capacity(0).capacity(), 8);
        assert_eq!(EventRing::with_capacity(100).capacity(), 128);
    }

    #[test]
    fn fifo_roundtrip() {
        let r = EventRing::with_capacity(8);
        for i in 0..5 {
            assert!(r.push(ev(i, 0)));
        }
        let got = r.drain();
        assert_eq!(got.len(), 5);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.subject, i as u32);
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let r = EventRing::with_capacity(8);
        for i in 0..8 {
            assert!(r.push(ev(i, 0)));
        }
        assert!(!r.push(ev(99, 0)));
        assert!(!r.push(ev(100, 0)));
        assert_eq!(r.dropped(), 2);
        // The original 8 are intact and in order.
        let got = r.drain();
        assert_eq!(
            got.iter().map(|e| e.subject).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
    }

    /// Push far more events than the capacity with interleaved drains:
    /// the cursors wrap many times and order must survive every lap.
    #[test]
    fn wraparound_preserves_order() {
        let r = EventRing::with_capacity(8);
        let mut next_expected = 0u32;
        let mut pushed = 0u32;
        while pushed < 1000 {
            for _ in 0..5 {
                if pushed < 1000 && r.push(ev(pushed, 0)) {
                    pushed += 1;
                }
            }
            for e in r.drain() {
                assert_eq!(e.subject, next_expected);
                next_expected += 1;
            }
        }
        for e in r.drain() {
            assert_eq!(e.subject, next_expected);
            next_expected += 1;
        }
        assert_eq!(next_expected, 1000);
        assert_eq!(r.dropped(), 0);
    }

    /// Concurrent writers: every accepted event must come out exactly
    /// once, uncorrupted, and per-writer order must be preserved.
    #[test]
    fn concurrent_writer_stress() {
        const WRITERS: u32 = 4;
        const PER_WRITER: u64 = 20_000;
        let r = Arc::new(EventRing::with_capacity(1024));
        let stop = Arc::new(std::sync::atomic::AtomicUsize::new(0));

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut accepted = 0u64;
                    for seq in 0..PER_WRITER {
                        if r.push(ev(w, seq)) {
                            accepted += 1;
                        }
                        if seq % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    stop.fetch_add(1, std::sync::atomic::Ordering::Release);
                    accepted
                })
            })
            .collect();

        // Single consumer drains concurrently until all writers finish.
        let mut last_seen = vec![None::<u64>; WRITERS as usize];
        let mut received = 0u64;
        loop {
            let writers_done = stop.load(std::sync::atomic::Ordering::Acquire) == WRITERS as usize;
            let batch = r.drain();
            if batch.is_empty() && writers_done {
                break;
            }
            for e in batch {
                assert!(e.subject < WRITERS, "corrupt writer id {}", e.subject);
                assert!(e.aux < PER_WRITER, "corrupt sequence {}", e.aux);
                // Per-writer sequence numbers must be strictly increasing:
                // no duplication, no reordering within a writer.
                let last = &mut last_seen[e.subject as usize];
                if let Some(prev) = *last {
                    assert!(
                        e.aux > prev,
                        "writer {} went {} -> {}",
                        e.subject,
                        prev,
                        e.aux
                    );
                }
                *last = Some(e.aux);
                received += 1;
            }
        }
        let accepted: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(received, accepted, "accepted events must all come out");
        assert_eq!(accepted + r.dropped(), WRITERS as u64 * PER_WRITER);
    }
}
