//! The stable `BENCH_<name>.json` schema the bench binaries emit, plus a
//! validator so CI can gate on well-formed reports.
//!
//! Schema (version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "fig11",                  // report name -> BENCH_fig11.json
//!   "machine": "core_i7_sse4",        // machine description used
//!   "simd_width": 4,
//!   "created_unix_ms": 1754000000000,
//!   "rows": [
//!     {
//!       "benchmark": "FMRadio",
//!       "metrics":  { "improvement_pct": 12.5 },   // finite f64s
//!       "counters": { "ring_traffic": 4096 }       // non-negative integers
//!     }
//!   ]
//! }
//! ```
//!
//! `metrics` carries continuous measurements (speedups, nanoseconds),
//! `counters` carries exact event counts. Both are open-ended maps so new
//! figures can add columns without a schema bump; the validator checks
//! shape and types, not specific keys.

use crate::json::{self, Json};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Current schema version, bumped on incompatible shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// One benchmark's row in a report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchRow {
    /// Benchmark name (e.g. `FMRadio`).
    pub benchmark: String,
    /// Continuous measurements, in insertion order.
    pub metrics: Vec<(String, f64)>,
    /// Exact event counts, in insertion order.
    pub counters: Vec<(String, u64)>,
}

impl BenchRow {
    /// A row for `benchmark` with empty metric/counter maps.
    pub fn new(benchmark: impl Into<String>) -> BenchRow {
        BenchRow {
            benchmark: benchmark.into(),
            ..Default::default()
        }
    }

    /// Append a metric (non-finite values are recorded as 0.0 so the
    /// report never violates its own schema).
    pub fn metric(mut self, key: impl Into<String>, value: f64) -> BenchRow {
        let v = if value.is_finite() { value } else { 0.0 };
        self.metrics.push((key.into(), v));
        self
    }

    /// Append a counter.
    pub fn counter(mut self, key: impl Into<String>, value: u64) -> BenchRow {
        self.counters.push((key.into(), value));
        self
    }
}

/// A machine-readable benchmark report, written as `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report name; determines the file name.
    pub name: String,
    /// Machine description the numbers were produced on.
    pub machine: String,
    /// SIMD width of that machine.
    pub simd_width: u64,
    /// Wall-clock creation time (Unix milliseconds).
    pub created_unix_ms: u64,
    /// Work-function engine the numbers were produced with (e.g.
    /// `"bytecode"` or `"treewalk"`); omitted from the JSON when unset.
    pub exec_mode: Option<String>,
    /// One row per benchmark (or per benchmark x configuration).
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// A report stamped with the current wall-clock time.
    pub fn new(
        name: impl Into<String>,
        machine: impl Into<String>,
        simd_width: u64,
    ) -> BenchReport {
        BenchReport {
            name: name.into(),
            machine: machine.into(),
            simd_width,
            created_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            exec_mode: None,
            rows: Vec::new(),
        }
    }

    /// Stamp the report with the work-function engine used.
    pub fn with_exec_mode(mut self, mode: impl Into<String>) -> BenchReport {
        self.exec_mode = Some(mode.into());
        self
    }

    /// Append a row.
    pub fn push_row(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// The canonical file name: `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::obj([
                    ("benchmark", Json::Str(r.benchmark.clone())),
                    (
                        "metrics",
                        Json::Obj(
                            r.metrics
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                .collect(),
                        ),
                    ),
                    (
                        "counters",
                        Json::Obj(
                            r.counters
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let mut fields = vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("name", Json::Str(self.name.clone())),
            ("machine", Json::Str(self.machine.clone())),
            ("simd_width", Json::Num(self.simd_width as f64)),
            ("created_unix_ms", Json::Num(self.created_unix_ms as f64)),
        ];
        if let Some(mode) = &self.exec_mode {
            fields.push(("exec_mode", Json::Str(mode.clone())));
        }
        fields.push(("rows", Json::Arr(rows)));
        Json::obj(fields)
    }

    /// Pretty-printed JSON document.
    pub fn json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Write `BENCH_<name>.json` into `dir` and return the path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.json_string())?;
        Ok(path)
    }
}

fn require_num(v: &Json, what: &str) -> Result<f64, String> {
    v.as_num()
        .ok_or_else(|| format!("{what} must be a finite number"))
}

fn require_str<'a>(v: &'a Json, what: &str) -> Result<&'a str, String> {
    v.as_str().ok_or_else(|| format!("{what} must be a string"))
}

fn require_field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what} is missing required field \"{key}\""))
}

fn check_uint(n: f64, what: &str) -> Result<(), String> {
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{what} must be a non-negative integer, got {n}"));
    }
    Ok(())
}

/// Validate a parsed document against the version-1 schema.
///
/// # Errors
/// Returns the first violation as a human-readable message.
pub fn validate(doc: &Json) -> Result<(), String> {
    doc.as_obj().ok_or("report must be a JSON object")?;
    let version = require_num(
        require_field(doc, "schema_version", "report")?,
        "schema_version",
    )?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
        ));
    }
    let name = require_str(require_field(doc, "name", "report")?, "name")?;
    if name.is_empty() {
        return Err("name must be non-empty".into());
    }
    require_str(require_field(doc, "machine", "report")?, "machine")?;
    let sw = require_num(require_field(doc, "simd_width", "report")?, "simd_width")?;
    check_uint(sw, "simd_width")?;
    if sw < 1.0 {
        return Err("simd_width must be >= 1".into());
    }
    let created = require_num(
        require_field(doc, "created_unix_ms", "report")?,
        "created_unix_ms",
    )?;
    check_uint(created, "created_unix_ms")?;
    if let Some(mode) = doc.get("exec_mode") {
        let mode = require_str(mode, "exec_mode")?;
        if mode.is_empty() {
            return Err("exec_mode must be non-empty when present".into());
        }
    }
    let rows = require_field(doc, "rows", "report")?
        .as_arr()
        .ok_or("rows must be an array")?;
    for (i, row) in rows.iter().enumerate() {
        let what = format!("rows[{i}]");
        row.as_obj().ok_or(format!("{what} must be an object"))?;
        let bench = require_str(require_field(row, "benchmark", &what)?, "benchmark")?;
        if bench.is_empty() {
            return Err(format!("{what}.benchmark must be non-empty"));
        }
        let metrics = require_field(row, "metrics", &what)?
            .as_obj()
            .ok_or(format!("{what}.metrics must be an object"))?;
        for (k, v) in metrics {
            require_num(v, &format!("{what}.metrics.{k}"))?;
        }
        let counters = require_field(row, "counters", &what)?
            .as_obj()
            .ok_or(format!("{what}.counters must be an object"))?;
        for (k, v) in counters {
            let n = require_num(v, &format!("{what}.counters.{k}"))?;
            check_uint(n, &format!("{what}.counters.{k}"))?;
        }
    }
    Ok(())
}

/// Parse and validate a report document in one call.
///
/// # Errors
/// Returns a parse error or the first schema violation.
pub fn validate_str(input: &str) -> Result<(), String> {
    validate(&json::parse(input)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("fig11", "core_i7_sse4", 4);
        r.push_row(
            BenchRow::new("FMRadio")
                .metric("improvement_pct", 12.5)
                .counter("iters", 50),
        );
        r.push_row(BenchRow::new("DCT").metric("improvement_pct", 40.0));
        r
    }

    #[test]
    fn emitted_report_validates() {
        let s = sample().json_string();
        validate_str(&s).unwrap();
    }

    #[test]
    fn file_name_is_canonical() {
        assert_eq!(sample().file_name(), "BENCH_fig11.json");
    }

    #[test]
    fn exec_mode_is_optional_but_nonempty() {
        let stamped = sample().with_exec_mode("bytecode");
        let s = stamped.json_string();
        assert!(s.contains("\"exec_mode\": \"bytecode\""));
        validate_str(&s).unwrap();
        // Absent: still valid, and not emitted at all.
        let plain = sample().json_string();
        assert!(!plain.contains("exec_mode"));
        validate_str(&plain).unwrap();
        // Present but empty: rejected.
        let bad = r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"exec_mode":"","rows":[]}"#;
        assert!(validate_str(bad).unwrap_err().contains("exec_mode"));
    }

    #[test]
    fn non_finite_metric_is_coerced() {
        let row = BenchRow::new("x").metric("speedup", f64::NAN);
        assert_eq!(row.metrics[0].1, 0.0);
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join("macross_telemetry_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample().write_to_dir(&dir).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        validate_str(&read).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn validator_rejects_bad_shapes() {
        let cases = [
            ("[]", "object"),
            (r#"{"name":"x"}"#, "schema_version"),
            (
                r#"{"schema_version":2,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[]}"#,
                "schema_version",
            ),
            (
                r#"{"schema_version":1,"name":"","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[]}"#,
                "non-empty",
            ),
            (
                r#"{"schema_version":1,"name":"x","machine":"m","simd_width":0,"created_unix_ms":0,"rows":[]}"#,
                "simd_width",
            ),
            (
                r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[{"benchmark":"b","metrics":{"a":"nope"},"counters":{}}]}"#,
                "metrics",
            ),
            (
                r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[{"benchmark":"b","metrics":{},"counters":{"c":-1}}]}"#,
                "counters",
            ),
            (
                r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[{"metrics":{},"counters":{}}]}"#,
                "benchmark",
            ),
        ];
        for (doc, needle) in cases {
            let err = validate_str(doc).unwrap_err();
            assert!(
                err.contains(needle),
                "error {err:?} should mention {needle:?}"
            );
        }
    }
}
