//! The stable `BENCH_<name>.json` schema the bench binaries emit, plus a
//! validator so CI can gate on well-formed reports.
//!
//! Schema (version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "fig11",                  // report name -> BENCH_fig11.json
//!   "machine": "core_i7_sse4",        // machine description used
//!   "simd_width": 4,
//!   "created_unix_ms": 1754000000000,
//!   "rows": [
//!     {
//!       "benchmark": "FMRadio",
//!       "metrics":  { "improvement_pct": 12.5 },   // finite f64s
//!       "counters": { "ring_traffic": 4096 }       // non-negative integers
//!     }
//!   ]
//! }
//! ```
//!
//! `metrics` carries continuous measurements (speedups, nanoseconds),
//! `counters` carries exact event counts. Both are open-ended maps so new
//! figures can add columns without a schema bump; the validator checks
//! shape and types, not specific keys.

use crate::json::{self, Json};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Current schema version, bumped on incompatible shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// One benchmark's row in a report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchRow {
    /// Benchmark name (e.g. `FMRadio`).
    pub benchmark: String,
    /// This row *is* the reference other rows' ratios are computed
    /// against (e.g. the 1-worker measurement a speedup divides by).
    /// Comparators must never gate a baseline row on ratio metrics —
    /// they are self-ratios, identically 1. Omitted from the JSON when
    /// false.
    pub baseline: bool,
    /// Continuous measurements, in insertion order.
    pub metrics: Vec<(String, f64)>,
    /// Exact event counts, in insertion order.
    pub counters: Vec<(String, u64)>,
}

impl BenchRow {
    /// A row for `benchmark` with empty metric/counter maps.
    pub fn new(benchmark: impl Into<String>) -> BenchRow {
        BenchRow {
            benchmark: benchmark.into(),
            ..Default::default()
        }
    }

    /// Mark this row as the baseline its siblings' ratios divide by.
    pub fn as_baseline(mut self) -> BenchRow {
        self.baseline = true;
        self
    }

    /// Append a metric (non-finite values are recorded as 0.0 so the
    /// report never violates its own schema).
    pub fn metric(mut self, key: impl Into<String>, value: f64) -> BenchRow {
        let v = if value.is_finite() { value } else { 0.0 };
        self.metrics.push((key.into(), v));
        self
    }

    /// Append a counter.
    pub fn counter(mut self, key: impl Into<String>, value: u64) -> BenchRow {
        self.counters.push((key.into(), value));
        self
    }
}

/// One macro-SIMDization pass recorded alongside a report's rows: which
/// transform fired while producing the benchmarked graphs and the actors
/// it produced. Lets a consumer cross-check that a row claiming a
/// transform's speedup (e.g. a `region_*` benchmark) was actually
/// produced by that transform rather than by a silently skipped pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportPass {
    /// Pass name as the compile trace spells it (`"region"`,
    /// `"single_actor"`, ...).
    pub pass: String,
    /// Post-transform actor names the pass produced.
    pub actors: Vec<String>,
}

/// Pass names the schema recognizes in [`ReportPass::pass`] — the
/// `Display` spellings of the compile trace's pass enum.
pub const KNOWN_PASSES: [&str; 7] = [
    "prepass",
    "horizontal",
    "vertical",
    "single_actor",
    "unprofitable",
    "equation1",
    "region",
];

/// A machine-readable benchmark report, written as `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report name; determines the file name.
    pub name: String,
    /// Machine description the numbers were produced on.
    pub machine: String,
    /// SIMD width of that machine.
    pub simd_width: u64,
    /// Wall-clock creation time (Unix milliseconds).
    pub created_unix_ms: u64,
    /// Work-function engine the numbers were produced with (e.g.
    /// `"bytecode"` or `"treewalk"`); omitted from the JSON when unset.
    pub exec_mode: Option<String>,
    /// Kernel backend the numbers were produced with (`"avx2"` /
    /// `"portable"`); omitted from the JSON when unset. Top-level (not a
    /// counter) so it stays out of the bit-exact counter comparison.
    pub kernel_backend: Option<String>,
    /// Backend-matrix tier the fused kernels executed on (`"portable"` /
    /// `"sse2"` / `"avx2"`); omitted from the JSON when unset. The
    /// tier-matrix successor of `kernel_backend`, carried alongside it
    /// so baselines written before the matrix still compare cleanly.
    pub kernel_tier: Option<String>,
    /// Total batched firings across the run, when the producer tracked
    /// them. Top-level because the number is scheduling-dependent, not a
    /// deterministic event count.
    pub batched_firings: Option<u64>,
    /// Compile passes that produced the benchmarked graphs; omitted from
    /// the JSON when empty (reports on pre-built graphs have none).
    pub passes: Vec<ReportPass>,
    /// One row per benchmark (or per benchmark x configuration).
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// A report stamped with the current wall-clock time.
    pub fn new(
        name: impl Into<String>,
        machine: impl Into<String>,
        simd_width: u64,
    ) -> BenchReport {
        BenchReport {
            name: name.into(),
            machine: machine.into(),
            simd_width,
            created_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            exec_mode: None,
            kernel_backend: None,
            kernel_tier: None,
            batched_firings: None,
            passes: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Stamp the report with the work-function engine used.
    pub fn with_exec_mode(mut self, mode: impl Into<String>) -> BenchReport {
        self.exec_mode = Some(mode.into());
        self
    }

    /// Stamp the report with the kernel backend used.
    pub fn with_kernel_backend(mut self, backend: impl Into<String>) -> BenchReport {
        self.kernel_backend = Some(backend.into());
        self
    }

    /// Stamp the report with the backend-matrix kernel tier used.
    pub fn with_kernel_tier(mut self, tier: impl Into<String>) -> BenchReport {
        self.kernel_tier = Some(tier.into());
        self
    }

    /// Stamp the report with the total batched firings observed.
    pub fn with_batched_firings(mut self, n: u64) -> BenchReport {
        self.batched_firings = Some(n);
        self
    }

    /// Append a row.
    pub fn push_row(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// Record a compile pass that produced the benchmarked graphs.
    pub fn push_pass(&mut self, pass: impl Into<String>, actors: Vec<String>) {
        self.passes.push(ReportPass {
            pass: pass.into(),
            actors,
        });
    }

    /// The canonical file name: `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut fields = vec![("benchmark", Json::Str(r.benchmark.clone()))];
                if r.baseline {
                    fields.push(("baseline", Json::Bool(true)));
                }
                fields.push((
                    "metrics",
                    Json::Obj(
                        r.metrics
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v)))
                            .collect(),
                    ),
                ));
                fields.push((
                    "counters",
                    Json::Obj(
                        r.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                            .collect(),
                    ),
                ));
                Json::obj(fields)
            })
            .collect();
        let mut fields = vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("name", Json::Str(self.name.clone())),
            ("machine", Json::Str(self.machine.clone())),
            ("simd_width", Json::Num(self.simd_width as f64)),
            ("created_unix_ms", Json::Num(self.created_unix_ms as f64)),
        ];
        if let Some(mode) = &self.exec_mode {
            fields.push(("exec_mode", Json::Str(mode.clone())));
        }
        if let Some(backend) = &self.kernel_backend {
            fields.push(("kernel_backend", Json::Str(backend.clone())));
        }
        if let Some(tier) = &self.kernel_tier {
            fields.push(("kernel_tier", Json::Str(tier.clone())));
        }
        if let Some(n) = self.batched_firings {
            fields.push(("batched_firings", Json::Num(n as f64)));
        }
        if !self.passes.is_empty() {
            let passes = self
                .passes
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("pass", Json::Str(p.pass.clone())),
                        (
                            "actors",
                            Json::Arr(p.actors.iter().map(|a| Json::Str(a.clone())).collect()),
                        ),
                    ])
                })
                .collect();
            fields.push(("passes", Json::Arr(passes)));
        }
        fields.push(("rows", Json::Arr(rows)));
        Json::obj(fields)
    }

    /// Pretty-printed JSON document.
    pub fn json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Write `BENCH_<name>.json` into `dir` and return the path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.json_string())?;
        Ok(path)
    }
}

/// One schema violation: the JSON key path of the offending value and
/// what is wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Key path into the document, e.g. `rows[2].counters.iters` (`$` is
    /// the document root).
    pub path: String,
    /// What the schema required there.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

struct Checker(Vec<Violation>);

impl Checker {
    fn push(&mut self, path: impl Into<String>, message: impl Into<String>) {
        self.0.push(Violation {
            path: path.into(),
            message: message.into(),
        });
    }

    /// Require `obj[key]` to exist and parse through `get`; on success run
    /// `then` against the extracted value.
    fn field<'a, T>(
        &mut self,
        obj: &'a Json,
        path: &str,
        kind: &str,
        get: impl Fn(&'a Json) -> Option<T>,
        then: impl FnOnce(&mut Checker, T),
    ) {
        let key = path.rsplit('.').next().unwrap_or(path);
        match obj.get(key) {
            None => self.push(path, "missing required field"),
            Some(v) => match get(v) {
                None => self.push(path, format!("must be {kind}")),
                Some(t) => then(self, t),
            },
        }
    }
}

fn get_uint(v: &Json) -> Option<f64> {
    v.as_num().filter(|n| *n >= 0.0 && n.fract() == 0.0)
}

/// Check a parsed document against the version-1 schema, collecting
/// **every** violation (with its key path) instead of stopping at the
/// first — so a CI failure shows the whole damage at once.
pub fn check(doc: &Json) -> Vec<Violation> {
    let mut c = Checker(Vec::new());
    if doc.as_obj().is_none() {
        c.push("$", "report must be a JSON object");
        return c.0;
    }
    c.field(
        doc,
        "schema_version",
        "a finite number",
        Json::as_num,
        |c, n| {
            if n != SCHEMA_VERSION as f64 {
                c.push(
                    "schema_version",
                    format!("unsupported schema_version {n} (expected {SCHEMA_VERSION})"),
                );
            }
        },
    );
    c.field(doc, "name", "a string", Json::as_str, |c, s| {
        if s.is_empty() {
            c.push("name", "must be non-empty");
        }
    });
    c.field(doc, "machine", "a string", Json::as_str, |_, _| {});
    c.field(
        doc,
        "simd_width",
        "a non-negative integer",
        get_uint,
        |c, n| {
            if n < 1.0 {
                c.push("simd_width", "must be >= 1");
            }
        },
    );
    c.field(
        doc,
        "created_unix_ms",
        "a non-negative integer",
        get_uint,
        |_, _| {},
    );
    if let Some(mode) = doc.get("exec_mode") {
        match mode.as_str() {
            None => c.push("exec_mode", "must be a string"),
            Some("") => c.push("exec_mode", "must be non-empty when present"),
            Some(_) => {}
        }
    }
    if let Some(backend) = doc.get("kernel_backend") {
        match backend.as_str() {
            None => c.push("kernel_backend", "must be a string"),
            Some("") => c.push("kernel_backend", "must be non-empty when present"),
            Some(_) => {}
        }
    }
    if let Some(tier) = doc.get("kernel_tier") {
        match tier.as_str() {
            None => c.push("kernel_tier", "must be a string"),
            Some("portable" | "sse2" | "avx2") => {}
            Some(other) => c.push(
                "kernel_tier",
                format!("unknown tier {other:?} (expected portable|sse2|avx2)"),
            ),
        }
    }
    if let Some(n) = doc.get("batched_firings") {
        if get_uint(n).is_none() {
            c.push("batched_firings", "must be a non-negative integer");
        }
    }
    if let Some(passes) = doc.get("passes") {
        match passes.as_arr() {
            None => c.push("passes", "must be an array"),
            Some(entries) => {
                for (i, entry) in entries.iter().enumerate() {
                    check_pass(&mut c, entry, i);
                }
            }
        }
    }
    c.field(doc, "rows", "an array", Json::as_arr, |c, rows| {
        for (i, row) in rows.iter().enumerate() {
            check_row(c, row, i);
        }
    });
    c.0
}

fn check_pass(c: &mut Checker, entry: &Json, i: usize) {
    let what = format!("passes[{i}]");
    if entry.as_obj().is_none() {
        c.push(what, "must be an object");
        return;
    }
    c.field(
        entry,
        &format!("{what}.pass"),
        "a string",
        Json::as_str,
        |c, s| {
            if !KNOWN_PASSES.contains(&s) {
                c.push(
                    format!("{what}.pass"),
                    format!("unknown pass {s:?} (expected one of {KNOWN_PASSES:?})"),
                );
            }
        },
    );
    c.field(
        entry,
        &format!("{what}.actors"),
        "an array",
        Json::as_arr,
        |c, actors| {
            for (j, a) in actors.iter().enumerate() {
                if !matches!(a.as_str(), Some(s) if !s.is_empty()) {
                    c.push(format!("{what}.actors[{j}]"), "must be a non-empty string");
                }
            }
        },
    );
}

fn check_row(c: &mut Checker, row: &Json, i: usize) {
    let what = format!("rows[{i}]");
    if row.as_obj().is_none() {
        c.push(what, "must be an object");
        return;
    }
    c.field(
        row,
        &format!("{what}.benchmark"),
        "a string",
        Json::as_str,
        |c, s| {
            if s.is_empty() {
                c.push(format!("{what}.benchmark"), "must be non-empty");
            }
        },
    );
    if let Some(b) = row.get("baseline") {
        if b.as_bool().is_none() {
            c.push(format!("{what}.baseline"), "must be a boolean");
        }
    }
    c.field(
        row,
        &format!("{what}.metrics"),
        "an object",
        Json::as_obj,
        |c, metrics| {
            for (k, v) in metrics {
                if v.as_num().is_none() {
                    c.push(format!("{what}.metrics.{k}"), "must be a finite number");
                }
            }
        },
    );
    c.field(
        row,
        &format!("{what}.counters"),
        "an object",
        Json::as_obj,
        |c, counters| {
            for (k, v) in counters {
                if get_uint(v).is_none() {
                    c.push(
                        format!("{what}.counters.{k}"),
                        "must be a non-negative integer",
                    );
                }
            }
        },
    );
}

/// Non-fatal observations about an otherwise valid document: unknown
/// top-level keys (typo'd fields silently skip validation) and rows that
/// carry no data at all.
pub fn warnings(doc: &Json) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(fields) = doc.as_obj() else {
        return out;
    };
    const KNOWN: [&str; 11] = [
        "schema_version",
        "name",
        "machine",
        "simd_width",
        "created_unix_ms",
        "exec_mode",
        "kernel_backend",
        "kernel_tier",
        "batched_firings",
        "passes",
        "rows",
    ];
    for (k, _) in fields {
        if !KNOWN.contains(&k.as_str()) {
            out.push(Violation {
                path: k.clone(),
                message: "unknown top-level field (not part of the schema)".into(),
            });
        }
    }
    if let Some(rows) = doc.get("rows").and_then(Json::as_arr) {
        if rows.is_empty() {
            out.push(Violation {
                path: "rows".into(),
                message: "report carries no rows".into(),
            });
        }
        for (i, row) in rows.iter().enumerate() {
            let empty = |key: &str| {
                row.get(key)
                    .and_then(Json::as_obj)
                    .is_some_and(|m| m.is_empty())
            };
            if empty("metrics") && empty("counters") {
                out.push(Violation {
                    path: format!("rows[{i}]"),
                    message: "row has no metrics and no counters".into(),
                });
            }
        }
        // Cross-check: a row claiming a region-transform measurement must
        // be backed by a recorded region pass with at least one actor —
        // otherwise the row timed a graph the transform silently skipped.
        let region_backed = doc.get("passes").and_then(Json::as_arr).is_some_and(|ps| {
            ps.iter().any(|p| {
                p.get("pass").and_then(Json::as_str) == Some("region")
                    && p.get("actors")
                        .and_then(Json::as_arr)
                        .is_some_and(|a| !a.is_empty())
            })
        });
        for (i, row) in rows.iter().enumerate() {
            let is_region = row
                .get("benchmark")
                .and_then(Json::as_str)
                .is_some_and(|b| b.starts_with("region_"));
            if is_region && !region_backed {
                out.push(Violation {
                    path: format!("rows[{i}]"),
                    message: "region_* row without a \"region\" entry in passes \
                              (did the region transform actually fire?)"
                        .into(),
                });
            }
        }
    }
    out
}

/// Validate a parsed document against the version-1 schema.
///
/// # Errors
/// Returns the first violation as a human-readable message (use [`check`]
/// to collect all of them).
pub fn validate(doc: &Json) -> Result<(), String> {
    match check(doc).into_iter().next() {
        Some(v) => Err(v.to_string()),
        None => Ok(()),
    }
}

/// Parse and validate a report document in one call.
///
/// # Errors
/// Returns a parse error or the first schema violation.
pub fn validate_str(input: &str) -> Result<(), String> {
    validate(&json::parse(input)?)
}

/// Parse a document and collect every schema violation.
///
/// # Errors
/// Returns the parse error when the input is not JSON at all.
pub fn check_str(input: &str) -> Result<Vec<Violation>, String> {
    Ok(check(&json::parse(input)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("fig11", "core_i7_sse4", 4);
        r.push_row(
            BenchRow::new("FMRadio")
                .metric("improvement_pct", 12.5)
                .counter("iters", 50),
        );
        r.push_row(BenchRow::new("DCT").metric("improvement_pct", 40.0));
        r
    }

    #[test]
    fn emitted_report_validates() {
        let s = sample().json_string();
        validate_str(&s).unwrap();
    }

    #[test]
    fn file_name_is_canonical() {
        assert_eq!(sample().file_name(), "BENCH_fig11.json");
    }

    #[test]
    fn exec_mode_is_optional_but_nonempty() {
        let stamped = sample().with_exec_mode("bytecode");
        let s = stamped.json_string();
        assert!(s.contains("\"exec_mode\": \"bytecode\""));
        validate_str(&s).unwrap();
        // Absent: still valid, and not emitted at all.
        let plain = sample().json_string();
        assert!(!plain.contains("exec_mode"));
        validate_str(&plain).unwrap();
        // Present but empty: rejected.
        let bad = r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"exec_mode":"","rows":[]}"#;
        assert!(validate_str(bad).unwrap_err().contains("exec_mode"));
    }

    #[test]
    fn kernel_fields_are_optional_and_typed() {
        let stamped = sample()
            .with_kernel_backend("avx2")
            .with_kernel_tier("sse2")
            .with_batched_firings(128);
        let s = stamped.json_string();
        assert!(s.contains("\"kernel_backend\": \"avx2\""));
        assert!(s.contains("\"kernel_tier\": \"sse2\""));
        assert!(s.contains("\"batched_firings\": 128"));
        validate_str(&s).unwrap();
        // Known fields: must not trip the unknown-key warning either.
        let doc = json::parse(&s).unwrap();
        assert!(warnings(&doc).iter().all(|w| w.path != "kernel_backend"
            && w.path != "kernel_tier"
            && w.path != "batched_firings"));
        // Absent (older baselines): still valid, not emitted.
        let plain = sample().json_string();
        assert!(
            !plain.contains("kernel_backend")
                && !plain.contains("kernel_tier")
                && !plain.contains("batched_firings")
        );
        validate_str(&plain).unwrap();
        // Wrong types: rejected.
        let bad = r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"kernel_backend":7,"rows":[]}"#;
        assert!(validate_str(bad).unwrap_err().contains("kernel_backend"));
        let bad = r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"batched_firings":-3,"rows":[]}"#;
        assert!(validate_str(bad).unwrap_err().contains("batched_firings"));
        // kernel_tier must name a tier the matrix recognizes.
        let bad = r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"kernel_tier":"avx512","rows":[]}"#;
        assert!(validate_str(bad).unwrap_err().contains("kernel_tier"));
        let bad = r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"kernel_tier":7,"rows":[]}"#;
        assert!(validate_str(bad).unwrap_err().contains("kernel_tier"));
    }

    #[test]
    fn baseline_flag_round_trips() {
        let mut r = BenchReport::new("runtime", "core_i7_sse4", 4);
        r.push_row(
            BenchRow::new("FilterBank@1")
                .as_baseline()
                .metric("nanos_per_iter", 100.0),
        );
        r.push_row(
            BenchRow::new("FilterBank@2")
                .metric("nanos_per_iter", 60.0)
                .metric("speedup", 1.67),
        );
        let s = r.json_string();
        assert!(s.contains("\"baseline\": true"));
        validate_str(&s).unwrap();
        // Unflagged rows stay flag-free on the wire.
        assert_eq!(s.matches("baseline").count(), 1);
        // Non-boolean flag is rejected.
        let bad = r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[{"benchmark":"b","baseline":1,"metrics":{},"counters":{}}]}"#;
        assert!(validate_str(bad).unwrap_err().contains("baseline"));
    }

    #[test]
    fn passes_round_trip_and_validate() {
        let mut r = sample();
        r.push_pass("region", vec!["iir_bank_r4".into(), "acc_norm_r4".into()]);
        r.push_pass("single_actor", vec!["vmix_v4".into()]);
        let s = r.json_string();
        assert!(s.contains("\"pass\": \"region\""));
        assert!(s.contains("\"iir_bank_r4\""));
        validate_str(&s).unwrap();
        let doc = json::parse(&s).unwrap();
        assert!(warnings(&doc).iter().all(|w| w.path != "passes"));
        // Absent: valid, not emitted.
        let plain = sample().json_string();
        assert!(!plain.contains("passes"));
        validate_str(&plain).unwrap();
        // Unknown pass name: rejected.
        let bad = r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"passes":[{"pass":"mystery","actors":[]}],"rows":[]}"#;
        assert!(validate_str(bad).unwrap_err().contains("unknown pass"));
        // Malformed shapes: rejected with the offending path.
        let bad = r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"passes":7,"rows":[]}"#;
        assert!(validate_str(bad).unwrap_err().contains("passes"));
        let bad = r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"passes":[{"pass":"region","actors":[""]}],"rows":[]}"#;
        assert!(validate_str(bad).unwrap_err().contains("actors[0]"));
    }

    #[test]
    fn region_row_requires_region_pass() {
        // A region_* row with no recorded region pass warns; adding the
        // pass entry clears it. Schema-valid either way (the cross-check
        // is a warning so hand-pinned gate baselines stay loadable).
        let mut r = BenchReport::new("hot", "m", 4);
        r.push_row(BenchRow::new("region_iir_bank").metric("region_vs_scalar_speedup_best", 1.9));
        let doc = json::parse(&r.json_string()).unwrap();
        assert!(check(&doc).is_empty());
        assert!(
            warnings(&doc)
                .iter()
                .any(|w| w.message.contains("region_* row")),
            "missing region pass should warn"
        );
        r.push_pass("region", vec!["iir_bank_r4".into()]);
        let doc = json::parse(&r.json_string()).unwrap();
        assert!(check(&doc).is_empty());
        assert!(warnings(&doc).is_empty());
        // An empty actors list does not count as backing.
        let mut r2 = BenchReport::new("hot", "m", 4);
        r2.push_row(BenchRow::new("region_iir_bank").metric("x", 1.0));
        r2.push_pass("region", Vec::new());
        let doc = json::parse(&r2.json_string()).unwrap();
        assert!(warnings(&doc)
            .iter()
            .any(|w| w.message.contains("region_* row")));
    }

    #[test]
    fn non_finite_metric_is_coerced() {
        let row = BenchRow::new("x").metric("speedup", f64::NAN);
        assert_eq!(row.metrics[0].1, 0.0);
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join("macross_telemetry_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample().write_to_dir(&dir).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        validate_str(&read).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn validator_rejects_bad_shapes() {
        let cases = [
            ("[]", "object"),
            (r#"{"name":"x"}"#, "schema_version"),
            (
                r#"{"schema_version":2,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[]}"#,
                "schema_version",
            ),
            (
                r#"{"schema_version":1,"name":"","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[]}"#,
                "non-empty",
            ),
            (
                r#"{"schema_version":1,"name":"x","machine":"m","simd_width":0,"created_unix_ms":0,"rows":[]}"#,
                "simd_width",
            ),
            (
                r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[{"benchmark":"b","metrics":{"a":"nope"},"counters":{}}]}"#,
                "metrics",
            ),
            (
                r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[{"benchmark":"b","metrics":{},"counters":{"c":-1}}]}"#,
                "counters",
            ),
            (
                r#"{"schema_version":1,"name":"x","machine":"m","simd_width":4,"created_unix_ms":0,"rows":[{"metrics":{},"counters":{}}]}"#,
                "benchmark",
            ),
        ];
        for (doc, needle) in cases {
            let err = validate_str(doc).unwrap_err();
            assert!(
                err.contains(needle),
                "error {err:?} should mention {needle:?}"
            );
        }
    }
}
