//! The recording facade the runtime and VM hooks talk to.
//!
//! Exactly one of two implementations is compiled, selected by the
//! `trace` cargo feature:
//!
//! * **enabled** — [`TraceSession`] owns one [`EventRing`] per worker and
//!   [`WorkerTrace`] handles push timestamped events into them;
//! * **disabled** (default) — both types are zero-sized, every method is
//!   an empty `#[inline]` body, and hook call sites compile to nothing.
//!   A unit test pins the zero-size property down.
//!
//! Both variants expose the *same* API, so instrumented code never needs
//! `#[cfg]` at the call site.

use crate::event::{Event, EventKind};

#[cfg(feature = "trace")]
mod imp {
    use super::*;
    use crate::ring::EventRing;
    use std::sync::Arc;

    /// A recording session: one event ring per worker thread.
    pub struct TraceSession {
        rings: Vec<Arc<EventRing>>,
    }

    impl TraceSession {
        /// A session with `workers` rings of `capacity_per_worker` events
        /// each.
        pub fn new(workers: usize, capacity_per_worker: usize) -> TraceSession {
            TraceSession {
                rings: (0..workers)
                    .map(|_| Arc::new(EventRing::with_capacity(capacity_per_worker)))
                    .collect(),
            }
        }

        /// A session that records nothing (all handles are inert).
        pub fn disabled() -> TraceSession {
            TraceSession { rings: Vec::new() }
        }

        /// Whether this session can record anything at all.
        pub fn enabled(&self) -> bool {
            !self.rings.is_empty()
        }

        /// The recording handle for worker `i` (inert when out of range or
        /// the session is disabled).
        pub fn worker(&self, i: usize) -> WorkerTrace {
            WorkerTrace {
                ring: self.rings.get(i).cloned(),
            }
        }

        /// Drain all rings into one `(worker, event)` list, merged and
        /// sorted by timestamp.
        pub fn drain(&self) -> Vec<(u32, Event)> {
            let mut out: Vec<(u32, Event)> = Vec::new();
            for (w, ring) in self.rings.iter().enumerate() {
                out.extend(ring.drain().into_iter().map(|e| (w as u32, e)));
            }
            out.sort_by_key(|(_, e)| e.ts_ns);
            out
        }

        /// Total events dropped across all rings (full-ring rejections).
        pub fn dropped(&self) -> u64 {
            self.rings.iter().map(|r| r.dropped()).sum()
        }
    }

    /// One worker's recording handle.
    #[derive(Clone, Default)]
    pub struct WorkerTrace {
        pub(super) ring: Option<Arc<EventRing>>,
    }

    impl WorkerTrace {
        /// A handle that records nothing.
        pub fn disabled() -> WorkerTrace {
            WorkerTrace { ring: None }
        }

        /// Whether records actually land anywhere.
        #[inline]
        pub fn active(&self) -> bool {
            self.ring.is_some()
        }

        /// Record one event, stamped with the current time.
        #[inline]
        pub fn record(&self, kind: EventKind, subject: u32, aux: u64) {
            if let Some(ring) = &self.ring {
                ring.push(Event::now(kind, subject, aux));
            }
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::*;

    /// Inert session: the `trace` feature is off, nothing is recorded.
    #[derive(Clone, Copy, Default)]
    pub struct TraceSession;

    impl TraceSession {
        /// Inert (the feature is off).
        pub fn new(_workers: usize, _capacity_per_worker: usize) -> TraceSession {
            TraceSession
        }

        /// Inert.
        pub fn disabled() -> TraceSession {
            TraceSession
        }

        /// Always `false` without the `trace` feature.
        pub fn enabled(&self) -> bool {
            false
        }

        /// An inert zero-sized handle.
        pub fn worker(&self, _i: usize) -> WorkerTrace {
            WorkerTrace
        }

        /// Always empty without the `trace` feature.
        pub fn drain(&self) -> Vec<(u32, Event)> {
            Vec::new()
        }

        /// Always 0 without the `trace` feature.
        pub fn dropped(&self) -> u64 {
            0
        }
    }

    /// Zero-sized no-op recording handle.
    #[derive(Clone, Copy, Default)]
    pub struct WorkerTrace;

    impl WorkerTrace {
        /// An inert zero-sized handle.
        pub fn disabled() -> WorkerTrace {
            WorkerTrace
        }

        /// Always `false` without the `trace` feature.
        #[inline(always)]
        pub fn active(&self) -> bool {
            false
        }

        /// Compiles to nothing.
        #[inline(always)]
        pub fn record(&self, _kind: EventKind, _subject: u32, _aux: u64) {}
    }
}

pub use imp::{TraceSession, WorkerTrace};

#[cfg(test)]
mod tests {
    use super::*;

    /// With the feature off the hooks must be free: the handle is
    /// zero-sized, `record` does nothing, and a drain yields nothing.
    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_build_hooks_are_no_ops() {
        assert_eq!(std::mem::size_of::<WorkerTrace>(), 0);
        assert_eq!(std::mem::size_of::<TraceSession>(), 0);
        let session = TraceSession::new(4, 1 << 16);
        assert!(!session.enabled());
        let t = session.worker(0);
        assert!(!t.active());
        for i in 0..1000 {
            t.record(EventKind::FiringStart, i, 0);
        }
        assert!(session.drain().is_empty());
        assert_eq!(session.dropped(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn enabled_session_records_and_merges() {
        let session = TraceSession::new(2, 64);
        assert!(session.enabled());
        session.worker(0).record(EventKind::FiringStart, 7, 0);
        session.worker(1).record(EventKind::FiringEnd, 7, 42);
        // Out-of-range worker handles are inert rather than panicking.
        let inert = session.worker(9);
        assert!(!inert.active());
        inert.record(EventKind::Park, 0, 0);
        let events = session.drain();
        assert_eq!(events.len(), 2);
        assert!(events.windows(2).all(|w| w[0].1.ts_ns <= w[1].1.ts_ns));
        let workers: Vec<u32> = events.iter().map(|(w, _)| *w).collect();
        assert!(workers.contains(&0) && workers.contains(&1));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn disabled_session_is_inert_even_when_feature_on() {
        let session = TraceSession::disabled();
        assert!(!session.enabled());
        let t = session.worker(0);
        assert!(!t.active());
        t.record(EventKind::FiringStart, 1, 0);
        assert!(session.drain().is_empty());
    }
}
