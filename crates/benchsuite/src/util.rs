//! Shared building blocks for the benchmark suite: deterministic sources
//! and common actor shapes.

use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::types::{ScalarTy, Ty};

/// A deterministic `f32` source: emits a bounded counter scaled by `step`,
/// wrapping at `modulus` so every value stays exactly representable.
/// Stateful, so it is never SIMDized — like the file readers of the
/// StreamIt benchmarks.
pub fn source_f32(name: &str, push: usize, modulus: i32, step: f32) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 0, 0, push, ScalarTy::F32);
    let n = fb.state("n", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        for _ in 0..push {
            b.push(cast(ScalarTy::F32, v(n)) * step);
            b.set(n, (v(n) + 1i32) % modulus);
        }
    });
    fb.build_spec()
}

/// A deterministic `i32` source: linear congruential sequence (wrapping),
/// masked to keep values in a friendly range.
pub fn source_i32(name: &str, push: usize, mask: i32) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 0, 0, push, ScalarTy::I32);
    let n = fb.state("n", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        for _ in 0..push {
            b.push(v(n) & mask);
            b.set(n, v(n) * 1103515245i32 + 12345i32);
        }
    });
    fb.build_spec()
}

/// A sliding-window FIR filter: `taps` coefficients generated in `init`
/// from the closed form `scale * cos(freq * i)` (so isomorphic copies with
/// different `freq`/`scale` merge horizontally). Peeks `taps`, pops 1,
/// pushes 1. Stateless.
pub fn fir(name: &str, taps: usize, freq: f32, scale: f32) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, taps, 1, 1, ScalarTy::F32);
    let coef = fb.state("coef", Ty::Array(ScalarTy::F32, taps));
    let k = fb.local("k", Ty::Scalar(ScalarTy::I32));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let acc = fb.local("acc", Ty::Scalar(ScalarTy::F32));
    let junk = fb.local("junk", Ty::Scalar(ScalarTy::F32));
    fb.init(move |b| {
        b.for_(k, taps as i32, |b| {
            b.set_idx(coef, v(k), cos(cast(ScalarTy::F32, v(k)) * freq) * scale);
        });
    });
    fb.work(move |b| {
        b.set(acc, 0.0f32);
        b.for_(i, taps as i32, |b| {
            b.set(acc, v(acc) + peek(v(i)) * idx(coef, v(i)));
        });
        b.set(junk, pop());
        b.push(v(acc));
    });
    fb.build_spec()
}

/// A decimator: pops `factor`, pushes the first sample. Stateless.
pub fn downsample(name: &str, factor: usize) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, factor, factor, 1, ScalarTy::F32);
    let x = fb.local("x", Ty::Scalar(ScalarTy::F32));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let junk = fb.local("junk", Ty::Scalar(ScalarTy::F32));
    fb.work(move |b| {
        b.set(x, pop());
        b.for_(i, (factor - 1) as i32, |b| {
            b.set(junk, pop());
        });
        b.push(v(x));
    });
    fb.build_spec()
}

/// An expander: pops 1, pushes the sample followed by `factor - 1` zeros.
pub fn upsample(name: &str, factor: usize) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 1, 1, factor, ScalarTy::F32);
    let x = fb.local("x", Ty::Scalar(ScalarTy::F32));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.set(x, pop());
        b.push(v(x));
        b.for_(i, (factor - 1) as i32, |b| {
            b.push(0.0f32);
        });
    });
    fb.build_spec()
}

/// Element-wise gain. Stateless, pop 1 push 1.
pub fn amplify(name: &str, gain: f32) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::F32);
    fb.work(move |b| {
        b.push(pop() * gain);
    });
    fb.build_spec()
}

/// A one-pole smoother: `env = a*env + (1-a)*|x|`. **Stateful.**
pub fn envelope(name: &str, a: f32) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::F32);
    let env = fb.state("env", Ty::Scalar(ScalarTy::F32));
    fb.work(move |b| {
        b.set(env, v(env) * a + abs(pop()) * (1.0 - a));
        b.push(v(env));
    });
    fb.build_spec()
}

/// An `n`-deep delay line. **Stateful.**
pub fn delay(name: &str, n: usize) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::F32);
    let line = fb.state("line", Ty::Array(ScalarTy::F32, n));
    let ph = fb.state("ph", Ty::Scalar(ScalarTy::I32));
    let k = fb.local("k", Ty::Scalar(ScalarTy::I32));
    fb.init(move |b| {
        b.for_(k, n as i32, |b| {
            b.set_idx(line, v(k), 0.0f32);
        });
    });
    fb.work(move |b| {
        b.push(idx(line, v(ph)));
        b.set_idx(line, v(ph), pop());
        b.set(ph, (v(ph) + 1i32) % (n as i32));
    });
    fb.build_spec()
}

/// Sum `n` interleaved streams: pops `n`, pushes their sum. Stateless.
pub fn adder(name: &str, n: usize) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, n, n, 1, ScalarTy::F32);
    let acc = fb.local("acc", Ty::Scalar(ScalarTy::F32));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.set(acc, 0.0f32);
        b.for_(i, n as i32, |b| {
            b.set(acc, v(acc) + pop());
        });
        b.push(v(acc));
    });
    fb.build_spec()
}
