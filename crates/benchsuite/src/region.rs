//! Region-state benchmarks (stateful SIMDization): actors whose state
//! splits into `R` identical per-channel regions with firing `i` touching
//! only region `i mod R`. Both workloads carry a [`RegionSpec`] annotation
//! so the driver's region pass can vectorize them lane-per-region — the
//! actors the classic transforms refuse because they are stateful.
//!
//! [`RegionSpec`]: macross_streamir::RegionSpec

use crate::util::*;
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::graph::Graph;
use macross_streamir::types::{ScalarTy, Ty};

/// Number of interleaved channels in both region benchmarks.
pub const CHANNELS: usize = 8;

/// Smoothing pole shared by every cascade stage of the IIR bank.
pub const IIR_POLE: f32 = 0.75;

/// Multiplier of the accumulator normalizer's first mixing round.
pub const ACC_MULT: i64 = 2654435761;

/// Multiplier of the second mixing round (positive 64-bit LCG constant).
pub const MIX_MULT: i64 = 6364136223846793005;

/// RegionIIRBank: 8 interleaved audio channels through a bank of
/// eight-stage cascaded one-pole IIR smoothers, one filter state per
/// channel and per stage. Firing `k` filters channel `k mod 8` with its
/// own `s1..s8[c]`, so the actor is stateful but the state is
/// region-splittable: 8 regions become two 4-lane panels at SSE width.
pub fn region_iir_bank() -> Graph {
    let mut fb = FilterBuilder::new("iir_bank", 1, 1, 1, ScalarTy::F32);
    let cur = fb.region_cursor("cur", CHANNELS);
    let stages: Vec<_> = (1..=8)
        .map(|s| fb.region_var(format!("s{s}"), ScalarTy::F32))
        .collect();
    let j = fb.local("j", Ty::Scalar(ScalarTy::I32));
    let x = fb.local("x", Ty::Scalar(ScalarTy::F32));
    let st = stages.clone();
    fb.init(move |b| {
        b.for_(j, CHANNELS as i32, |b| {
            for (i, &s) in st.iter().enumerate() {
                b.set_idx(
                    s,
                    v(j),
                    cast(ScalarTy::F32, v(j)) * (0.125 * (i + 1) as f32),
                );
            }
        });
    });
    let st = stages.clone();
    fb.work(move |b| {
        b.set(x, pop());
        for &s in &st {
            b.set_idx(
                s,
                v(cur),
                idx(s, v(cur)) * IIR_POLE + v(x) * (1.0 - IIR_POLE),
            );
            b.set(x, idx(s, v(cur)));
        }
        b.push(v(x));
        b.set(cur, (v(cur) + 1i32) % c(CHANNELS as i32));
    });
    StreamSpec::pipeline(vec![
        source_f32("rib_src", 8, 4096, 0.001),
        fb.build_spec(),
        amplify("rib_out", 2.0),
        StreamSpec::Sink,
    ])
    .build()
    .expect("region_iir_bank builds")
}

/// RegionAccNorm: 8 interleaved counters with a hash-style normalizer.
/// Each firing accumulates into its channel's `i64` running sum, then
/// mixes it through murmur-style rounds (64-bit multiplies, xor-shifts)
/// and emits a truncated, compare-biased `i32` — exercising the
/// integer-heavy kernel ops (i64 multiply, integer compare) on
/// region-panel state.
pub fn region_acc_norm() -> Graph {
    let mut fb = FilterBuilder::new("acc_norm", 1, 1, 1, ScalarTy::I32);
    let cur = fb.region_cursor("cur", CHANNELS);
    let acc = fb.region_var("acc", ScalarTy::I64);
    let j = fb.local("j", Ty::Scalar(ScalarTy::I32));
    let m = fb.local("m", Ty::Scalar(ScalarTy::I64));
    let over = fb.local("over", Ty::Scalar(ScalarTy::I32));
    fb.init(|b| {
        b.for_(j, CHANNELS as i32, |b| {
            b.set_idx(acc, v(j), cast(ScalarTy::I64, v(j) * 1000i32));
        });
    });
    fb.work(|b| {
        b.set_idx(acc, v(cur), idx(acc, v(cur)) + cast(ScalarTy::I64, pop()));
        b.set(m, idx(acc, v(cur)) * c(ACC_MULT));
        b.set(m, (v(m) ^ (v(m) >> c(31i64))) * c(MIX_MULT));
        b.set(m, v(m) ^ (v(m) >> c(33i64)));
        b.set(over, gt(v(m), c(0i64)) + lt(v(m), c(-(1i64 << 40))));
        b.push(cast(ScalarTy::I32, v(m) >> c(20i64)) + v(over));
        b.set(cur, (v(cur) + 1i32) % c(CHANNELS as i32));
    });

    // A stateless i32 tail so the graph also exercises mixed region +
    // single-actor scheduling (Equation 1 across both widths).
    let mut tail = FilterBuilder::new("ran_mix", 1, 1, 1, ScalarTy::I32);
    tail.work(|b| {
        b.push((pop() ^ c(0x5a5ai32)) * 3i32);
    });

    StreamSpec::pipeline(vec![
        source_i32("ran_src", 8, 0x7fff),
        fb.build_spec(),
        tail.build_spec(),
        StreamSpec::Sink,
    ])
    .build()
    .expect("region_acc_norm builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross::driver::{macro_simdize, SimdizeOptions};
    use macross_sdf::Schedule;
    use macross_streamir::types::Value;
    use macross_vm::{run_scheduled, Machine};

    /// The IIR bank against a closed-form scalar oracle computed in plain
    /// Rust with identical f32 arithmetic.
    #[test]
    fn iir_bank_matches_scalar_oracle() {
        let g = region_iir_bank();
        let sched = Schedule::compute(&g).unwrap();
        let r = run_scheduled(&g, &sched, &Machine::core_i7(), 16).unwrap();
        assert!(r.output.len() >= CHANNELS * 4);
        let mut s = [[0.0f32; CHANNELS]; 8];
        for (i, stage) in s.iter_mut().enumerate() {
            for (j, slot) in stage.iter_mut().enumerate() {
                *slot = j as f32 * (0.125 * (i + 1) as f32);
            }
        }
        let mut n = 0i32;
        for (k, out) in r.output.iter().enumerate() {
            let mut x = n as f32 * 0.001;
            n = (n + 1) % 4096;
            let ch = k % CHANNELS;
            for stage in s.iter_mut() {
                stage[ch] = stage[ch] * IIR_POLE + x * (1.0 - IIR_POLE);
                x = stage[ch];
            }
            let expect = x * 2.0;
            assert!(
                out.bits_eq(Value::F32(expect)),
                "output {k}: {out:?} != {expect}"
            );
        }
    }

    /// The accumulator/normalizer against a wrapping-integer oracle.
    #[test]
    fn acc_norm_matches_scalar_oracle() {
        let g = region_acc_norm();
        let sched = Schedule::compute(&g).unwrap();
        let r = run_scheduled(&g, &sched, &Machine::core_i7(), 16).unwrap();
        assert!(r.output.len() >= CHANNELS * 4);
        let mut acc: Vec<i64> = (0..CHANNELS as i64).map(|j| j * 1000).collect();
        let mut n = 0i32;
        for (k, out) in r.output.iter().enumerate() {
            let x = n & 0x7fff;
            n = n.wrapping_mul(1103515245).wrapping_add(12345);
            let ch = k % CHANNELS;
            acc[ch] = acc[ch].wrapping_add(x as i64);
            let mut m = acc[ch].wrapping_mul(ACC_MULT);
            m = (m ^ (m >> 31)).wrapping_mul(MIX_MULT);
            m ^= m >> 33;
            let over = (m > 0) as i32 + (m < -(1i64 << 40)) as i32;
            let norm = ((m >> 20) as i32).wrapping_add(over);
            let expect = (norm ^ 0x5a5a).wrapping_mul(3);
            assert!(
                out.bits_eq(Value::I32(expect)),
                "output {k}: {out:?} != {expect}"
            );
        }
    }

    /// Both benchmarks trigger the region pass on the default machine and
    /// stay bit-exact through it (the suite-wide differential tests cover
    /// the full engine × worker matrix).
    #[test]
    fn region_pass_fires_on_both() {
        let m = Machine::core_i7();
        for (build, actor) in [
            (region_iir_bank as fn() -> Graph, "iir_bank_r4"),
            (region_acc_norm as fn() -> Graph, "acc_norm_r4"),
        ] {
            let g = build();
            let simd = macro_simdize(&g, &m, &SimdizeOptions::all()).unwrap();
            assert!(
                simd.report.region_actors.iter().any(|a| a == actor),
                "{actor}: region pass did not fire: {:?}",
                simd.report
            );
        }
    }
}
