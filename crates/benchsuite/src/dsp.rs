//! Signal-processing benchmarks: FMRadio, FilterBank, BeamFormer,
//! ChannelVocoder, AudioBeam.

use crate::util::*;
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::graph::Graph;
use macross_streamir::types::{ScalarTy, Ty};

/// FMRadio: low-pass front end, FM demodulation, and a multi-band
/// equalizer realized as a split-join of isomorphic band-pass filters.
///
/// Character (matches the paper's discussion): the demodulator peeks, so
/// vertical opportunities are small; the equalizer is horizontal-friendly.
pub fn fm_radio() -> Graph {
    // FM demodulator: phase difference of consecutive samples.
    let mut demod = FilterBuilder::new("fm_demod", 2, 1, 1, ScalarTy::F32);
    let cur = demod.local("cur", Ty::Scalar(ScalarTy::F32));
    let next = demod.local("next", Ty::Scalar(ScalarTy::F32));
    demod.work(|b| {
        b.set(next, peek(1i32));
        b.set(cur, pop());
        b.push(atan(v(cur) * v(next)) * 0.5f32);
    });

    let bands: Vec<StreamSpec> = (0..8)
        .map(|k| {
            fir(
                &format!("eq_band{k}"),
                16,
                0.05 + 0.02 * k as f32,
                1.0 / (k + 1) as f32,
            )
        })
        .collect();

    StreamSpec::pipeline(vec![
        source_f32("fm_src", 1, 4096, 0.001),
        fir("lowpass", 32, 0.02, 0.8),
        demod.build_spec(),
        StreamSpec::split_join_duplicate(1, bands),
        adder("eq_sum", 8),
        amplify("fm_out", 2.0),
        StreamSpec::Sink,
    ])
    .build()
    .expect("fm_radio builds")
}

/// FilterBank: 8 analysis/synthesis branches (band-pass, decimate,
/// expand, band-pass) with a per-branch stateful delay, so the pipelines
/// cannot collapse — horizontal SIMDization carries the benchmark, as in
/// the paper.
pub fn filter_bank() -> Graph {
    let branch = |k: usize| {
        StreamSpec::pipeline(vec![
            fir(&format!("analysis{k}"), 16, 0.03 + 0.01 * k as f32, 0.9),
            downsample(&format!("dec{k}"), 4),
            delay(&format!("state{k}"), 8),
            upsample(&format!("exp{k}"), 4),
            fir(&format!("synthesis{k}"), 16, 0.04 + 0.01 * k as f32, 1.1),
        ])
    };
    StreamSpec::pipeline(vec![
        source_f32("fb_src", 8, 2048, 0.002),
        StreamSpec::split_join_duplicate(1, (0..8).map(branch).collect()),
        adder("fb_sum", 8),
        StreamSpec::Sink,
    ])
    .build()
    .expect("filter_bank builds")
}

/// BeamFormer: duplicate-split beams, each with a stateful calibration
/// delay, a dot-product beam former, and a magnitude stage; the stateful
/// calibration blocks vertical fusion, so horizontal SIMDization is the
/// only option — exactly the paper's account of this benchmark.
pub fn beamformer() -> Graph {
    let beam = |k: usize| {
        // Dot product over a window of 8 with beam-specific weights.
        let mut bf = FilterBuilder::new(format!("beamform{k}"), 8, 8, 2, ScalarTy::F32);
        let w = bf.state("w", Ty::Array(ScalarTy::F32, 8));
        let j = bf.local("j", Ty::Scalar(ScalarTy::I32));
        let re = bf.local("re", Ty::Scalar(ScalarTy::F32));
        let im = bf.local("im", Ty::Scalar(ScalarTy::F32));
        let x = bf.local("x", Ty::Scalar(ScalarTy::F32));
        let wk = 0.1 + 0.05 * k as f32;
        bf.init(move |b| {
            b.for_(j, 8i32, |b| {
                b.set_idx(w, v(j), sin(cast(ScalarTy::F32, v(j)) * wk));
            });
        });
        bf.work(|b| {
            b.set(re, 0.0f32);
            b.set(im, 0.0f32);
            b.for_(j, 8i32, |b| {
                b.set(x, pop());
                b.set(re, v(re) + v(x) * idx(w, v(j)));
                b.set(im, v(im) + v(x) * idx(w, (v(j) + 1i32) % 8i32));
            });
            b.push(v(re));
            b.push(v(im));
        });

        let mut mag = FilterBuilder::new(format!("magnitude{k}"), 2, 2, 1, ScalarTy::F32);
        let r = mag.local("r", Ty::Scalar(ScalarTy::F32));
        let m = mag.local("m", Ty::Scalar(ScalarTy::F32));
        mag.work(|b| {
            b.set(r, pop());
            b.set(m, pop());
            b.push(sqrt(v(r) * v(r) + v(m) * v(m)));
        });

        StreamSpec::pipeline(vec![
            delay(&format!("calib{k}"), 4),
            bf.build_spec(),
            mag.build_spec(),
        ])
    };
    StreamSpec::pipeline(vec![
        source_f32("bm_src", 1, 1024, 0.01),
        StreamSpec::split_join_duplicate(1, (0..4).map(beam).collect()),
        adder("detect", 4),
        StreamSpec::Sink,
    ])
    .build()
    .expect("beamformer builds")
}

/// ChannelVocoder: 16 analysis channels (band-pass FIR + stateful
/// envelope follower) under a duplicate splitter.
pub fn channel_vocoder() -> Graph {
    let chan = |k: usize| {
        StreamSpec::pipeline(vec![
            fir(&format!("band{k}"), 16, 0.02 + 0.015 * k as f32, 1.0),
            envelope(&format!("env{k}"), 0.9),
        ])
    };
    StreamSpec::pipeline(vec![
        source_f32("cv_src", 1, 3000, 0.003),
        StreamSpec::split_join_duplicate(1, (0..16).map(chan).collect()),
        adder("cv_mix", 16),
        StreamSpec::Sink,
    ])
    .build()
    .expect("channel_vocoder builds")
}

/// AudioBeam: vectorizable compute actors *isolated* by stateful delay
/// stages, so vertical SIMDization finds no pipelines — matching the
/// paper's "most of the vectorizable actors ... are isolated from each
/// other and do not form a pipeline".
pub fn audio_beam() -> Graph {
    let sharpen = |name: &str, k: f32| {
        let mut fb = FilterBuilder::new(name, 4, 4, 4, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let t = fb.local("t", Ty::Scalar(ScalarTy::F32));
        fb.work(move |b| {
            b.for_(i, 4i32, |b| {
                b.set(t, pop());
                b.push(v(t) * k + sqrt(abs(v(t))) * 0.125f32);
            });
        });
        fb.build_spec()
    };
    StreamSpec::pipeline(vec![
        source_f32("ab_src", 4, 1536, 0.004),
        sharpen("steer1", 1.5),
        delay("tap1", 16),
        sharpen("steer2", 0.75),
        delay("tap2", 24),
        sharpen("steer3", 1.25),
        StreamSpec::Sink,
    ])
    .build()
    .expect("audio_beam builds")
}
