//! Transform benchmarks: DCT, FFT, TDE, BitonicSort — deep pipelines of
//! stateless block actors, the home turf of vertical SIMDization.

use crate::util::*;
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::graph::Graph;
use macross_streamir::types::{ScalarTy, Ty};

/// An 8-point transform actor `out[u] = sum_x in[x] * table[u*8+x]` with a
/// closed-form table filled in `init`. Stateless, pop 8, push 8.
fn transform8(name: &str, table_of: impl Fn(E, E) -> E + 'static) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 8, 8, 8, ScalarTy::F32);
    let table = fb.state("table", Ty::Array(ScalarTy::F32, 64));
    let input = fb.local("input", Ty::Array(ScalarTy::F32, 8));
    let u = fb.local("u", Ty::Scalar(ScalarTy::I32));
    let x = fb.local("x", Ty::Scalar(ScalarTy::I32));
    let acc = fb.local("acc", Ty::Scalar(ScalarTy::F32));
    fb.init(move |b| {
        b.for_(u, 8i32, |b| {
            b.for_(x, 8i32, |b| {
                b.set_idx(table, v(u) * 8i32 + v(x), table_of(v(u), v(x)));
            });
        });
    });
    fb.work(move |b| {
        b.for_(x, 8i32, |b| {
            b.set_idx(input, v(x), pop());
        });
        b.for_(u, 8i32, |b| {
            b.set(acc, 0.0f32);
            b.for_(x, 8i32, |b| {
                b.set(
                    acc,
                    v(acc) + idx(input, v(x)) * idx(table, v(u) * 8i32 + v(x)),
                );
            });
            b.push(v(acc));
        });
    });
    fb.build_spec()
}

/// Element-wise quantization: divide by a position-dependent step and
/// floor. Stateless, pop 8, push 8.
fn quantize(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 8, 8, 8, ScalarTy::F32);
    let q = fb.state("q", Ty::Array(ScalarTy::F32, 8));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    fb.init(move |b| {
        b.for_(i, 8i32, |b| {
            b.set_idx(q, v(i), cast(ScalarTy::F32, v(i) + 2i32));
        });
    });
    fb.work(move |b| {
        b.for_(i, 8i32, |b| {
            b.push(floor(pop() / idx(q, v(i))) * idx(q, v(i)));
        });
    });
    fb.build_spec()
}

/// DCT: forward 8-point DCT, quantize/dequantize, inverse DCT — a fully
/// stateless pipeline with power-of-two rates (permute- and SAGU-friendly,
/// as the paper's Figure 12 notes for DCT).
pub fn dct() -> Graph {
    StreamSpec::pipeline(vec![
        source_f32("dct_src", 8, 1024, 0.03),
        transform8("fdct", |u, x| {
            cos((u * (x * 2i32 + 1i32)).into_e_f32() * 0.19634954f32)
        }),
        quantize("quant"),
        transform8("idct", |u, x| {
            cos((x * (u * 2i32 + 1i32)).into_e_f32() * 0.19634954f32) * 0.25f32
        }),
        StreamSpec::Sink,
    ])
    .build()
    .expect("dct builds")
}

/// One radix-2 FFT butterfly stage over frames of 8 complex values
/// (16 interleaved floats). `span` is the butterfly distance; `inverse`
/// flips the twiddle sign. Stateless, pop 16, push 16.
fn fft_stage(name: &str, span: usize, inverse: bool) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 16, 16, 16, ScalarTy::F32);
    let wre = fb.state("wre", Ty::Array(ScalarTy::F32, 8));
    let wim = fb.state("wim", Ty::Array(ScalarTy::F32, 8));
    let re = fb.local("re", Ty::Array(ScalarTy::F32, 8));
    let im = fb.local("im", Ty::Array(ScalarTy::F32, 8));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let p = fb.local("p", Ty::Scalar(ScalarTy::I32));
    let q = fb.local("q", Ty::Scalar(ScalarTy::I32));
    let tr = fb.local("tr", Ty::Scalar(ScalarTy::F32));
    let ti = fb.local("ti", Ty::Scalar(ScalarTy::F32));
    let sign = if inverse { 1.0f32 } else { -1.0f32 };
    let spn = span as i32;
    fb.init(move |b| {
        b.for_(i, 8i32, |b| {
            // Twiddle for position i within its group of 2*span.
            let ang =
                cast(ScalarTy::F32, (v(i) % spn) * (8i32 / spn)) * std::f32::consts::FRAC_PI_4;
            b.set_idx(wre, v(i), cos(ang.clone()));
            b.set_idx(wim, v(i), sin(ang) * sign);
        });
    });
    fb.work(move |b| {
        b.for_(i, 8i32, |b| {
            b.set_idx(re, v(i), pop());
            b.set_idx(im, v(i), pop());
        });
        b.for_(i, 4i32, |b| {
            // p = lower index of the i-th butterfly, q = p + span.
            b.set(p, (v(i) / spn) * (spn * 2i32) + (v(i) % spn));
            b.set(q, v(p) + spn);
            b.set(
                tr,
                idx(re, v(q)) * idx(wre, v(p) % spn) - idx(im, v(q)) * idx(wim, v(p) % spn),
            );
            b.set(
                ti,
                idx(re, v(q)) * idx(wim, v(p) % spn) + idx(im, v(q)) * idx(wre, v(p) % spn),
            );
            b.set_idx(re, v(q), idx(re, v(p)) - v(tr));
            b.set_idx(im, v(q), idx(im, v(p)) - v(ti));
            b.set_idx(re, v(p), idx(re, v(p)) + v(tr));
            b.set_idx(im, v(p), idx(im, v(p)) + v(ti));
        });
        b.for_(i, 8i32, |b| {
            b.push(idx(re, v(i)));
            b.push(idx(im, v(i)));
        });
    });
    fb.build_spec()
}

/// Bit-reversal reorder over frames of 8 complex values. Stateless.
fn bit_reverse(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 16, 16, 16, ScalarTy::F32);
    let buf = fb.local("buf", Ty::Array(ScalarTy::F32, 16));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let r = fb.local("r", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.for_(i, 16i32, |b| {
            b.set_idx(buf, v(i), pop());
        });
        b.for_(i, 8i32, |b| {
            // 3-bit reversal of i.
            b.set(
                r,
                ((v(i) & 1i32) << 2i32) | (v(i) & 2i32) | ((v(i) & 4i32) >> 2i32),
            );
            b.push(idx(buf, v(r) * 2i32));
            b.push(idx(buf, v(r) * 2i32 + 1i32));
        });
    });
    fb.build_spec()
}

/// FFT: interleave real samples into complex frames, bit-reverse, three
/// butterfly stages.
pub fn fft() -> Graph {
    // Pack real samples into interleaved complex (imag = 0.5*x as a
    // deterministic stand-in for a second channel).
    let mut pack = FilterBuilder::new("pack_cplx", 8, 8, 16, ScalarTy::F32);
    let t = pack.local("t", Ty::Scalar(ScalarTy::F32));
    let i = pack.local("i", Ty::Scalar(ScalarTy::I32));
    pack.work(|b| {
        b.for_(i, 8i32, |b| {
            b.set(t, pop());
            b.push(v(t));
            b.push(v(t) * 0.5f32);
        });
    });
    StreamSpec::pipeline(vec![
        source_f32("fft_src", 8, 512, 0.01),
        pack.build_spec(),
        bit_reverse("bitrev"),
        fft_stage("fft_s1", 1, false),
        fft_stage("fft_s2", 2, false),
        fft_stage("fft_s4", 4, false),
        StreamSpec::Sink,
    ])
    .build()
    .expect("fft builds")
}

/// TDE (time-delay equalization): forward stages, a per-bin complex
/// multiply by the channel response, inverse stages — a very deep
/// stateless pipeline.
pub fn tde() -> Graph {
    let mut eqz = FilterBuilder::new("tde_equalize", 16, 16, 16, ScalarTy::F32);
    let hre = eqz.state("hre", Ty::Array(ScalarTy::F32, 8));
    let him = eqz.state("him", Ty::Array(ScalarTy::F32, 8));
    let i = eqz.local("i", Ty::Scalar(ScalarTy::I32));
    let ar = eqz.local("ar", Ty::Scalar(ScalarTy::F32));
    let ai = eqz.local("ai", Ty::Scalar(ScalarTy::F32));
    eqz.init(|b| {
        b.for_(i, 8i32, |b| {
            b.set_idx(hre, v(i), cos(cast(ScalarTy::F32, v(i)) * 0.3f32));
            b.set_idx(him, v(i), sin(cast(ScalarTy::F32, v(i)) * 0.15f32));
        });
    });
    eqz.work(|b| {
        b.for_(i, 8i32, |b| {
            b.set(ar, pop());
            b.set(ai, pop());
            b.push(v(ar) * idx(hre, v(i)) - v(ai) * idx(him, v(i)));
            b.push(v(ar) * idx(him, v(i)) + v(ai) * idx(hre, v(i)));
        });
    });
    StreamSpec::pipeline(vec![
        source_f32("tde_src", 16, 768, 0.005),
        bit_reverse("tde_rev_f"),
        fft_stage("tde_f1", 1, false),
        fft_stage("tde_f2", 2, false),
        fft_stage("tde_f4", 4, false),
        eqz.build_spec(),
        bit_reverse("tde_rev_i"),
        fft_stage("tde_i1", 1, true),
        fft_stage("tde_i2", 2, true),
        fft_stage("tde_i4", 4, true),
        amplify("tde_scale", 0.125),
        StreamSpec::Sink,
    ])
    .build()
    .expect("tde builds")
}

/// One bitonic compare-exchange round: distance `j`, block size `k`.
fn bitonic_round(name: &str, k: i32, j: i32) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 8, 8, 8, ScalarTy::F32);
    let arr = fb.local("arr", Ty::Array(ScalarTy::F32, 8));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let l = fb.local("l", Ty::Scalar(ScalarTy::I32));
    let a = fb.local("a", Ty::Scalar(ScalarTy::F32));
    let c = fb.local("c", Ty::Scalar(ScalarTy::F32));
    fb.work(move |b| {
        b.for_(i, 8i32, |b| {
            b.set_idx(arr, v(i), pop());
        });
        b.for_(i, 8i32, |b| {
            b.set(l, v(i) ^ j);
            b.if_(gt(v(l), v(i)), |b| {
                b.set(a, idx(arr, v(i)));
                b.set(c, idx(arr, v(l)));
                b.if_else(
                    eq(v(i) & k, 0i32),
                    |b| {
                        b.set_idx(arr, v(i), min(v(a), v(c)));
                        b.set_idx(arr, v(l), max(v(a), v(c)));
                    },
                    |b| {
                        b.set_idx(arr, v(i), max(v(a), v(c)));
                        b.set_idx(arr, v(l), min(v(a), v(c)));
                    },
                );
            });
        });
        b.for_(i, 8i32, |b| {
            b.push(idx(arr, v(i)));
        });
    });
    fb.build_spec()
}

/// BitonicSort: the full 8-element bitonic network as a pipeline of six
/// compare-exchange actors — stateless, min/max only, vertical-friendly.
pub fn bitonic_sort() -> Graph {
    StreamSpec::pipeline(vec![
        source_f32("bs_src", 8, 640, 0.07),
        bitonic_round("bs_k2_j1", 2, 1),
        bitonic_round("bs_k4_j2", 4, 2),
        bitonic_round("bs_k4_j1", 4, 1),
        bitonic_round("bs_k8_j4", 8, 4),
        bitonic_round("bs_k8_j2", 8, 2),
        bitonic_round("bs_k8_j1", 8, 1),
        StreamSpec::Sink,
    ])
    .build()
    .expect("bitonic_sort builds")
}

/// Helper: multiply an `i32`-typed [`E`] then cast to `f32` (used by the
/// DCT table closures).
trait IntoEF32 {
    fn into_e_f32(self) -> E;
}

impl IntoEF32 for E {
    fn into_e_f32(self) -> E {
        cast(ScalarTy::F32, self)
    }
}
