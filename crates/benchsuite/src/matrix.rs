//! Matrix multiplication benchmarks: MatrixMult and MatrixMultBlock.
//! Data-reordering stages around heavy compute make these the paper's
//! showcase for vertical SIMDization (MatrixMultBlock "benefits the most")
//! and for the SAGU (MatrixMult improved 22%).

use crate::util::*;
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::graph::Graph;
use macross_streamir::types::{ScalarTy, Ty};

/// Transpose a streamed 4x4 tile. Stateless reordering, pop 16, push 16.
fn transpose4(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 16, 16, 16, ScalarTy::F32);
    let buf = fb.local("buf", Ty::Array(ScalarTy::F32, 16));
    let r = fb.local("r", Ty::Scalar(ScalarTy::I32));
    let c = fb.local("c", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.for_(r, 16i32, |b| {
            b.set_idx(buf, v(r), pop());
        });
        b.for_(r, 4i32, |b| {
            b.for_(c, 4i32, |b| {
                b.push(idx(buf, v(c) * 4i32 + v(r)));
            });
        });
    });
    fb.build_spec()
}

/// Multiply a streamed 4x4 tile by a constant matrix held in state.
fn matmul4(name: &str, seed: f32) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 16, 16, 16, ScalarTy::F32);
    let bmat = fb.state("bmat", Ty::Array(ScalarTy::F32, 16));
    let a = fb.local("a", Ty::Array(ScalarTy::F32, 16));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let r = fb.local("r", Ty::Scalar(ScalarTy::I32));
    let c = fb.local("c", Ty::Scalar(ScalarTy::I32));
    let k = fb.local("k", Ty::Scalar(ScalarTy::I32));
    let acc = fb.local("acc", Ty::Scalar(ScalarTy::F32));
    fb.init(move |b| {
        b.for_(i, 16i32, |b| {
            b.set_idx(bmat, v(i), sin(cast(ScalarTy::F32, v(i)) * seed));
        });
    });
    fb.work(move |b| {
        b.for_(i, 16i32, |b| {
            b.set_idx(a, v(i), pop());
        });
        b.for_(r, 4i32, |b| {
            b.for_(c, 4i32, |b| {
                b.set(acc, 0.0f32);
                b.for_(k, 4i32, |b| {
                    b.set(
                        acc,
                        v(acc) + idx(a, v(r) * 4i32 + v(k)) * idx(bmat, v(k) * 4i32 + v(c)),
                    );
                });
                b.push(v(acc));
            });
        });
    });
    fb.build_spec()
}

/// MatrixMult: transpose -> multiply -> transpose back.
pub fn matrix_mult() -> Graph {
    StreamSpec::pipeline(vec![
        source_f32("mm_src", 16, 400, 0.02),
        transpose4("mm_t_in"),
        matmul4("mm_mul", 0.37),
        transpose4("mm_t_out"),
        StreamSpec::Sink,
    ])
    .build()
    .expect("matrix_mult builds")
}

/// Split an 8x4 stripe into two 4x4 blocks laid out block-contiguously
/// (the "block split" stage). Stateless reordering, pop 32, push 32.
fn block_split(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 32, 32, 32, ScalarTy::F32);
    let buf = fb.local("buf", Ty::Array(ScalarTy::F32, 32));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let r = fb.local("r", Ty::Scalar(ScalarTy::I32));
    let c = fb.local("c", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.for_(i, 32i32, |b| {
            b.set_idx(buf, v(i), pop());
        });
        // Block 0: columns 0..4 of each row; block 1: columns 4..8.
        b.for_(i, 2i32, |b| {
            b.for_(r, 4i32, |b| {
                b.for_(c, 4i32, |b| {
                    b.push(idx(buf, v(r) * 8i32 + v(i) * 4i32 + v(c)));
                });
            });
        });
    });
    fb.build_spec()
}

/// Multiply two streamed 4x4 blocks (A then B) into one 4x4 block.
fn block_multiply(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 32, 32, 16, ScalarTy::F32);
    let a = fb.local("a", Ty::Array(ScalarTy::F32, 16));
    let bb = fb.local("bb", Ty::Array(ScalarTy::F32, 16));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let r = fb.local("r", Ty::Scalar(ScalarTy::I32));
    let c = fb.local("c", Ty::Scalar(ScalarTy::I32));
    let k = fb.local("k", Ty::Scalar(ScalarTy::I32));
    let acc = fb.local("acc", Ty::Scalar(ScalarTy::F32));
    fb.work(move |b| {
        b.for_(i, 16i32, |b| {
            b.set_idx(a, v(i), pop());
        });
        b.for_(i, 16i32, |b| {
            b.set_idx(bb, v(i), pop());
        });
        b.for_(r, 4i32, |b| {
            b.for_(c, 4i32, |b| {
                b.set(acc, 0.0f32);
                b.for_(k, 4i32, |b| {
                    b.set(
                        acc,
                        v(acc) + idx(a, v(r) * 4i32 + v(k)) * idx(bb, v(k) * 4i32 + v(c)),
                    );
                });
                b.push(v(acc));
            });
        });
    });
    fb.build_spec()
}

/// Transpose each streamed 4x4 tile (B tiles are consumed transposed by
/// the blocked multiply). Pure data movement.
fn tile_transpose(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 16, 16, 16, ScalarTy::F32);
    let buf = fb.local("buf", Ty::Array(ScalarTy::F32, 16));
    let r = fb.local("r", Ty::Scalar(ScalarTy::I32));
    let c = fb.local("c", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.for_(r, 16i32, |b| {
            b.set_idx(buf, v(r), pop());
        });
        b.for_(r, 4i32, |b| {
            b.for_(c, 4i32, |b| {
                b.push(idx(buf, v(c) * 4i32 + v(r)));
            });
        });
    });
    fb.build_spec()
}

/// Re-interleave block-contiguous output into row-major order.
fn block_combine(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 16, 16, 16, ScalarTy::F32);
    let buf = fb.local("buf", Ty::Array(ScalarTy::F32, 16));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.for_(i, 16i32, |b| {
            b.set_idx(buf, v(i), pop());
        });
        b.for_(i, 16i32, |b| {
            // Swap the 2x2 sub-block order.
            b.push(idx(buf, ((v(i) & 3i32) << 2i32) | ((v(i) >> 2i32) & 3i32)));
        });
    });
    fb.build_spec()
}

/// MatrixMultBlock: blocked matrix multiply with explicit data-movement
/// stages — the pipeline whose pack/unpack elimination gives vertical
/// SIMDization its biggest win (114% in the paper's Figure 11).
pub fn matrix_mult_block() -> Graph {
    StreamSpec::pipeline(vec![
        source_f32("mmb_src", 32, 800, 0.015),
        block_split("mmb_split"),
        tile_transpose("mmb_tpose_a"),
        tile_transpose("mmb_tpose_b"),
        block_multiply("mmb_mul"),
        block_combine("mmb_combine"),
        tile_transpose("mmb_tpose_out"),
        StreamSpec::Sink,
    ])
    .build()
    .expect("matrix_mult_block builds")
}
