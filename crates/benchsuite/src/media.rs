//! MP3Decoder (simplified): a stateful bit-reader front end followed by
//! compute-heavy dequantization, antialiasing and an IMDCT-like stage.
//! High computation-to-communication ratio, so pack/unpack overheads —
//! and therefore the SAGU — barely matter, as the paper observes.

use crate::util::*;
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::graph::Graph;
use macross_streamir::types::{ScalarTy, Ty};

/// Stateful "Huffman" front end: accumulates a rolling code value and
/// emits scaled samples. Not SIMDizable (mutable state), like the real
/// decoder's bit reader.
fn decode(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::F32);
    let code = fb.state("code", Ty::Scalar(ScalarTy::I32));
    let x = fb.local("x", Ty::Scalar(ScalarTy::I32));
    fb.work(|b| {
        b.set(x, cast(ScalarTy::I32, pop()));
        b.set(code, ((v(code) << 3i32) ^ v(x)) & 0xffffi32);
        b.push(cast(ScalarTy::F32, v(code)) * 0.0001f32);
    });
    fb.build_spec()
}

/// Dequantization: `x * (|x| + 1)^(4/3)`-style power law — expensive
/// per-element math, an ideal SIMD target.
fn dequantize(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::F32);
    let x = fb.local("x", Ty::Scalar(ScalarTy::F32));
    fb.work(|b| {
        b.set(x, pop());
        b.push(v(x) * pow(abs(v(x)) + 1.0f32, 1.333333f32));
    });
    fb.build_spec()
}

/// Antialiasing butterflies over 16-sample granules with constant
/// coefficient tables.
fn antialias(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 16, 16, 16, ScalarTy::F32);
    let cs = fb.state("cs", Ty::Array(ScalarTy::F32, 8));
    let ca = fb.state("ca", Ty::Array(ScalarTy::F32, 8));
    let buf = fb.local("buf", Ty::Array(ScalarTy::F32, 16));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let lo = fb.local("lo", Ty::Scalar(ScalarTy::F32));
    let hi = fb.local("hi", Ty::Scalar(ScalarTy::F32));
    fb.init(|b| {
        b.for_(i, 8i32, |b| {
            b.set_idx(cs, v(i), cos(cast(ScalarTy::F32, v(i)) * 0.11f32));
            b.set_idx(ca, v(i), sin(cast(ScalarTy::F32, v(i)) * 0.07f32));
        });
    });
    fb.work(|b| {
        b.for_(i, 16i32, |b| {
            b.set_idx(buf, v(i), pop());
        });
        b.for_(i, 8i32, |b| {
            b.set(lo, idx(buf, 7i32 - v(i)));
            b.set(hi, idx(buf, 8i32 + v(i)));
            b.set_idx(
                buf,
                7i32 - v(i),
                v(lo) * idx(cs, v(i)) - v(hi) * idx(ca, v(i)),
            );
            b.set_idx(
                buf,
                8i32 + v(i),
                v(hi) * idx(cs, v(i)) + v(lo) * idx(ca, v(i)),
            );
        });
        b.for_(i, 16i32, |b| {
            b.push(idx(buf, v(i)));
        });
    });
    fb.build_spec()
}

/// IMDCT-like stage: each of 16 outputs is a weighted sum of 16 inputs
/// through a cosine table — the dominant compute of the decoder.
fn imdct(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 16, 16, 16, ScalarTy::F32);
    let table = fb.state("table", Ty::Array(ScalarTy::F32, 256));
    let input = fb.local("input", Ty::Array(ScalarTy::F32, 16));
    let u = fb.local("u", Ty::Scalar(ScalarTy::I32));
    let x = fb.local("x", Ty::Scalar(ScalarTy::I32));
    let acc = fb.local("acc", Ty::Scalar(ScalarTy::F32));
    fb.init(|b| {
        b.for_(u, 16i32, |b| {
            b.for_(x, 16i32, |b| {
                b.set_idx(
                    table,
                    v(u) * 16i32 + v(x),
                    cos(
                        cast(ScalarTy::F32, (v(u) * 2i32 + 1i32) * (v(x) * 2i32 + 1i32))
                            * 0.049_087_387_f32,
                    ),
                );
            });
        });
    });
    fb.work(|b| {
        b.for_(x, 16i32, |b| {
            b.set_idx(input, v(x), pop());
        });
        b.for_(u, 16i32, |b| {
            b.set(acc, 0.0f32);
            b.for_(x, 16i32, |b| {
                b.set(
                    acc,
                    v(acc) + idx(input, v(x)) * idx(table, v(u) * 16i32 + v(x)),
                );
            });
            b.push(v(acc) * 0.0625f32);
        });
    });
    fb.build_spec()
}

/// The simplified MP3 decoder pipeline.
pub fn mp3_decoder() -> Graph {
    StreamSpec::pipeline(vec![
        source_f32("mp3_src", 1, 8192, 0.5),
        decode("huffman"),
        dequantize("dequant"),
        antialias("antialias"),
        imdct("imdct"),
        StreamSpec::Sink,
    ])
    .build()
    .expect("mp3_decoder builds")
}
