//! Cipher benchmarks: DES (table-lookup S-boxes: partially vectorizable)
//! and Serpent (bitsliced S-boxes: fully vectorizable).

use crate::util::*;
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::graph::Graph;
use macross_streamir::types::{ScalarTy, Ty};

/// Key mixing round half: expansion-style shifts and a round-key XOR.
/// Pure bit manipulation — vectorizable.
fn des_mix(name: &str, round_key: i32) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 2, 2, 3, ScalarTy::I32);
    let l = fb.local("l", Ty::Scalar(ScalarTy::I32));
    let r = fb.local("r", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.set(l, pop());
        b.set(r, pop());
        b.push(v(l));
        b.push(v(r));
        // Expanded half-block: E(R) ^ K.
        b.push(((v(r) << 1i32) | ((v(r) >> 31i32) & 1i32)) ^ round_key);
    });
    fb.build_spec()
}

/// S-box substitution and Feistel swap. The S-box subscript depends on the
/// *data*, which is exactly the "pop-dependent array subscript" case of
/// Section 3.1 — this actor is **not** SIMDizable, as in real DES.
fn des_sbox(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 3, 3, 2, ScalarTy::I32);
    let sbox = fb.state("sbox", Ty::Array(ScalarTy::I32, 64));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let l = fb.local("l", Ty::Scalar(ScalarTy::I32));
    let r = fb.local("r", Ty::Scalar(ScalarTy::I32));
    let e = fb.local("e", Ty::Scalar(ScalarTy::I32));
    let f = fb.local("f", Ty::Scalar(ScalarTy::I32));
    fb.init(move |b| {
        b.for_(i, 64i32, |b| {
            b.set_idx(sbox, v(i), (v(i) * 37i32 + 11i32) & 255i32);
        });
    });
    fb.work(move |b| {
        b.set(l, pop());
        b.set(r, pop());
        b.set(e, pop());
        b.set(
            f,
            idx(sbox, v(e) & 63i32) ^ idx(sbox, (v(e) >> 6i32) & 63i32),
        );
        // Feistel swap: L' = R, R' = L ^ F.
        b.push(v(r));
        b.push(v(l) ^ v(f));
    });
    fb.build_spec()
}

/// Final permutation: static bit shuffling — vectorizable.
fn des_perm(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 2, 2, 2, ScalarTy::I32);
    let l = fb.local("l", Ty::Scalar(ScalarTy::I32));
    let r = fb.local("r", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.set(l, pop());
        b.set(r, pop());
        b.push(((v(l) & 0x0f0f0f0fi32) << 4i32) | ((v(l) >> 4i32) & 0x0f0f0f0fi32));
        b.push(((v(r) & 0x33333333i32) << 2i32) | ((v(r) >> 2i32) & 0x33333333i32));
    });
    fb.build_spec()
}

/// DES: four Feistel rounds. The mix/permute actors vectorize; the S-box
/// actors cannot (data-dependent subscripts), capping the benefit —
/// mirroring the benchmark's modest gains in the paper.
pub fn des() -> Graph {
    let mut stages = vec![source_i32("des_src", 2, 0x7fffffff)];
    for round in 0..4 {
        stages.push(des_mix(&format!("des_mix{round}"), 0x1234_5670 + round));
        stages.push(des_sbox(&format!("des_sbox{round}")));
    }
    stages.push(des_perm("des_fp"));
    stages.push(StreamSpec::Sink);
    StreamSpec::pipeline(stages).build().expect("des builds")
}

/// One bitsliced Serpent-style S-box layer: boolean expressions over four
/// words — no lookups, fully vectorizable.
fn serpent_sbox(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 4, 4, 4, ScalarTy::I32);
    let x0 = fb.local("x0", Ty::Scalar(ScalarTy::I32));
    let x1 = fb.local("x1", Ty::Scalar(ScalarTy::I32));
    let x2 = fb.local("x2", Ty::Scalar(ScalarTy::I32));
    let x3 = fb.local("x3", Ty::Scalar(ScalarTy::I32));
    let t = fb.local("t", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.set(x0, pop());
        b.set(x1, pop());
        b.set(x2, pop());
        b.set(x3, pop());
        // Serpent S0 boolean circuit (bitsliced form).
        b.set(t, v(x0) ^ v(x3));
        b.set(x3, v(x3) | v(x0));
        b.set(x0, v(x0) ^ v(x2));
        b.set(x2, (v(x2) & v(t)) ^ v(x1));
        b.set(x1, v(x1) ^ (v(t) & v(x3)));
        b.push(v(x2));
        b.push(v(x1) ^ v(x0));
        b.push(v(x3));
        b.push(v(t) ^ v(x2));
    });
    fb.build_spec()
}

/// Serpent's linear transformation: rotates and XORs — vectorizable.
fn serpent_lt(name: &str) -> StreamSpec {
    let rotl = |x: E, c: i32| (x.clone() << c) | ((x >> (32 - c)) & ((1i32 << c) - 1));
    let mut fb = FilterBuilder::new(name, 4, 4, 4, ScalarTy::I32);
    let x0 = fb.local("x0", Ty::Scalar(ScalarTy::I32));
    let x1 = fb.local("x1", Ty::Scalar(ScalarTy::I32));
    let x2 = fb.local("x2", Ty::Scalar(ScalarTy::I32));
    let x3 = fb.local("x3", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.set(x0, pop());
        b.set(x1, pop());
        b.set(x2, pop());
        b.set(x3, pop());
        b.set(x0, rotl(v(x0), 13));
        b.set(x2, rotl(v(x2), 3));
        b.set(x1, v(x1) ^ v(x0) ^ v(x2));
        b.set(x3, v(x3) ^ v(x2) ^ (v(x0) << 3i32));
        b.set(x1, rotl(v(x1), 1));
        b.set(x3, rotl(v(x3), 7));
        b.push(v(x0) ^ v(x1) ^ v(x3));
        b.push(v(x1));
        b.push(v(x2) ^ v(x3) ^ (v(x1) << 7i32));
        b.push(v(x3));
    });
    fb.build_spec()
}

/// Round-key XOR.
fn serpent_xorkey(name: &str, k: i32) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 4, 4, 4, ScalarTy::I32);
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.for_(i, 4i32, |b| {
            b.push(pop() ^ (k + 0x9e3779b9u32 as i32));
        });
    });
    fb.build_spec()
}

/// Serpent: three bitsliced rounds (key-mix, S-box circuit, linear
/// transform) — a nine-actor stateless pipeline that fuses end to end.
pub fn serpent() -> Graph {
    let mut stages = vec![source_i32("serpent_src", 4, 0x7fffffff)];
    for round in 0..3 {
        stages.push(serpent_xorkey(&format!("sp_key{round}"), round));
        stages.push(serpent_sbox(&format!("sp_sbox{round}")));
        stages.push(serpent_lt(&format!("sp_lt{round}")));
    }
    stages.push(StreamSpec::Sink);
    StreamSpec::pipeline(stages)
        .build()
        .expect("serpent builds")
}
