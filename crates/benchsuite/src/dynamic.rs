//! Dynamic-rate benchmarks: parameterized graph templates with scripted
//! parameter traces, the workload behind the dynamic differential suite
//! and the `dynamic_rate` experiment binary.
//!
//! Each benchmark obeys the swappability contract
//! ([`ParamGraph::validate_swappable`]): stateful filters keep their
//! names across valuations, and every carried (peek-slack) edge connects
//! stateful filters, so its signature — and therefore its resident
//! tokens — survive any reconfiguration.

use macross_pdf::{ParamGraph, ParamTrace};
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::types::{ScalarTy, Ty};
use macross_streamir::{ParamDomain, RateExpr, Valuation};

use crate::util;

/// A registered dynamic-rate benchmark: a template, its starting
/// valuation, and the scripted traces the experiments drive it with.
#[derive(Debug, Clone, Copy)]
pub struct DynBenchmark {
    /// Name as used in reports and test failures.
    pub name: &'static str,
    /// Template constructor.
    pub template: fn() -> ParamGraph,
    /// Starting valuation.
    pub init: fn() -> Valuation,
    /// Scripted parameter traces (each one differential-tested).
    pub traces: fn() -> Vec<ParamTrace>,
}

/// Every dynamic-rate benchmark.
pub fn dynamic() -> Vec<DynBenchmark> {
    vec![
        DynBenchmark {
            name: "VarDecim",
            template: var_decim,
            init: || Valuation::of("decim", 1),
            traces: var_decim_traces,
        },
        DynBenchmark {
            name: "BurstCodec",
            template: burst_codec,
            init: || Valuation::of("frame", 2),
            traces: burst_codec_traces,
        },
    ]
}

/// Look up a dynamic benchmark by (case-insensitive) name.
pub fn dynamic_by_name(name: &str) -> Option<DynBenchmark> {
    dynamic()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

/// A variable-rate decimation chain:
/// `vd_src -> vd_smooth (peek 4, stateful) -> vd_down(decim) -> vd_amp`,
/// with `decim` in `[1, 4]` at runtime. The `vd_src -> vd_smooth` edge
/// carries 3 resident tokens across every swap; the stateless tail is
/// rebuilt per configuration.
pub fn var_decim() -> ParamGraph {
    let domain = ParamDomain::new().with("decim", 1, 4);
    ParamGraph::new("VarDecim", domain, |val| {
        let decim = RateExpr::param("decim")
            .eval(val)
            .map_err(|e| e.to_string())?;
        let src = util::source_f32("vd_src", 1, 4096, 0.25);
        // A leaky smoother over a 4-sample window: stateful (running
        // accumulator) *and* peeking, so the upstream edge keeps slack.
        let mut sm = FilterBuilder::new("vd_smooth", 4, 1, 1, ScalarTy::F32);
        let acc = sm.state("acc", Ty::Scalar(ScalarTy::F32));
        let junk = sm.local("junk", Ty::Scalar(ScalarTy::F32));
        sm.work(|b| {
            b.set(
                acc,
                v(acc) * 0.5f32 + (peek(c(0i32)) + peek(c(3i32))) * 0.25f32,
            );
            b.push(v(acc));
            b.set(junk, pop());
        });
        StreamSpec::pipeline(vec![
            src,
            sm.build_spec(),
            util::downsample("vd_down", decim),
            util::amplify("vd_amp", 2.0),
            StreamSpec::Sink,
        ])
        .build()
        .map_err(|e| e.to_string())
    })
}

fn var_decim_traces() -> Vec<ParamTrace> {
    vec![
        // Visit every decimation factor once: all misses.
        ParamTrace::new("sweep")
            .then(&[], 4)
            .then(&[("decim", 2)], 4)
            .then(&[("decim", 3)], 4)
            .then(&[("decim", 4)], 4),
        // Alternate between two factors: revisits must hit the cache.
        ParamTrace::new("pingpong")
            .then(&[], 4)
            .then(&[("decim", 4)], 4)
            .then(&[("decim", 1)], 4)
            .then(&[("decim", 4)], 4)
            .then(&[("decim", 1)], 4),
        // Re-set the current value: the swap protocol still runs (and
        // hits), and the output must match an uninterrupted run.
        ParamTrace::new("steady")
            .then(&[], 4)
            .then(&[("decim", 1)], 4)
            .then(&[("decim", 1)], 4),
    ]
}

/// A framing codec with a runtime frame size:
/// `bc_src -> bc_smooth (peek 3, stateful) -> bc_frame(frame, stateful)
/// -> bc_enc -> bc_dec(frame)`, with `frame` in `[2, 5]`. The framer
/// prepends a running frame counter (stateful, so its count survives
/// swaps); the decoder strips it. Both rate-parameterized filters change
/// their pop/push rates with `frame`.
pub fn burst_codec() -> ParamGraph {
    let domain = ParamDomain::new().with("frame", 2, 5);
    ParamGraph::new("BurstCodec", domain, |val| {
        let frame = RateExpr::param("frame")
            .eval(val)
            .map_err(|e| e.to_string())?;
        let src = util::source_i32("bc_src", 1, 0xffff);
        // Windowed mixer: stateful + peek 3 so the upstream edge carries.
        let mut sm = FilterBuilder::new("bc_smooth", 3, 1, 1, ScalarTy::I32);
        let run = sm.state("run", Ty::Scalar(ScalarTy::I32));
        let junk = sm.local("junk", Ty::Scalar(ScalarTy::I32));
        sm.work(|b| {
            b.set(run, v(run) + peek(c(2i32)) - peek(c(0i32)));
            b.push(peek(c(0i32)) + (v(run) & 0xffi32));
            b.set(junk, pop());
        });
        // Framer: pop `frame` samples, push a header (the running frame
        // ordinal) followed by the samples. Stateful, rates vary.
        let mut fr = FilterBuilder::new("bc_frame", frame, frame, frame + 1, ScalarTy::I32);
        let cnt = fr.state("cnt", Ty::Scalar(ScalarTy::I32));
        let x = fr.local("x", Ty::Scalar(ScalarTy::I32));
        let i = fr.local("i", Ty::Scalar(ScalarTy::I32));
        fr.work(move |b| {
            b.push(v(cnt));
            b.for_(i, frame as i32, |b| {
                b.set(x, pop());
                b.push(v(x));
            });
            b.set(cnt, v(cnt) + 1i32);
        });
        // Stateless per-token encode; rebuilt (and SIMDized) per config.
        let mut enc = FilterBuilder::new("bc_enc", 1, 1, 1, ScalarTy::I32);
        enc.work(|b| {
            b.push(pop() * 3i32 + 7i32);
        });
        // Decoder: strip the header, pass the payload.
        let mut dec = FilterBuilder::new("bc_dec", frame + 1, frame + 1, frame, ScalarTy::I32);
        let jd = dec.local("junk", Ty::Scalar(ScalarTy::I32));
        let xd = dec.local("x", Ty::Scalar(ScalarTy::I32));
        let id = dec.local("i", Ty::Scalar(ScalarTy::I32));
        dec.work(move |b| {
            b.set(jd, pop());
            b.for_(id, frame as i32, |b| {
                b.set(xd, pop());
                b.push(v(xd));
            });
        });
        StreamSpec::pipeline(vec![
            src,
            sm.build_spec(),
            fr.build_spec(),
            enc.build_spec(),
            dec.build_spec(),
            StreamSpec::Sink,
        ])
        .build()
        .map_err(|e| e.to_string())
    })
}

fn burst_codec_traces() -> Vec<ParamTrace> {
    vec![
        // Grow the frame through the whole domain: all misses.
        ParamTrace::new("grow")
            .then(&[], 3)
            .then(&[("frame", 3)], 3)
            .then(&[("frame", 4)], 3)
            .then(&[("frame", 5)], 3),
        // Bursts alternating small and large frames; revisits hit.
        ParamTrace::new("burst")
            .then(&[], 2)
            .then(&[("frame", 5)], 3)
            .then(&[("frame", 2)], 3)
            .then(&[("frame", 5)], 3)
            .then(&[("frame", 2)], 3),
        // Hold the current frame size across explicit re-sets.
        ParamTrace::new("hold")
            .then(&[], 3)
            .then(&[("frame", 2)], 3)
            .then(&[("frame", 2)], 3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross::SimdizeOptions;
    use macross_vm::{ExecMode, Machine};

    #[test]
    fn every_dynamic_benchmark_is_swappable_in_both_modes() {
        for b in dynamic() {
            let t = (b.template)();
            for mode in [ExecMode::Bytecode, ExecMode::BytecodeNoFuse] {
                let v = t
                    .validate_swappable(&Machine::core_i7(), &SimdizeOptions::all(), mode)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                assert!(v.carried_edges >= 1, "{}: nothing carried", b.name);
                assert!(v.stateful_filters >= 2, "{}: too little state", b.name);
            }
        }
    }

    #[test]
    fn traces_stay_inside_the_domain() {
        for b in dynamic() {
            let t = (b.template)();
            let traces = (b.traces)();
            assert!(traces.len() >= 3, "{}: need at least 3 traces", b.name);
            for trace in traces {
                let mut val = (b.init)();
                t.domain().check(&val).unwrap();
                for step in &trace.steps {
                    for (name, value) in &step.sets {
                        val.bind(name, *value);
                    }
                    t.domain()
                        .check(&val)
                        .unwrap_or_else(|e| panic!("{}/{}: {e}", b.name, trace.name));
                }
            }
        }
    }
}
