//! # macross-benchsuite
//!
//! The StreamIt-style benchmark suite used by the MacroSS reproduction's
//! experiments — sixteen applications re-implemented on the stream IR
//! with the same structural characters the paper relies on: split-joins
//! of isomorphic (sometimes stateful) actors for horizontal SIMDization,
//! deep stateless pipelines for vertical SIMDization, peeking filters,
//! data-dependent table lookups that *block* SIMDization, reordering-heavy
//! kernels where the SAGU shines, and region-state actors (per-channel
//! filter banks) that only the stateful region pass can vectorize.
//!
//! ```
//! use macross_benchsuite::all;
//!
//! let suite = all();
//! assert_eq!(suite.len(), 16);
//! let g = (suite[0].build)();
//! assert!(g.node_count() > 2);
//! ```

pub mod crypto;
pub mod dsp;
pub mod dynamic;
pub mod matrix;
pub mod media;
pub mod region;
pub mod transforms;
pub mod util;

use macross_streamir::graph::Graph;

/// A registered benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Name as used in the paper's figures.
    pub name: &'static str,
    /// Graph constructor.
    pub build: fn() -> Graph,
    /// Steady-state iterations used by the experiment harness (sized so
    /// every benchmark processes a few thousand elements).
    pub iters: u64,
}

/// Every benchmark, in the order the paper's figures list them.
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "AudioBeam",
            build: dsp::audio_beam,
            iters: 32,
        },
        Benchmark {
            name: "BeamFormer",
            build: dsp::beamformer,
            iters: 16,
        },
        Benchmark {
            name: "BitonicSort",
            build: transforms::bitonic_sort,
            iters: 32,
        },
        Benchmark {
            name: "ChannelVocoder",
            build: dsp::channel_vocoder,
            iters: 16,
        },
        Benchmark {
            name: "DCT",
            build: transforms::dct,
            iters: 32,
        },
        Benchmark {
            name: "DES",
            build: crypto::des,
            iters: 32,
        },
        Benchmark {
            name: "FFT",
            build: transforms::fft,
            iters: 16,
        },
        Benchmark {
            name: "FilterBank",
            build: dsp::filter_bank,
            iters: 8,
        },
        Benchmark {
            name: "FMRadio",
            build: dsp::fm_radio,
            iters: 16,
        },
        Benchmark {
            name: "MatrixMult",
            build: matrix::matrix_mult,
            iters: 16,
        },
        Benchmark {
            name: "MatrixMultBlock",
            build: matrix::matrix_mult_block,
            iters: 16,
        },
        Benchmark {
            name: "MP3Decoder",
            build: media::mp3_decoder,
            iters: 8,
        },
        Benchmark {
            name: "Serpent",
            build: crypto::serpent,
            iters: 32,
        },
        Benchmark {
            name: "TDE",
            build: transforms::tde,
            iters: 8,
        },
        Benchmark {
            name: "RegionIIRBank",
            build: region::region_iir_bank,
            iters: 32,
        },
        Benchmark {
            name: "RegionAccNorm",
            build: region::region_acc_norm,
            iters: 32,
        },
    ]
}

/// Look up a benchmark by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross::driver::{macro_simdize, SimdizeOptions};
    use macross_sdf::Schedule;
    use macross_streamir::analysis::check_rates;
    use macross_streamir::graph::Node;
    use macross_vm::{run_scheduled, Machine};

    /// Every benchmark builds, validates, rate-checks, and runs
    /// deterministically.
    #[test]
    fn all_benchmarks_build_and_run() {
        for b in all() {
            let g = (b.build)();
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            for (_, node) in g.nodes() {
                if let Node::Filter(f) = node {
                    check_rates(f).unwrap_or_else(|e| panic!("{}: {e}", b.name));
                }
            }
            let sched = Schedule::compute(&g).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let machine = Machine::core_i7();
            let r1 = run_scheduled(&g, &sched, &machine, 2).unwrap();
            let r2 = run_scheduled(&g, &sched, &machine, 2).unwrap();
            assert!(!r1.output.is_empty(), "{}: no output", b.name);
            assert_eq!(r1.output.len(), r2.output.len());
            for (x, y) in r1.output.iter().zip(&r2.output) {
                assert!(x.bits_eq(*y), "{}: nondeterministic output", b.name);
            }
        }
    }

    /// The flagship property: macro-SIMDization preserves every
    /// benchmark's output bit-for-bit, at matched throughput.
    #[test]
    fn macro_simdization_is_output_preserving_everywhere() {
        let machine = Machine::core_i7();
        for b in all() {
            let g = (b.build)();
            let simd = macro_simdize(&g, &machine, &SimdizeOptions::all())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let mut ssched = Schedule::compute(&g).unwrap();
            let src = g.node_ids().find(|&id| g.in_edges(id).is_empty()).unwrap();
            let l = macross_sdf::lcm(ssched.rep(src), simd.schedule.reps[src.0 as usize].max(1));
            let m1 = l / ssched.rep(src);
            ssched.scale(m1);
            let mut vsched = simd.schedule.clone();
            vsched.scale(l / vsched.reps[src.0 as usize]);
            let a = run_scheduled(&g, &ssched, &machine, 2).unwrap();
            let c = run_scheduled(&simd.graph, &vsched, &machine, 2).unwrap();
            assert_eq!(
                a.output.len(),
                c.output.len(),
                "{}: throughput mismatch",
                b.name
            );
            for (i, (x, y)) in a.output.iter().zip(&c.output).enumerate() {
                assert!(
                    x.bits_eq(*y),
                    "{}: output {i} differs: {x:?} vs {y:?}",
                    b.name
                );
            }
        }
    }

    /// Structural expectations per benchmark, mirroring the paper's
    /// discussion of where each transform applies.
    #[test]
    fn transform_coverage_matches_paper_narrative() {
        let machine = Machine::core_i7();
        let report_of = |name: &str| {
            let b = by_name(name).unwrap();
            macro_simdize(&(b.build)(), &machine, &SimdizeOptions::all())
                .unwrap()
                .report
        };

        // Horizontal-dominated benchmarks.
        for name in ["FilterBank", "BeamFormer", "ChannelVocoder", "FMRadio"] {
            let r = report_of(name);
            assert!(
                !r.horizontal_groups.is_empty(),
                "{name} should horizontalize: {r:?}"
            );
        }
        // Vertical-dominated benchmarks: at least one multi-actor chain.
        for name in [
            "MatrixMultBlock",
            "Serpent",
            "BitonicSort",
            "TDE",
            "DCT",
            "FFT",
        ] {
            let r = report_of(name);
            assert!(
                r.vertical_chains.iter().any(|c| c.len() >= 2),
                "{name} should fuse a pipeline: {r:?}"
            );
        }
        // AudioBeam: isolated actors, no vertical chains.
        let r = report_of("AudioBeam");
        assert!(
            r.vertical_chains.iter().all(|c| c.len() < 2),
            "AudioBeam chains: {r:?}"
        );
        assert!(!r.single_actors.is_empty());
        // DES: s-box actors must NOT be vectorized.
        let r = report_of("DES");
        assert!(
            r.single_actors.iter().all(|n| !n.contains("sbox")),
            "DES sboxes vectorized: {r:?}"
        );
        // Region benchmarks: the stateful banks vectorize only through
        // the region pass, never through the classic transforms.
        for name in ["RegionIIRBank", "RegionAccNorm"] {
            let r = report_of(name);
            assert!(
                !r.region_actors.is_empty(),
                "{name} should region-vectorize: {r:?}"
            );
        }
    }

    /// Macro-SIMDization speeds up the suite on the modelled machine
    /// (geometric mean over all benchmarks).
    #[test]
    fn macro_simd_speeds_up_geomean() {
        let machine = Machine::core_i7();
        let mut log_sum = 0.0f64;
        let mut n = 0;
        for b in all() {
            let g = (b.build)();
            let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
            let mut ssched = Schedule::compute(&g).unwrap();
            let src = g.node_ids().find(|&id| g.in_edges(id).is_empty()).unwrap();
            let l = macross_sdf::lcm(ssched.rep(src), simd.schedule.reps[src.0 as usize].max(1));
            ssched.scale(l / ssched.rep(src));
            let mut vsched = simd.schedule.clone();
            vsched.scale(l / vsched.reps[src.0 as usize]);
            let a = run_scheduled(&g, &ssched, &machine, 2).unwrap();
            let c = run_scheduled(&simd.graph, &vsched, &machine, 2).unwrap();
            let speedup = a.total_cycles() as f64 / c.total_cycles() as f64;
            log_sum += speedup.ln();
            n += 1;
        }
        let geomean = (log_sum / n as f64).exp();
        assert!(
            geomean > 1.2,
            "macro-SIMD geomean speedup {geomean:.2}x too small"
        );
    }
}
