//! Cost-model-driven placement planner: fusion, fission, and the
//! collapse-to-sequential guard.
//!
//! The naive LPT partitioner in the crate root is structure-blind: it
//! balances compute and lets every pipeline edge become a cut edge, so on
//! cheap graphs the threaded runtime pays more in ring transfers and
//! stalls than it wins in parallel compute. This module plans placements
//! the other way around, from a calibrated cost model:
//!
//! 1. **Fusion** — greedy cut-edge contraction. Starting from singleton
//!    clusters, repeatedly pin the heaviest-traffic edge's endpoints to
//!    one core whenever the re-estimated makespan does not regress. Cheap
//!    adjacent stages collapse onto one core and their ring disappears.
//! 2. **Fission** — if one stateless stage dominates the bottleneck core,
//!    split its steady firings round-robin across several cores (the
//!    runtime deals/merges deterministically; see
//!    `macross_runtime::Placement`), so the hottest stage no longer caps
//!    the pipeline.
//! 3. **Collapse** — parallel placements must beat the modelled
//!    sequential run by a configurable margin
//!    (`MACROSS_PARALLEL_MARGIN`, default 1.2×); otherwise the plan says
//!    "one core" and the caller runs sequentially instead of losing to
//!    ring overhead.
//!
//! All decisions are pure functions of (graph, schedule, per-node cycles,
//! worker count, comm model): no hashing iteration order, no randomness —
//! the property tests below assert replanning is bit-stable, which keeps
//! `ReplayBundle`s reproducible.

use crate::{estimate, CommModel};
use macross_runtime::{FissionSpec, Placement};
use macross_sdf::Schedule;
use macross_streamir::analysis::analyze_vectorizability;
use macross_streamir::graph::{Graph, Node, NodeId};
use std::sync::OnceLock;

/// A planned placement plus the model's view of it — everything reports
/// and gates need beyond the raw [`Placement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    /// Core assignment + fission directives for the threaded runtime.
    pub placement: Placement,
    /// Distinct cores the placement actually uses (replicas included).
    pub cores_used: usize,
    /// Graph edges the runtime must bridge with rings (a fission edge
    /// counts once, though it fans out into one ring per replica).
    pub cut_edges: usize,
    /// Clusters holding two or more nodes — stages fused onto one core.
    pub fused_groups: usize,
    /// Replica count of the fissioned stage (0 when no stage is split).
    pub fissioned: usize,
    /// Modelled cycles per steady iteration under this placement.
    pub modelled_makespan: u64,
    /// Modelled cycles per steady iteration on one core (no comm).
    pub modelled_sequential: u64,
}

impl PlacementPlan {
    /// The model's predicted speedup over sequential (1.0 when collapsed).
    pub fn modelled_speedup(&self) -> f64 {
        if self.modelled_makespan == 0 {
            1.0
        } else {
            self.modelled_sequential as f64 / self.modelled_makespan as f64
        }
    }
}

/// Margin a parallel placement's modelled makespan must beat sequential
/// by before the planner commits to it (override:
/// `MACROSS_PARALLEL_MARGIN`). The comm model is calibrated but still a
/// model; demanding a 1.2× modelled win keeps marginal placements — the
/// ones that lose to unmodelled stall latency — sequential.
const DEFAULT_PARALLEL_MARGIN: f64 = 1.2;

fn parallel_margin() -> f64 {
    std::env::var("MACROSS_PARALLEL_MARGIN")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|m| m.is_finite() && *m >= 1.0)
        .unwrap_or(DEFAULT_PARALLEL_MARGIN)
}

/// Can this node's steady firings be dealt round-robin across replicas?
/// Mirrors `Placement::validate` (the runtime re-checks; this keeps the
/// planner from proposing placements the runtime would reject).
fn fission_legal(graph: &Graph, schedule: &Schedule, id: NodeId) -> bool {
    let Node::Filter(f) = graph.node(id) else {
        return false;
    };
    if analyze_vectorizability(f).stateful || f.peek > f.pop {
        return false;
    }
    if schedule.init_reps[id.0 as usize] != 0 {
        return false;
    }
    graph
        .in_edges(id)
        .iter()
        .chain(graph.out_edges(id).iter())
        .all(|&e| graph.edge(e).reorder.is_none())
}

/// Union-find root with path compression.
fn find(parent: &mut [usize], x: usize) -> usize {
    let mut r = x;
    while parent[r] != r {
        r = parent[r];
    }
    let mut c = x;
    while parent[c] != r {
        let next = parent[c];
        parent[c] = r;
        c = next;
    }
    r
}

/// LPT over clusters: cluster loads sorted heaviest-first (ties broken by
/// smallest member id — deterministic), each placed on the least-loaded
/// core (ties broken by lowest core index).
fn place_clusters(parent: &mut [usize], node_cycles: &[u64], workers: usize) -> Vec<u32> {
    let n = parent.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let r = find(parent, i);
        members[r].push(i);
    }
    let mut clusters: Vec<(u64, usize)> = members
        .iter()
        .enumerate()
        .filter(|(_, m)| !m.is_empty())
        .map(|(r, m)| (m.iter().map(|&i| node_cycles[i]).sum(), r))
        .collect();
    clusters.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut load = vec![0u64; workers];
    let mut assign = vec![0u32; n];
    for (cost, r) in clusters {
        let core = (0..workers).min_by_key(|&c| load[c]).unwrap();
        load[core] += cost;
        for &i in &members[r] {
            assign[i] = core as u32;
        }
    }
    assign
}

/// Plan a placement for `workers` cores from measured (or modelled)
/// per-node cycles per steady iteration.
///
/// Pure and deterministic in its inputs: the same (graph, schedule,
/// cycles, workers, comm) always yields the identical plan.
pub fn plan_placement(
    graph: &Graph,
    schedule: &Schedule,
    node_cycles: &[u64],
    workers: usize,
    comm: &CommModel,
) -> PlacementPlan {
    let n = graph.node_count();
    assert_eq!(node_cycles.len(), n);
    let sequential: u64 = node_cycles.iter().sum();
    let collapse = |fused_groups: usize| PlacementPlan {
        placement: Placement::whole_stage(vec![0; n]),
        cores_used: 1,
        cut_edges: 0,
        fused_groups,
        fissioned: 0,
        modelled_makespan: sequential,
        modelled_sequential: sequential,
    };
    if workers <= 1 || n < 2 {
        return collapse(0);
    }

    // --- Fusion: greedy cut-edge contraction -------------------------
    // Heaviest-traffic edges first (ties: edge id), re-placed with LPT
    // after each tentative merge; a merge survives when the modelled
    // makespan does not regress (equal keeps it — fewer rings at the
    // same makespan is strictly better in reality).
    let mut edges: Vec<(u64, usize, usize, usize)> = graph
        .edges()
        .map(|(id, e)| {
            let push = graph.node(e.src).push_rate(e.src_port) as u64;
            let tokens = schedule.reps[e.src.0 as usize] * push;
            (
                tokens * comm.cycles_per_element + comm.sync_per_edge,
                id.0 as usize,
                e.src.0 as usize,
                e.dst.0 as usize,
            )
        })
        .collect();
    edges.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut parent: Vec<usize> = (0..n).collect();
    let mut assign = place_clusters(&mut parent, node_cycles, workers);
    let mut makespan = estimate(graph, schedule, node_cycles, &assign, workers, comm).makespan;
    loop {
        let mut merged = false;
        for &(_, _, s, d) in &edges {
            if find(&mut parent, s) == find(&mut parent, d) {
                continue;
            }
            let saved = parent.clone();
            let (rs, rd) = (find(&mut parent, s), find(&mut parent, d));
            parent[rs.max(rd)] = rs.min(rd);
            let cand = place_clusters(&mut parent, node_cycles, workers);
            let m = estimate(graph, schedule, node_cycles, &cand, workers, comm).makespan;
            if m <= makespan {
                assign = cand;
                makespan = m;
                merged = true;
            } else {
                parent = saved;
            }
        }
        if !merged {
            break;
        }
    }
    let mut root_seen = vec![false; n];
    let mut cluster_sizes = vec![0usize; n];
    for i in 0..n {
        let r = find(&mut parent, i);
        root_seen[r] = true;
        cluster_sizes[r] += 1;
    }
    let fused_groups = cluster_sizes.iter().filter(|&&s| s >= 2).count();

    // --- Fission: split the stage that caps the bottleneck core ------
    // Worth modelling only when the bottleneck core is dominated by one
    // legal stage: moving 1/k of its firings to each of k cores trades
    // (k-1)/k of its compute for the deal/merge ring traffic on its two
    // edges.
    let est = estimate(graph, schedule, node_cycles, &assign, workers, comm);
    let bottleneck = est
        .per_core
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(c, _)| c as u32)
        .unwrap_or(0);
    let mut fission: Vec<FissionSpec> = Vec::new();
    let mut best_make = makespan;
    let mut candidates: Vec<(u64, usize)> = (0..n)
        .filter(|&i| assign[i] == bottleneck && fission_legal(graph, schedule, NodeId(i as u32)))
        .map(|i| (node_cycles[i], i))
        .collect();
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    if let Some(&(cyc, node)) = candidates.first() {
        // Replica cores: the home core plus the least-loaded others
        // (deterministic ties by core index).
        let mut others: Vec<(u64, usize)> = est
            .per_core
            .iter()
            .enumerate()
            .filter(|(c, _)| *c as u32 != bottleneck)
            .map(|(c, &l)| (l, c))
            .collect();
        others.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        for k in 2..=workers.min(1 + others.len()) {
            let mut per_core = est.per_core.clone();
            per_core[bottleneck as usize] -= cyc;
            let mut replicas = vec![bottleneck];
            replicas.extend(others[..k - 1].iter().map(|&(_, c)| c as u32));
            let share = cyc / k as u64;
            for (j, &r) in replicas.iter().enumerate() {
                per_core[r as usize] += share + u64::from(j == 0) * (cyc % k as u64);
            }
            // Each fission edge costs its full token traffic (if not
            // already cut) plus one sync term per replica ring.
            let mut comm_cycles = est.comm_cycles;
            for &e in graph
                .in_edges(NodeId(node as u32))
                .iter()
                .chain(graph.out_edges(NodeId(node as u32)).iter())
            {
                let ed = graph.edge(e);
                let push = graph.node(ed.src).push_rate(ed.src_port) as u64;
                let tokens = schedule.reps[ed.src.0 as usize] * push;
                let was_cut = assign[ed.src.0 as usize] != assign[ed.dst.0 as usize];
                comm_cycles += if was_cut {
                    (k as u64 - 1) * comm.sync_per_edge
                } else {
                    tokens * comm.cycles_per_element + k as u64 * comm.sync_per_edge
                };
            }
            let m = per_core.iter().copied().max().unwrap_or(0) + comm_cycles;
            if m < best_make {
                best_make = m;
                fission = vec![FissionSpec {
                    node: NodeId(node as u32),
                    replicas,
                }];
            }
        }
    }

    // --- Collapse guard ----------------------------------------------
    if (best_make as f64) * parallel_margin() > sequential as f64 {
        return collapse(fused_groups);
    }

    let placement = Placement {
        assignment: assign,
        fission,
    };
    // The runtime re-validates; a planner bug must degrade to a legal
    // plan, not a hard error at run time.
    if placement.validate(graph, schedule).is_err() {
        return collapse(fused_groups);
    }
    let fissioned = placement
        .fission
        .first()
        .map(|s| s.replicas.len())
        .unwrap_or(0);
    let cut_edges = graph
        .edges()
        .filter(|(id, e)| {
            placement.assignment[e.src.0 as usize] != placement.assignment[e.dst.0 as usize]
                || placement.fission.iter().any(|s| {
                    let _ = id;
                    s.node == e.src || s.node == e.dst
                })
        })
        .count();
    let cores_used = placement.cores();
    PlacementPlan {
        placement,
        cores_used,
        cut_edges,
        fused_groups,
        fissioned,
        modelled_makespan: best_make,
        modelled_sequential: sequential,
    }
}

// ---------------------------------------------------------------------
// Communication model calibration
// ---------------------------------------------------------------------

impl CommModel {
    /// Calibrate the communication terms once per process from a
    /// micro-measurement of the runtime's actual SPSC ring, expressed in
    /// the same modelled-cycle unit as the per-node costs:
    ///
    /// - `cycles_per_element` = measured ring ns/element at streaming
    ///   batch sizes, divided by the machine's measured ns per modelled
    ///   cycle;
    /// - `sync_per_edge` = the extra per-batch cost observed at small
    ///   batches (publish/park handshakes), in the same unit.
    ///
    /// Both are overridable (`MACROSS_COMM_CYCLES_PER_ELEM`,
    /// `MACROSS_COMM_SYNC_PER_EDGE`) so CI legs that compare counters
    /// bit-exactly can pin the model instead of depending on host noise.
    pub fn calibrated() -> CommModel {
        static CAL: OnceLock<CommModel> = OnceLock::new();
        *CAL.get_or_init(|| {
            let env = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<u64>().ok());
            let (elem_env, sync_env) = (
                env("MACROSS_COMM_CYCLES_PER_ELEM"),
                env("MACROSS_COMM_SYNC_PER_EDGE"),
            );
            if let (Some(cycles_per_element), Some(sync_per_edge)) = (elem_env, sync_env) {
                return CommModel {
                    cycles_per_element,
                    sync_per_edge,
                };
            }
            let measured = measure_comm_model();
            CommModel {
                cycles_per_element: elem_env.unwrap_or(measured.cycles_per_element),
                sync_per_edge: sync_env.unwrap_or(measured.sync_per_edge),
            }
        })
    }
}

/// Wall nanoseconds per element streamed through one runtime ring of
/// `capacity` slots between two threads at `batch` elements per push.
fn ring_ns_per_elem(total: usize, batch: usize, capacity: usize) -> f64 {
    use macross_runtime::ring::Ring;
    use macross_streamir::types::Value;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let ring = Arc::new(Ring::for_edge(0, capacity, Value::I32(0)));
    let abort = Arc::new(AtomicBool::new(false));
    ring.register_consumer();
    let t0 = std::time::Instant::now();
    let producer = {
        let ring = Arc::clone(&ring);
        let abort = Arc::clone(&abort);
        std::thread::spawn(move || {
            ring.register_producer();
            let chunk = vec![Value::I32(7); batch];
            let mut sent = 0;
            while sent < total {
                let k = chunk.len().min(total - sent);
                if ring.push_batch(&chunk[..k], &abort).is_err() {
                    return;
                }
                sent += k;
            }
        })
    };
    let trace = macross_telemetry::WorkerTrace::disabled();
    let mut got = 0usize;
    let mut sink = 0i64;
    while got < total {
        let k = ring.pop_avail(
            |v| {
                if let Value::I32(x) = v {
                    sink += x as i64;
                }
            },
            total - got,
        );
        if k == 0 && ring.wait_nonempty_quiet(&abort, &trace).is_err() {
            break;
        }
        got += k;
    }
    producer.join().ok();
    std::hint::black_box(sink);
    t0.elapsed().as_nanos() as f64 / total.max(1) as f64
}

/// Wall nanoseconds per modelled cycle: time a small scalar run and
/// divide by the cycles the model charged it.
fn ns_per_modelled_cycle() -> f64 {
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};
    use macross_vm::{run_scheduled, Machine};

    let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
    let n = src.state("n", Ty::Scalar(ScalarTy::I32));
    src.work(|b| {
        b.push(v(n));
        b.set(n, v(n) + 1i32);
    });
    let mut mul = FilterBuilder::new("mul", 1, 1, 1, ScalarTy::I32);
    mul.work(|b| {
        b.push(pop() * 3i32);
    });
    let g = StreamSpec::pipeline(vec![src.build_spec(), mul.build_spec(), StreamSpec::Sink])
        .build()
        .expect("calibration graph");
    let sched = Schedule::compute(&g).expect("calibration schedule");
    let m = Machine::core_i7();
    let iters = 20_000;
    let t0 = std::time::Instant::now();
    let run = run_scheduled(&g, &sched, &m, iters).expect("calibration run");
    let ns = t0.elapsed().as_nanos() as f64;
    ns / run.counters.total().max(1) as f64
}

fn measure_comm_model() -> CommModel {
    let ns_cycle = ns_per_modelled_cycle().max(1e-3);
    // Streaming cost at a large batch with a deep ring: pure per-element
    // transfer, publishes amortized away.
    let streaming = ring_ns_per_elem(1 << 18, 512, 1024);
    // Rendezvous cost: a ring exactly one batch deep forces a full
    // park/unpark handshake per batch — the lockstep worst case a cut
    // edge degenerates to when producer and consumer can't drift apart.
    // This is where parking latency (microseconds, thousands of modelled
    // cycles) actually shows up; a deep-ring measurement never sees it.
    let small_batch = 8usize;
    let rendezvous = ring_ns_per_elem(1 << 14, small_batch, small_batch);
    let per_elem = (streaming / ns_cycle).round() as u64;
    let handshake = ((rendezvous - streaming).max(0.0) * small_batch as f64) / ns_cycle;
    // The runtime sizes rings to `ring_slack()` iterations, so a steady
    // pipeline pays roughly one handshake per slack iterations per edge:
    // charge the per-iteration share.
    let per_sync = (handshake / macross_runtime::ring_slack() as f64).round() as u64;
    CommModel {
        cycles_per_element: per_elem.clamp(1, 64),
        sync_per_edge: per_sync.clamp(8, 1 << 16),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};
    use macross_vm::Machine;

    fn counter_src(push: usize) -> macross_streamir::builder::StreamSpec {
        let mut src = FilterBuilder::new("src", 0, 0, push, ScalarTy::I32);
        let n = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(move |b| {
            for _ in 0..push {
                b.push(v(n));
                b.set(n, v(n) + 1i32);
            }
        });
        src.build_spec()
    }

    fn stateless(name: &str, work_reps: i32) -> macross_streamir::builder::StreamSpec {
        let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::I32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let t = fb.local("t", Ty::Scalar(ScalarTy::I32));
        fb.work(move |b| {
            b.set(t, pop());
            b.for_(i, work_reps, |b| {
                b.set(t, v(t) * 3i32 + 1i32);
            });
            b.push(v(t));
        });
        fb.build_spec()
    }

    fn pipeline(stages: Vec<macross_streamir::builder::StreamSpec>) -> Graph {
        StreamSpec::pipeline(stages).build().unwrap()
    }

    fn fixed_comm() -> CommModel {
        CommModel {
            cycles_per_element: 3,
            sync_per_edge: 40,
        }
    }

    #[test]
    fn cheap_chain_collapses_to_sequential() {
        // Every stage is trivial: any cut edge costs more than the whole
        // graph computes, so the plan must stay on one core.
        let g = pipeline(vec![
            counter_src(1),
            stateless("a", 1),
            stateless("b", 1),
            StreamSpec::Sink,
        ]);
        let sched = Schedule::compute(&g).unwrap();
        let cycles = vec![5u64; g.node_count()];
        let plan = plan_placement(&g, &sched, &cycles, 4, &fixed_comm());
        assert_eq!(plan.cores_used, 1);
        assert_eq!(plan.cut_edges, 0);
        assert_eq!(plan.fissioned, 0);
        assert_eq!(plan.modelled_makespan, plan.modelled_sequential);
        assert!(plan.placement.assignment.iter().all(|&c| c == 0));
    }

    #[test]
    fn fusion_beats_lpt_on_cut_edges() {
        // Two heavy stages separated by cheap glue: LPT scatters the glue
        // across cores (cut edges everywhere); the planner must fuse the
        // glue onto the heavy stages' cores and keep only the one cut
        // that load balance demands.
        let g = pipeline(vec![
            counter_src(1),
            stateless("cheap1", 1),
            stateless("heavy1", 400),
            stateless("cheap2", 1),
            stateless("heavy2", 400),
            StreamSpec::Sink,
        ]);
        let sched = Schedule::compute(&g).unwrap();
        let cycles: Vec<u64> = vec![10, 10, 4000, 10, 4000, 10];
        let comm = fixed_comm();
        let plan = plan_placement(&g, &sched, &cycles, 2, &comm);
        assert!(plan.cores_used >= 2, "plan should go parallel: {plan:?}");
        let lpt = crate::Partition::lpt(&g, &sched, &cycles, 2);
        assert!(
            plan.cut_edges <= lpt.cut_edges.len(),
            "planned {} cuts vs LPT {}",
            plan.cut_edges,
            lpt.cut_edges.len()
        );
        assert!(plan.fused_groups >= 1);
        assert!(plan.modelled_makespan < plan.modelled_sequential);
    }

    #[test]
    fn hot_stateless_stage_gets_fissioned() {
        // One stage is 10x everything else: no whole-stage placement can
        // beat sequential by much, but dealing its firings across cores
        // can. The stage is stateless, so fission is legal.
        let g = pipeline(vec![
            counter_src(4),
            stateless("hot", 2000),
            StreamSpec::Sink,
        ]);
        let sched = Schedule::compute(&g).unwrap();
        let cycles: Vec<u64> = vec![40, 80_000, 40];
        let plan = plan_placement(&g, &sched, &cycles, 4, &fixed_comm());
        assert!(plan.fissioned >= 2, "expected fission: {plan:?}");
        let spec = &plan.placement.fission[0];
        assert_eq!(spec.node, NodeId(1));
        assert_eq!(
            plan.placement.assignment[1], spec.replicas[0],
            "home core must lead the replica list"
        );
        assert!(plan.modelled_makespan < plan.modelled_sequential);
    }

    #[test]
    fn stateful_stage_is_never_fissioned() {
        // Same shape, but the hot stage carries state across firings.
        let mut hot = FilterBuilder::new("hot", 1, 1, 1, ScalarTy::I32);
        let acc = hot.state("acc", Ty::Scalar(ScalarTy::I32));
        let i = hot.local("i", Ty::Scalar(ScalarTy::I32));
        hot.work(move |b| {
            b.for_(i, 2000i32, |b| {
                b.set(acc, v(acc) * 3i32 + 1i32);
            });
            b.push(pop() + v(acc));
        });
        let g = pipeline(vec![counter_src(4), hot.build_spec(), StreamSpec::Sink]);
        let sched = Schedule::compute(&g).unwrap();
        let cycles: Vec<u64> = vec![40, 80_000, 40];
        let plan = plan_placement(&g, &sched, &cycles, 4, &fixed_comm());
        assert_eq!(
            plan.fissioned, 0,
            "stateful stage must stay whole: {plan:?}"
        );
    }

    #[test]
    fn planning_is_deterministic() {
        // Pure function of inputs: independently rebuilt graphs with the
        // same structure produce bit-identical plans across repeated
        // calls, worker counts, and cost scales.
        let build = || {
            pipeline(vec![
                counter_src(4),
                stateless("a", 50),
                stateless("b", 800),
                stateless("c", 20),
                stateless("d", 700),
                StreamSpec::Sink,
            ])
        };
        let comm = fixed_comm();
        for workers in [1usize, 2, 3, 4, 8] {
            for scale in [1u64, 17, 400] {
                let g1 = build();
                let g2 = build();
                assert_eq!(
                    macross_streamir::structural_hash(&g1),
                    macross_streamir::structural_hash(&g2)
                );
                let s1 = Schedule::compute(&g1).unwrap();
                let s2 = Schedule::compute(&g2).unwrap();
                let cycles: Vec<u64> = (0..g1.node_count() as u64)
                    .map(|i| (i * 31 + 7) * scale)
                    .collect();
                let p1 = plan_placement(&g1, &s1, &cycles, workers, &comm);
                let p2 = plan_placement(&g2, &s2, &cycles, workers, &comm);
                assert_eq!(p1, p2, "workers={workers} scale={scale}");
                let p3 = plan_placement(&g1, &s1, &cycles, workers, &comm);
                assert_eq!(p1, p3, "replan drifted: workers={workers}");
            }
        }
    }

    #[test]
    fn planned_placements_validate_and_run() {
        // Whatever the planner proposes must pass the runtime's own
        // legality check and reproduce the sequential output bits.
        let g = pipeline(vec![
            counter_src(4),
            stateless("a", 200),
            stateless("hot", 2000),
            StreamSpec::Sink,
        ]);
        let sched = Schedule::compute(&g).unwrap();
        let m = Machine::core_i7();
        let seq = macross_vm::run_scheduled(&g, &sched, &m, 6).unwrap();
        let cycles: Vec<u64> = seq.node_cycles.iter().map(|c| c / 6).collect();
        for workers in [2usize, 4] {
            let plan = plan_placement(&g, &sched, &cycles, workers, &fixed_comm());
            plan.placement.validate(&g, &sched).unwrap();
            let thr =
                macross_runtime::run_threaded_placed(&g, &sched, &m, &plan.placement, 6).unwrap();
            assert_eq!(thr.output, seq.output, "workers={workers}");
        }
    }

    #[test]
    fn calibration_respects_env_overrides() {
        // Process-wide OnceLock: only assert the pinned path when the
        // harness set the variables (the CI counter legs do).
        let pinned = (
            std::env::var("MACROSS_COMM_CYCLES_PER_ELEM").ok(),
            std::env::var("MACROSS_COMM_SYNC_PER_EDGE").ok(),
        );
        let cal = CommModel::calibrated();
        if let (Some(e), Some(s)) = pinned {
            assert_eq!(cal.cycles_per_element.to_string(), e);
            assert_eq!(cal.sync_per_edge.to_string(), s);
        }
        assert!(cal.cycles_per_element >= 1);
        assert!(cal.sync_per_edge >= 1);
        // Calibration is cached: a second call returns the same model.
        assert_eq!(CommModel::calibrated(), cal);
    }
}
