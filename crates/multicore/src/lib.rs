//! # macross-multicore
//!
//! The naive SIMD-aware multicore scheduler study of Section 5 /
//! Figure 13: partition the stream graph across cores for load balance,
//! *then* macro-SIMDize within each core (which reduces fusion and
//! horizontal opportunities), and compare against plain multicore and
//! plain SIMD execution.
//!
//! The multicore substrate is analytic (see DESIGN.md's substitution
//! table): per-core compute comes from the VM's per-node cycle counts, and
//! inter-core traffic is charged per element crossing a core boundary —
//! matching the paper's observation that "mapping parallelism onto
//! multi-core ... can also experience slowdown due to inter-core
//! communication overhead".

use macross::driver::{macro_simdize_colocated, SimdizeOptions};
use macross::SimdizeError;
use macross_sdf::Schedule;
use macross_streamir::graph::Graph;
use macross_vm::{run_scheduled, Machine};

pub mod planner;
pub use planner::{plan_placement, PlacementPlan};

/// Inter-core communication model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommModel {
    /// Cycles charged per element crossing a core boundary per steady
    /// iteration (cache-line transfer amortized per 32-bit element).
    pub cycles_per_element: u64,
    /// Fixed per-cut-edge synchronization cost per steady iteration.
    pub sync_per_edge: u64,
}

impl Default for CommModel {
    fn default() -> Self {
        CommModel {
            cycles_per_element: 3,
            sync_per_edge: 40,
        }
    }
}

/// Longest-processing-time greedy partitioner: nodes sorted by cycle cost,
/// assigned to the least-loaded core. Deliberately structure-blind — the
/// paper's "naive multi-core scheduler".
pub fn partition_lpt(node_cycles: &[u64], cores: usize) -> Vec<u32> {
    assert!(cores >= 1);
    let mut order: Vec<usize> = (0..node_cycles.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(node_cycles[i]));
    let mut load = vec![0u64; cores];
    let mut assign = vec![0u32; node_cycles.len()];
    for i in order {
        let core = (0..cores)
            .min_by_key(|&c| load[c])
            .expect("at least one core");
        assign[i] = core as u32;
        load[core] += node_cycles[i];
    }
    assign
}

/// One graph edge crossing a core boundary under a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutEdge {
    /// The crossing edge.
    pub edge: macross_streamir::EdgeId,
    /// Producing node.
    pub src: macross_streamir::NodeId,
    /// Consuming node.
    pub dst: macross_streamir::NodeId,
    /// Core the producer runs on.
    pub src_core: u32,
    /// Core the consumer runs on.
    pub dst_core: u32,
    /// Tokens crossing per steady iteration (`reps[src] * push`).
    pub tokens_per_iter: u64,
}

/// A core assignment plus the metadata consumers need beyond the raw
/// `Vec<u32>`: per-core compute loads and the cut edges the threaded
/// runtime must bridge with inter-core rings (and that [`CommModel`]
/// charges for).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Core count the assignment targets.
    pub cores: usize,
    /// Core index per node.
    pub assignment: Vec<u32>,
    /// Compute cycles per core (sum of assigned nodes' cycles).
    pub per_core_load: Vec<u64>,
    /// Edges whose endpoints land on different cores.
    pub cut_edges: Vec<CutEdge>,
}

impl Partition {
    /// Partition with the naive LPT heuristic and derive the metadata.
    pub fn lpt(graph: &Graph, schedule: &Schedule, node_cycles: &[u64], cores: usize) -> Partition {
        let assignment = partition_lpt(node_cycles, cores);
        Partition::from_assignment(graph, schedule, node_cycles, assignment, cores)
    }

    /// Derive per-core loads and cut edges for an existing assignment
    /// (e.g. from [`partition_simd_aware`] or a hand-written placement).
    pub fn from_assignment(
        graph: &Graph,
        schedule: &Schedule,
        node_cycles: &[u64],
        assignment: Vec<u32>,
        cores: usize,
    ) -> Partition {
        assert_eq!(assignment.len(), graph.node_count());
        let mut per_core_load = vec![0u64; cores];
        for (i, &core) in assignment.iter().enumerate() {
            per_core_load[core as usize] += node_cycles.get(i).copied().unwrap_or(0);
        }
        let mut cut_edges = Vec::new();
        for (id, e) in graph.edges() {
            let (sc, dc) = (assignment[e.src.0 as usize], assignment[e.dst.0 as usize]);
            if sc != dc {
                let push = graph.node(e.src).push_rate(e.src_port) as u64;
                cut_edges.push(CutEdge {
                    edge: id,
                    src: e.src,
                    dst: e.dst,
                    src_core: sc,
                    dst_core: dc,
                    tokens_per_iter: schedule.reps[e.src.0 as usize] * push,
                });
            }
        }
        Partition {
            cores,
            assignment,
            per_core_load,
            cut_edges,
        }
    }

    /// Load of the bottleneck core.
    pub fn max_load(&self) -> u64 {
        self.per_core_load.iter().copied().max().unwrap_or(0)
    }
}

/// Per-core estimate for one steady iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreEstimate {
    /// Compute cycles per core.
    pub per_core: Vec<u64>,
    /// Total communication cycles (added to the bottleneck core).
    pub comm_cycles: u64,
    /// Modelled makespan: `max(per_core) + comm_cycles`.
    pub makespan: u64,
}

/// Estimate the multicore makespan of one steady iteration: max core load
/// plus inter-core traffic.
pub fn estimate(
    graph: &Graph,
    schedule: &Schedule,
    node_cycles: &[u64],
    assignment: &[u32],
    cores: usize,
    comm: &CommModel,
) -> CoreEstimate {
    let mut per_core = vec![0u64; cores];
    for (i, &cyc) in node_cycles.iter().enumerate() {
        per_core[assignment[i] as usize] += cyc;
    }
    let mut comm_cycles = 0u64;
    for (_, e) in graph.edges() {
        if assignment[e.src.0 as usize] != assignment[e.dst.0 as usize] {
            let push = graph.node(e.src).push_rate(e.src_port) as u64;
            let tokens = schedule.reps[e.src.0 as usize] * push;
            comm_cycles += tokens * comm.cycles_per_element + comm.sync_per_edge;
        }
    }
    let makespan = per_core.iter().copied().max().unwrap_or(0) + comm_cycles;
    CoreEstimate {
        per_core,
        comm_cycles,
        makespan,
    }
}

/// One configuration's modelled performance, normalized per source firing
/// so scalar and Equation-1-scaled SIMD schedules are comparable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Modelled cycles per steady iteration (makespan).
    pub cycles_per_iteration: u64,
    /// Source firings per steady iteration.
    pub source_reps: u64,
}

impl Throughput {
    /// Cycles per source firing — the figure of merit.
    pub fn cycles_per_source_firing(&self) -> f64 {
        self.cycles_per_iteration as f64 / self.source_reps as f64
    }
}

/// The four bars of Figure 13 for one benchmark: `cores` with and without
/// macro-SIMDization, as speedups over single-core scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure13Point {
    /// Core count.
    pub cores: usize,
    /// Speedup of plain multicore over 1-core scalar.
    pub multicore: f64,
    /// Speedup of multicore + macro-SIMD (partition-first) over 1-core
    /// scalar.
    pub multicore_simd: f64,
}

/// Evaluate one benchmark graph at a core count.
///
/// Steps mirror the paper: measure scalar per-node cycles, partition
/// (LPT), estimate plain multicore; then macro-SIMDize *with the partition
/// as a co-location constraint* and re-estimate.
///
/// # Errors
/// Propagates scheduling/SIMDization failures.
pub fn figure13_point(
    graph: &Graph,
    machine: &Machine,
    cores: usize,
    comm: &CommModel,
    iters: u64,
) -> Result<Figure13Point, SimdizeError> {
    let schedule = Schedule::compute(graph)?;
    let scalar = run_scheduled(graph, &schedule, machine, iters).expect("scalar run failed");
    let per_iter: Vec<u64> = scalar
        .node_cycles
        .iter()
        .map(|c| c / iters.max(1))
        .collect();
    let src = graph
        .node_ids()
        .find(|&id| graph.in_edges(id).is_empty())
        .expect("graph has a source");

    let single = Throughput {
        cycles_per_iteration: per_iter.iter().sum(),
        source_reps: schedule.rep(src),
    };

    let assignment = partition_lpt(&per_iter, cores);
    let mc = estimate(graph, &schedule, &per_iter, &assignment, cores, comm);
    let multicore = Throughput {
        cycles_per_iteration: mc.makespan,
        source_reps: schedule.rep(src),
    };

    // Partition-first macro-SIMDization.
    let (simd, colors) =
        macro_simdize_colocated(graph, machine, &SimdizeOptions::all(), &assignment)?;
    let simd_run =
        run_scheduled(&simd.graph, &simd.schedule, machine, iters).expect("simd run failed");
    let simd_per_iter: Vec<u64> = simd_run
        .node_cycles
        .iter()
        .map(|c| c / iters.max(1))
        .collect();
    let simd_src = simd
        .graph
        .node_ids()
        .find(|&id| simd.graph.in_edges(id).is_empty())
        .expect("simd graph has a source");
    let mcs = estimate(
        &simd.graph,
        &simd.schedule,
        &simd_per_iter,
        &colors,
        cores,
        comm,
    );
    let multicore_simd = Throughput {
        cycles_per_iteration: mcs.makespan,
        source_reps: simd.schedule.reps[simd_src.0 as usize],
    };

    let base = single.cycles_per_source_firing();
    Ok(Figure13Point {
        cores,
        multicore: base / multicore.cycles_per_source_firing(),
        multicore_simd: base / multicore_simd.cycles_per_source_firing(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};

    #[test]
    fn lpt_balances_loads() {
        let cycles = vec![10, 10, 10, 10, 40];
        let assign = partition_lpt(&cycles, 2);
        let mut load = [0u64; 2];
        for (i, &a) in assign.iter().enumerate() {
            load[a as usize] += cycles[i];
        }
        assert_eq!(load[0].max(load[1]), 40);
    }

    #[test]
    fn single_core_has_no_comm() {
        let cycles = vec![5, 5];
        let assign = partition_lpt(&cycles, 1);
        assert!(assign.iter().all(|&a| a == 0));
    }

    fn bench_graph() -> Graph {
        let mut src = FilterBuilder::new("src", 0, 0, 4, ScalarTy::F32);
        let n = src.state("n", Ty::Scalar(ScalarTy::F32));
        src.work(|b| {
            for _ in 0..4 {
                b.push(v(n) * 0.5f32);
                b.set(
                    n,
                    cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 199i32),
                );
            }
        });
        let heavy = |name: &str, k: f32| {
            let mut fb = FilterBuilder::new(name, 4, 4, 4, ScalarTy::F32);
            let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
            let t = fb.local("t", Ty::Scalar(ScalarTy::F32));
            fb.work(move |b| {
                b.for_(i, 4i32, |b| {
                    b.set(t, pop());
                    b.push(sqrt(abs(v(t) * k + 1.0f32)) * v(t));
                });
            });
            fb.build_spec()
        };
        StreamSpec::pipeline(vec![
            src.build_spec(),
            heavy("h1", 2.0),
            heavy("h2", 3.0),
            heavy("h3", 4.0),
            heavy("h4", 5.0),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap()
    }

    /// xorshift64* — deterministic stand-in for `proptest` (offline build).
    struct Rng(u64);
    impl Rng {
        fn new(seed: u64) -> Rng {
            Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.next_u64() % (hi - lo)
        }
    }

    #[test]
    fn more_cores_than_nodes() {
        let cycles = vec![7, 3];
        let assign = partition_lpt(&cycles, 8);
        assert_eq!(assign.len(), 2);
        // Every node lands on a valid core, and no core hosts two nodes
        // while another sits idle.
        assert!(assign.iter().all(|&a| (a as usize) < 8));
        assert_ne!(assign[0], assign[1]);
    }

    #[test]
    fn zero_nodes() {
        assert!(partition_lpt(&[], 4).is_empty());
    }

    #[test]
    fn all_zero_costs_still_assign_valid_cores() {
        let cycles = vec![0u64; 13];
        for cores in 1..6 {
            let assign = partition_lpt(&cycles, cores);
            assert_eq!(assign.len(), 13);
            assert!(assign.iter().all(|&a| (a as usize) < cores));
        }
    }

    /// Randomized: every node gets a valid core; for uniform costs the
    /// greedy placement is optimal, and in general LPT's makespan is
    /// within the classic `4/3 - 1/(3m)` factor of the perfect split
    /// (a lower bound on OPT), which the bound certainly permits.
    #[test]
    fn lpt_property_valid_and_bounded() {
        for seed in 0..64u64 {
            let mut rng = Rng::new(seed);
            let n = rng.range(1, 24) as usize;
            let cores = rng.range(1, 9) as usize;
            let uniform = seed % 2 == 0;
            let c = rng.range(1, 100);
            let cycles: Vec<u64> = (0..n)
                .map(|_| if uniform { c } else { rng.range(1, 1000) })
                .collect();
            let assign = partition_lpt(&cycles, cores);
            assert_eq!(assign.len(), n);
            assert!(assign.iter().all(|&a| (a as usize) < cores), "seed {seed}");
            let mut load = vec![0u64; cores];
            for (i, &a) in assign.iter().enumerate() {
                load[a as usize] += cycles[i];
            }
            let makespan = *load.iter().max().unwrap();
            if uniform {
                // Uniform jobs: LPT is exactly optimal — ceil(n/m) jobs on
                // the fullest core.
                assert_eq!(makespan, n.div_ceil(cores) as u64 * c, "seed {seed}");
            }
            // Graham's bound vs. the fractional lower bound on OPT:
            // OPT >= max(mean load, max job).
            let total: u64 = cycles.iter().sum();
            let opt_lb = (total as f64 / cores as f64).max(*cycles.iter().max().unwrap() as f64);
            let bound = (4.0 / 3.0 - 1.0 / (3.0 * cores as f64)) * opt_lb;
            // Graham's guarantee is relative to true OPT >= opt_lb; allow
            // the fractional relaxation plus one max job of slack.
            assert!(
                makespan as f64 <= bound + *cycles.iter().max().unwrap() as f64,
                "seed {seed}: makespan {makespan} vs bound {bound} (loads {load:?})"
            );
        }
    }

    #[test]
    fn partition_metadata_matches_estimate() {
        let g = bench_graph();
        let sched = Schedule::compute(&g).unwrap();
        let cycles = vec![100u64; g.node_count()];
        let part = Partition::lpt(&g, &sched, &cycles, 2);
        assert_eq!(part.assignment, partition_lpt(&cycles, 2));
        assert_eq!(
            part.per_core_load.iter().sum::<u64>(),
            100 * g.node_count() as u64
        );
        let comm = CommModel::default();
        let est = estimate(&g, &sched, &cycles, &part.assignment, 2, &comm);
        let modeled: u64 = part
            .cut_edges
            .iter()
            .map(|c| c.tokens_per_iter * comm.cycles_per_element + comm.sync_per_edge)
            .sum();
        assert_eq!(est.comm_cycles, modeled);
        assert_eq!(est.makespan, part.max_load() + modeled);
        for c in &part.cut_edges {
            assert_ne!(c.src_core, c.dst_core);
            assert_eq!(part.assignment[c.src.0 as usize], c.src_core);
            assert_eq!(part.assignment[c.dst.0 as usize], c.dst_core);
        }
    }

    #[test]
    fn estimate_counts_cut_edges() {
        let g = bench_graph();
        let sched = Schedule::compute(&g).unwrap();
        let cycles = vec![100u64; g.node_count()];
        let all_one_core = vec![0u32; g.node_count()];
        let comm = CommModel::default();
        let e1 = estimate(&g, &sched, &cycles, &all_one_core, 2, &comm);
        assert_eq!(e1.comm_cycles, 0);
        let mut split = all_one_core.clone();
        split[2] = 1; // one actor on core 1: two cut edges
        let e2 = estimate(&g, &sched, &cycles, &split, 2, &comm);
        // Two cut edges, 4 tokens each per steady iteration.
        assert_eq!(
            e2.comm_cycles,
            2 * (4 * comm.cycles_per_element + comm.sync_per_edge)
        );
        assert_eq!(e2.makespan, 500 + e2.comm_cycles);
    }

    #[test]
    fn figure13_shapes() {
        let g = bench_graph();
        let machine = Machine::core_i7();
        let comm = CommModel::default();
        let p2 = figure13_point(&g, &machine, 2, &comm, 4).unwrap();
        let p4 = figure13_point(&g, &machine, 4, &comm, 4).unwrap();
        // Multicore speedups are positive and grow with cores.
        assert!(p2.multicore > 1.0, "2-core speedup {}", p2.multicore);
        assert!(p4.multicore >= p2.multicore);
        // Macro-SIMD on top of multicore beats plain multicore.
        assert!(p2.multicore_simd > p2.multicore);
        // The paper's headline: 2 cores + SIMD competitive with 4 cores.
        assert!(
            p2.multicore_simd > p4.multicore * 0.9,
            "2-core+SIMD {} should approach 4-core {}",
            p2.multicore_simd,
            p4.multicore
        );
    }

    #[test]
    fn colocation_restricts_fusion() {
        use macross::driver::macro_simdize_colocated;
        let g = bench_graph();
        let machine = Machine::core_i7();
        // All on one core: the whole h1..h4 chain fuses.
        let one = vec![0u32; g.node_count()];
        let (all_fused, _) =
            macro_simdize_colocated(&g, &machine, &SimdizeOptions::all(), &one).unwrap();
        // Split the chain across cores: fusion is cut at the boundary.
        let mut split = vec![0u32; g.node_count()];
        split[3] = 1;
        split[4] = 1;
        split[5] = 1;
        let (partial, _) =
            macro_simdize_colocated(&g, &machine, &SimdizeOptions::all(), &split).unwrap();
        let full_len: usize = all_fused
            .report
            .vertical_chains
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(0);
        let part_len: usize = partial
            .report
            .vertical_chains
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(0);
        assert!(
            full_len > part_len,
            "full {full_len} vs partitioned {part_len}"
        );
    }
}

// ---------------------------------------------------------------------
// SIMD-aware partitioning (the paper's future work: "we are not proposing
// any universal partitioning approach that can handle both SIMDization
// and multi-core partitioning ... performing vectorization on the
// high-level graph makes it possible for the partitioner ... to make
// SIMD-aware decisions").
// ---------------------------------------------------------------------

/// Cluster-aware LPT: vertically fusable chains and horizontal split-join
/// candidates are kept on one core so the SIMDizer's opportunities
/// survive partitioning, then clusters are placed greedily by load.
pub fn partition_simd_aware(
    graph: &Graph,
    node_cycles: &[u64],
    cores: usize,
    machine: &Machine,
) -> Vec<u32> {
    use macross::horizontal::find_split_joins;
    use macross::vertical::link_fusable;
    use macross_streamir::analysis::analyze_vectorizability;
    use macross_streamir::graph::Node;

    assert!(cores >= 1);
    let n = graph.node_count();
    // Union-find over nodes.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };

    let eligible = |id: macross_streamir::NodeId| -> bool {
        graph
            .node(id)
            .as_filter()
            .map(|f| {
                let va = analyze_vectorizability(f);
                va.simdizable() && machine.supports_all(&va.intrinsics)
            })
            .unwrap_or(false)
    };

    // Fusable pipeline links stay together.
    for (_, e) in graph.edges() {
        if eligible(e.src) && eligible(e.dst) && link_fusable(graph, e.src, e.dst).is_ok() {
            union(&mut parent, e.src.0 as usize, e.dst.0 as usize);
        }
    }
    // Horizontal candidates (splitter + all branches + joiner) stay together
    // when the branch count fits the SIMD width.
    for cand in find_split_joins(graph) {
        if cand.branches.len() % machine.simd_width != 0 {
            continue;
        }
        let sp = cand.splitter.0 as usize;
        for b in cand.branches.iter().flatten() {
            union(&mut parent, sp, b.0 as usize);
        }
        union(&mut parent, sp, cand.joiner.0 as usize);
    }
    // Splitters/joiners that did not form candidates stay free.
    let _ = graph
        .nodes()
        .map(|(_, n)| n)
        .filter(|n| matches!(n, Node::Splitter(_)))
        .count();

    // Cluster loads, then LPT over clusters.
    let mut cluster_nodes: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        cluster_nodes.entry(r).or_default().push(i);
    }
    let mut clusters: Vec<(u64, Vec<usize>)> = cluster_nodes
        .into_values()
        .map(|nodes| (nodes.iter().map(|&i| node_cycles[i]).sum(), nodes))
        .collect();
    clusters.sort_by_key(|(load, nodes)| std::cmp::Reverse((*load, nodes.len())));
    let mut core_load = vec![0u64; cores];
    let mut assign = vec![0u32; n];
    for (load, nodes) in clusters {
        let core = (0..cores)
            .min_by_key(|&c| core_load[c])
            .expect("at least one core");
        core_load[core] += load;
        for i in nodes {
            assign[i] = core as u32;
        }
    }
    assign
}

/// Figure-13 evaluation using the SIMD-aware partitioner instead of the
/// naive LPT (the `ablate_partitioner` comparison).
///
/// # Errors
/// Propagates scheduling/SIMDization failures.
pub fn figure13_point_simd_aware(
    graph: &Graph,
    machine: &Machine,
    cores: usize,
    comm: &CommModel,
    iters: u64,
) -> Result<Figure13Point, SimdizeError> {
    let schedule = Schedule::compute(graph)?;
    let scalar = run_scheduled(graph, &schedule, machine, iters).expect("scalar run failed");
    let per_iter: Vec<u64> = scalar
        .node_cycles
        .iter()
        .map(|c| c / iters.max(1))
        .collect();
    let src = graph
        .node_ids()
        .find(|&id| graph.in_edges(id).is_empty())
        .expect("source");
    let single = per_iter.iter().sum::<u64>() as f64 / schedule.rep(src) as f64;

    let assignment = partition_simd_aware(graph, &per_iter, cores, machine);
    let mc = estimate(graph, &schedule, &per_iter, &assignment, cores, comm);
    let multicore = mc.makespan as f64 / schedule.rep(src) as f64;

    let (simd, colors) =
        macro_simdize_colocated(graph, machine, &SimdizeOptions::all(), &assignment)?;
    let simd_run =
        run_scheduled(&simd.graph, &simd.schedule, machine, iters).expect("simd run failed");
    let simd_per_iter: Vec<u64> = simd_run
        .node_cycles
        .iter()
        .map(|c| c / iters.max(1))
        .collect();
    let simd_src = simd
        .graph
        .node_ids()
        .find(|&id| simd.graph.in_edges(id).is_empty())
        .expect("simd graph has a source");
    let mcs = estimate(
        &simd.graph,
        &simd.schedule,
        &simd_per_iter,
        &colors,
        cores,
        comm,
    );
    let multicore_simd = mcs.makespan as f64 / simd.schedule.reps[simd_src.0 as usize] as f64;

    Ok(Figure13Point {
        cores,
        multicore: single / multicore,
        multicore_simd: single / multicore_simd,
    })
}

#[cfg(test)]
mod simd_aware_tests {
    use super::*;
    use macross_benchsuite_free::*;

    /// A long fusable pipeline that naive LPT would cut.
    mod macross_benchsuite_free {
        use macross_streamir::builder::StreamSpec;
        use macross_streamir::edsl::*;
        use macross_streamir::graph::Graph;
        use macross_streamir::types::{ScalarTy, Ty};

        pub fn chain_graph() -> Graph {
            let mut src = FilterBuilder::new("src", 0, 0, 4, ScalarTy::F32);
            let n = src.state("n", Ty::Scalar(ScalarTy::F32));
            src.work(|b| {
                for _ in 0..4 {
                    b.push(v(n) * 0.25f32);
                    b.set(
                        n,
                        cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 99i32),
                    );
                }
            });
            let stage = |name: &str, k: f32| {
                let mut fb = FilterBuilder::new(name, 4, 4, 4, ScalarTy::F32);
                let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
                let t = fb.local("t", Ty::Scalar(ScalarTy::F32));
                fb.work(move |b| {
                    b.for_(i, 4i32, |b| {
                        b.set(t, pop());
                        b.push(sqrt(abs(v(t))) * k + v(t));
                    });
                });
                fb.build_spec()
            };
            StreamSpec::pipeline(vec![
                src.build_spec(),
                stage("s1", 1.0),
                stage("s2", 2.0),
                stage("s3", 3.0),
                stage("s4", 4.0),
                stage("s5", 5.0),
                stage("s6", 6.0),
                StreamSpec::Sink,
            ])
            .build()
            .unwrap()
        }
    }

    #[test]
    fn simd_aware_keeps_chains_together() {
        let g = chain_graph();
        let machine = Machine::core_i7();
        let cycles = vec![100u64; g.node_count()];
        let naive = partition_lpt(&cycles, 2);
        let aware = partition_simd_aware(&g, &cycles, 2, &machine);
        // The six fusable stages must share one core under the aware
        // partitioner; naive LPT scatters them.
        let stage_cores: std::collections::HashSet<u32> = (1..7).map(|i| aware[i]).collect();
        assert_eq!(stage_cores.len(), 1, "aware: {aware:?}");
        let naive_cores: std::collections::HashSet<u32> = (1..7).map(|i| naive[i]).collect();
        assert!(naive_cores.len() > 1, "naive: {naive:?}");
    }

    #[test]
    fn simd_aware_beats_naive_with_simd() {
        let g = chain_graph();
        let machine = Machine::core_i7();
        let comm = CommModel::default();
        let naive = figure13_point(&g, &machine, 2, &comm, 4).unwrap();
        let aware = figure13_point_simd_aware(&g, &machine, 2, &comm, 4).unwrap();
        assert!(
            aware.multicore_simd >= naive.multicore_simd,
            "aware {} vs naive {}",
            aware.multicore_simd,
            naive.multicore_simd
        );
    }
}
