//! Umbrella crate for the MacroSS reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests in this repository can use a single dependency.
pub use macross;
pub use macross_autovec as autovec;
pub use macross_benchsuite as benchsuite;
pub use macross_codegen as codegen;
pub use macross_multicore as multicore;
pub use macross_pdf as pdf;
pub use macross_runtime as runtime;
pub use macross_sagu as sagu;
pub use macross_sdf as sdf;
pub use macross_service as service;
pub use macross_streamir as streamir;
pub use macross_streamlang as streamlang;
pub use macross_telemetry as telemetry;
pub use macross_vm as vm;
