//! Quickstart: build a small stream program, macro-SIMDize it, and compare
//! cycle counts and outputs against scalar execution.
//!
//! Run with: `cargo run --example quickstart`

use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};
use macross_repro::sdf::Schedule;
use macross_repro::streamir::builder::StreamSpec;
use macross_repro::streamir::edsl::*;
use macross_repro::streamir::types::{ScalarTy, Ty};
use macross_repro::vm::{run_scheduled, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the program: a counting source, two stateless compute
    //    actors, and a sink. `peek/pop/push` rates are declared up front,
    //    StreamIt-style, and verified against the bodies.
    let mut src = FilterBuilder::new("source", 0, 0, 1, ScalarTy::F32);
    let n = src.state("n", Ty::Scalar(ScalarTy::F32));
    src.work(|b| {
        b.push(v(n) * 0.01f32);
        b.set(
            n,
            cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 1000i32),
        );
    });

    let mut window = FilterBuilder::new("window", 2, 2, 2, ScalarTy::F32);
    let a = window.local("a", Ty::Scalar(ScalarTy::F32));
    let b2 = window.local("b", Ty::Scalar(ScalarTy::F32));
    window.work(|b| {
        b.set(a, pop());
        b.set(b2, pop());
        b.push(sqrt(abs(v(a) + v(b2))));
        b.push(sqrt(abs(v(a) - v(b2))));
    });

    let mut gain = FilterBuilder::new("gain", 1, 1, 1, ScalarTy::F32);
    gain.work(|b| {
        b.push(pop() * 1.5f32 + 0.25f32);
    });

    let graph = StreamSpec::pipeline(vec![
        src.build_spec(),
        window.build_spec(),
        gain.build_spec(),
        StreamSpec::Sink,
    ])
    .build()?;

    // 2. Macro-SIMDize for a Core-i7-like 4-wide SIMD target.
    let machine = Machine::core_i7();
    let simd = macro_simdize(&graph, &machine, &SimdizeOptions::all())?;
    println!("transforms applied: {:?}", simd.report.vertical_chains);
    println!("vectorized actors:  {:?}", simd.report.single_actors);
    println!("repetition scaling: x{}", simd.report.scale_factor);

    // 3. Run both versions at matched throughput and compare.
    let mut scalar_sched = Schedule::compute(&graph)?;
    scalar_sched.scale(simd.report.scale_factor);
    let scalar = run_scheduled(&graph, &scalar_sched, &machine, 50)?;
    let vector = run_scheduled(&simd.graph, &simd.schedule, &machine, 50)?;

    assert_eq!(
        scalar.output, vector.output,
        "SIMDization must preserve output bit-for-bit"
    );
    println!(
        "scalar: {} cycles, macro-SIMD: {} cycles  ->  {:.2}x speedup",
        scalar.total_cycles(),
        vector.total_cycles(),
        scalar.total_cycles() as f64 / vector.total_cycles() as f64
    );
    println!("outputs identical across {} samples", scalar.output.len());
    Ok(())
}
