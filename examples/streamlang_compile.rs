//! Compile a StreamIt-like source program through the whole stack:
//! text -> parse -> elaborate -> macro-SIMDize -> execute, verifying the
//! vectorized program against scalar execution.
//!
//! Run with: `cargo run --example streamlang_compile`

use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};
use macross_repro::sdf::Schedule;
use macross_repro::streamlang::compile;
use macross_repro::vm::{run_scheduled, Machine};

const PROGRAM: &str = r#"
    // A four-band graphic equalizer written in the StreamIt-like surface
    // language. The Band instances differ only in their parameters, so
    // horizontal SIMDization merges all four into one vector actor.

    void->float filter Ramp() {
        int n = 0;
        work push 1 {
            push((float) n * 0.01);
            n = (n + 1) % 500;
        }
    }

    float->float filter Band(float freq, float gain) {
        float coef[8];
        init {
            for (int k = 0; k < 8; k++) {
                coef[k] = cos((float) k * freq) * gain;
            }
        }
        work peek 8 pop 1 push 1 {
            float acc = 0.0;
            for (int i = 0; i < 8; i++) {
                acc = acc + peek(i) * coef[i];
            }
            pop();
            push(acc);
        }
    }

    float->float splitjoin Equalizer() {
        split duplicate;
        add Band(0.02, 1.0);
        add Band(0.05, 0.8);
        add Band(0.09, 0.6);
        add Band(0.14, 0.4);
        join roundrobin(1, 1, 1, 1);
    }

    float->float filter Mix() {
        work pop 4 push 1 {
            push(pop() + pop() + pop() + pop());
        }
    }

    void->void pipeline Main() {
        add Ramp();
        add Equalizer();
        add Mix();
        add Sink();
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = compile(PROGRAM, "Main")?;
    println!(
        "compiled Main: {} actors, {} tapes",
        graph.node_count(),
        graph.edge_count()
    );

    let machine = Machine::core_i7();
    let simd = macro_simdize(&graph, &machine, &SimdizeOptions::all())?;
    println!("horizontal groups: {:?}", simd.report.horizontal_groups);
    println!("vertical chains:   {:?}", simd.report.vertical_chains);

    let mut ssched = Schedule::compute(&graph)?;
    ssched.scale(simd.report.scale_factor.max(1));
    let scalar = run_scheduled(&graph, &ssched, &machine, 30)?;
    let vector = run_scheduled(&simd.graph, &simd.schedule, &machine, 30)?;
    assert_eq!(scalar.output, vector.output);
    println!(
        "verified {} samples; {:.2}x modelled speedup",
        scalar.output.len(),
        scalar.total_cycles() as f64 / vector.total_cycles() as f64
    );
    Ok(())
}
