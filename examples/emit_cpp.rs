//! Generate the intermediate C++ (with SSE intrinsics) that MacroSS's
//! final phase emits, for a macro-SIMDized benchmark, and print it.
//!
//! Run with: `cargo run --example emit_cpp [benchmark]` (default DCT).

use macross_repro::benchsuite::by_name;
use macross_repro::codegen::{emit_program, CodegenOptions};
use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};
use macross_repro::vm::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "DCT".into());
    let b = by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let g = (b.build)();
    let machine = Machine::core_i7();
    let simd = macro_simdize(&g, &machine, &SimdizeOptions::all())?;
    let code = emit_program(&simd.graph, &simd.schedule, &CodegenOptions::default());
    println!("{code}");
    eprintln!(
        "// {} lines of intermediate C++ for {name} (vectorized actors: {})",
        code.lines().count(),
        simd.report.single_actors.len()
            + simd
                .report
                .horizontal_groups
                .iter()
                .map(|g| g.len())
                .sum::<usize>()
    );
    Ok(())
}
