//! Retarget the same stream program to different SIMD machines — the
//! retargetability argument of the paper's introduction. Sweeps SIMD
//! widths, tries a Neon-like engine without vector transcendentals, and
//! compares a SAGU-equipped target.
//!
//! Run with: `cargo run --example custom_target`

use macross_repro::benchsuite::by_name;
use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};
use macross_repro::sdf::Schedule;
use macross_repro::vm::{run_scheduled, Machine};

fn speedup_on(machine: &Machine, name: &str) -> f64 {
    let b = by_name(name).expect("benchmark");
    let g = (b.build)();
    let simd = macro_simdize(&g, machine, &SimdizeOptions::all()).expect("simdize");
    let mut ssched = Schedule::compute(&g).expect("schedule");
    ssched.scale(simd.report.scale_factor.max(1));
    let scalar = run_scheduled(&g, &ssched, machine, 4).expect("scalar run");
    let vector = run_scheduled(&simd.graph, &simd.schedule, machine, 4).expect("vector run");
    assert_eq!(scalar.output, vector.output);
    scalar.total_cycles() as f64 / vector.total_cycles() as f64
}

fn main() {
    println!("macro-SIMDization speedups per target machine\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "machine", "DCT", "Serpent", "MP3Decoder"
    );
    let targets: Vec<Machine> = vec![
        Machine::wide(2),
        Machine::core_i7(),
        Machine::core_i7_with_sagu(),
        Machine::wide(8),
        Machine::wide(16),
        Machine::neon_like(),
    ];
    for m in targets {
        println!(
            "{:<22} {:>9.2}x {:>9.2}x {:>9.2}x",
            m.name,
            speedup_on(&m, "DCT"),
            speedup_on(&m, "Serpent"),
            speedup_on(&m, "MP3Decoder"),
        );
    }
    println!("\nNote the width sweep: wider SIMD keeps paying off because the");
    println!("graph-level transforms keep the lanes busy, while the Neon-like");
    println!("target (no vector sin/cos/pow) loses the transcendental-heavy actors.");
}
