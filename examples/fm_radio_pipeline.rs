//! Run the FMRadio benchmark through the whole MacroSS pipeline and show
//! where the cycles go: which split-joins were horizontally SIMDized,
//! which tape modes the cost model chose, and the per-category cycle
//! breakdown before and after.
//!
//! Run with: `cargo run --example fm_radio_pipeline`

use macross_repro::benchsuite;
use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};
use macross_repro::sdf::Schedule;
use macross_repro::vm::{run_scheduled, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = benchsuite::dsp::fm_radio();
    let machine = Machine::core_i7();

    println!(
        "FMRadio graph: {} actors, {} tapes",
        graph.node_count(),
        graph.edge_count()
    );
    let simd = macro_simdize(&graph, &machine, &SimdizeOptions::all())?;

    println!("\n-- what MacroSS did --");
    for group in &simd.report.horizontal_groups {
        println!("horizontal: merged into {group:?}");
    }
    for chain in &simd.report.vertical_chains {
        println!("vertical:   fused {chain:?}");
    }
    for d in &simd.report.tape_decisions {
        println!(
            "tape modes: {} in={:?} out={:?}",
            d.actor, d.input, d.output
        );
    }
    if !simd.report.skipped_unprofitable.is_empty() {
        println!(
            "skipped (cost model): {:?}",
            simd.report.skipped_unprofitable
        );
    }

    let mut scalar_sched = Schedule::compute(&graph)?;
    scalar_sched.scale(simd.report.scale_factor.max(1));
    let scalar = run_scheduled(&graph, &scalar_sched, &machine, 20)?;
    let vector = run_scheduled(&simd.graph, &simd.schedule, &machine, 20)?;
    assert_eq!(scalar.output, vector.output);

    println!("\n-- cycle breakdown (per 20 steady iterations) --");
    let rows = [
        (
            "scalar compute",
            scalar.counters.compute_scalar,
            vector.counters.compute_scalar,
        ),
        (
            "vector compute",
            scalar.counters.compute_vector,
            vector.counters.compute_vector,
        ),
        (
            "scalar memory",
            scalar.counters.mem_scalar,
            vector.counters.mem_scalar,
        ),
        (
            "vector memory",
            scalar.counters.mem_vector,
            vector.counters.mem_vector,
        ),
        (
            "pack/unpack",
            scalar.counters.pack_unpack,
            vector.counters.pack_unpack,
        ),
        ("permutes", scalar.counters.permute, vector.counters.permute),
        (
            "addr overhead",
            scalar.counters.addr_overhead,
            vector.counters.addr_overhead,
        ),
        (
            "loop overhead",
            scalar.counters.loop_overhead,
            vector.counters.loop_overhead,
        ),
        (
            "firing overhead",
            scalar.counters.firing_overhead,
            vector.counters.firing_overhead,
        ),
    ];
    println!("{:<16} {:>12} {:>12}", "category", "scalar", "macro-SIMD");
    for (name, s, v) in rows {
        println!("{name:<16} {s:>12} {v:>12}");
    }
    println!(
        "{:<16} {:>12} {:>12}  ({:.2}x)",
        "TOTAL",
        scalar.total_cycles(),
        vector.total_cycles(),
        scalar.total_cycles() as f64 / vector.total_cycles() as f64
    );
    Ok(())
}
